//! Pruned-DNN inference scenario: the paper's MSxD / MSxMS regimes.
//!
//! Walks the GEMM layers of a pruned ResNet-50-style network at two STR
//! pruning densities, showing how the chosen design shifts with layer
//! shape and density — the motivation for runtime dataflow selection in
//! DNN serving, where sparsity evolves across layers (paper §1).
//!
//! ```sh
//! cargo run --release --example pruned_dnn
//! ```

use misam::pipeline::Misam;
use misam_recon::cost::ReconfigCost;
use misam_sim::Operand;
use misam_sparse::gen;

const LAYERS: &[(usize, usize)] = &[
    (64, 147),
    (64, 256),
    (128, 512),
    (256, 512),
    (128, 1152),
    (256, 1024),
    (512, 1024),
    (512, 2048),
];
const SEQ_LEN: usize = 512;

fn main() {
    let mut misam = Misam::builder()
        .classifier_samples(1200)
        .latency_samples(1800)
        .seed(23)
        .reconfig_cost(ReconfigCost::zero())
        .train();

    for density in [0.1, 0.2] {
        println!("\npruned ResNet-50 layers at weight density {density}");
        println!(
            "{:<14} {:>8} {:>10} {:>12} {:>10} {:>8}",
            "layer", "shape", "nnz", "design", "time", "util"
        );
        let mut total_s = 0.0;
        for (i, &(m, k)) in LAYERS.iter().enumerate() {
            let w = gen::pruned_dnn(m, k, density, 1000 + i as u64);
            let report = misam.execute(&w, Operand::Dense { rows: k, cols: SEQ_LEN });
            total_s += report.sim.time_s;
            println!(
                "{:<14} {:>4}x{:<4} {:>10} {:>12} {:>8.1}us {:>7.1}%",
                format!("layer{i}"),
                m,
                k,
                w.nnz(),
                report.decision.execute_on.to_string(),
                report.sim.time_s * 1e6,
                report.sim.pe_utilization * 100.0
            );
        }
        println!("network GEMM total: {:.2} ms", total_s * 1e3);
    }

    // The MSxMS case: weight x pruned activation (VGG-style pair).
    println!("\nMSxMS: pruned weight x pruned activation");
    let a = gen::pruned_dnn(512, 2304, 0.2, 77);
    let b = gen::pruned_dnn(2304, SEQ_LEN, 0.2, 78);
    let report = misam.execute(&a, Operand::Sparse(&b));
    println!(
        "  512x2304 (d=0.2) x 2304x512 (d=0.2) -> {} in {:.1} us",
        report.decision.execute_on,
        report.sim.time_s * 1e6
    );
}
