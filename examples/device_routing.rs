//! Heterogeneous device routing (paper §6.3): the same classifier
//! machinery, retargeted to choose between the Misam FPGA system, an
//! MKL-class CPU, and a cuSPARSE-class GPU — "it correctly routes
//! workloads to the GPU when it consistently offers better performance."
//!
//! ```sh
//! cargo run --release --example device_routing
//! ```

use misam::hetero::{self, Device};
use misam_features::{PairFeatures, TileConfig};
use misam_sparse::gen;

fn main() {
    println!("training the device router on 1,500 random operand pairs…");
    let t = hetero::train_router(1500, 3);
    println!(
        "routing accuracy {:.1}%, routed-vs-oracle {:.2}x\n",
        t.accuracy * 100.0,
        t.routed_over_best
    );
    print!("{}", t.confusion.render(&["misam-fpga", "cpu", "gpu"]));

    // Route some characteristic workloads.
    let cfg = TileConfig::default();
    println!("\nrouting characteristic workloads:");

    let cases: Vec<(&str, PairFeatures)> = vec![
        ("hypersparse graph x graph (HSxHS)", {
            let a = gen::power_law(4000, 4000, 4.0, 1.4, 1);
            let b = gen::power_law(4000, 4000, 4.0, 1.4, 2);
            PairFeatures::extract(&a, &b, &cfg)
        }),
        ("dense x dense block (D-heavy)", {
            let a = gen::dense(512, 512, 3);
            PairFeatures::extract_dense_b(&a, 512, 512, &cfg)
        }),
        ("pruned weights x activations (MSxD)", {
            let a = gen::pruned_dnn(512, 1024, 0.15, 4);
            PairFeatures::extract_dense_b(&a, 1024, 512, &cfg)
        }),
    ];

    for (name, f) in cases {
        let device = t.router.route(&f.to_vector());
        println!("  {name:<38} -> {device}");
    }

    println!(
        "\n(labels seen in validation: fpga {} / cpu {} / gpu {})",
        t.label_histogram[Device::MisamFpga.index()],
        t.label_histogram[Device::Cpu.index()],
        t.label_histogram[Device::Gpu.index()]
    );
}
