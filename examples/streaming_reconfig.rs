//! Streaming + reconfiguration scenario (paper §3.3 and Figure 8).
//!
//! A large graph matrix is streamed tile by tile; midway the workload
//! character changes (dense right-hand side → sparse right-hand side),
//! and the reconfiguration engine weighs the multi-second bitstream
//! switch against the projected gain. Run once with the real switch cost
//! and once with switching modeled as free to see the engine's judgment
//! change.
//!
//! ```sh
//! cargo run --release --example streaming_reconfig
//! ```

use misam::pipeline::Misam;
use misam_recon::cost::ReconfigCost;
use misam_recon::stream::StreamConfig;
use misam_sim::{DesignId, Operand};
use misam_sparse::gen;

fn run(label: &str, cost: ReconfigCost) {
    let mut misam = Misam::builder()
        .classifier_samples(1000)
        .latency_samples(1500)
        .seed(31)
        .reconfig_cost(cost)
        .train();
    misam.preload(DesignId::D1);

    let a = gen::regular_degree(120_000, 120_000, 8, 3);
    let b_sparse = gen::regular_degree(120_000, 120_000, 8, 4);
    let cfg = StreamConfig {
        tile_min_rows: 10_000,
        tile_max_rows: 50_000,
        seed: 9,
        ..Default::default()
    };

    println!("\n=== {label} ===");

    // Phase 1: dense right-hand side (solver with many RHS).
    let dense = misam.stream(&a, Operand::Dense { rows: 120_000, cols: 512 }, &cfg);
    println!(
        "phase 1 (x dense B): {} tiles, {} reconfigs, exec {:.1} ms + reconfig {:.2} s",
        dense.tiles.len(),
        dense.reconfig_count,
        dense.execute_time_s * 1e3,
        dense.reconfig_time_s
    );
    for t in &dense.tiles {
        print!("{}{} ", t.executed_on.index() + 1, if t.reconfigured { "*" } else { "" });
    }
    println!(" (design per tile; * = reconfigured)");

    // Phase 2: the workload turns sparse-sparse.
    let sparse = misam.stream(&a, Operand::Sparse(&b_sparse), &cfg);
    println!(
        "phase 2 (x sparse B): {} tiles, {} reconfigs, exec {:.1} ms + reconfig {:.2} s",
        sparse.tiles.len(),
        sparse.reconfig_count,
        sparse.execute_time_s * 1e3,
        sparse.reconfig_time_s
    );
    for t in &sparse.tiles {
        print!("{}{} ", t.executed_on.index() + 1, if t.reconfigured { "*" } else { "" });
    }
    println!();
    println!(
        "end-to-end: {:.2} s ({} total reconfigurations)",
        dense.total_time_s() + sparse.total_time_s(),
        misam.reconfig_count()
    );
}

fn main() {
    run("real U55C reconfiguration cost (3-4 s per switch)", ReconfigCost::default());
    run("reconfiguration modeled as free", ReconfigCost::zero());
}
