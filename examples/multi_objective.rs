//! The §3.1 objective knob: "a user may choose to optimize exclusively
//! for performance, prioritize energy efficiency, or apply a weighted
//! combination of multiple objectives."
//!
//! Trains three selectors — latency-optimal, energy-optimal, and a 50/50
//! weighted blend — on the same corpus and shows where they disagree and
//! what each choice costs on the axis it sacrifices.
//!
//! ```sh
//! cargo run --release --example multi_objective
//! ```

use misam::dataset::{Dataset, Objective};
use misam::training;
use misam_sim::DesignId;

fn main() {
    let ds = Dataset::generate(2000, 99);
    println!("corpus: {} operand pairs\n", ds.len());

    for (name, objective) in [
        ("latency", Objective::Latency),
        ("energy", Objective::Energy),
        ("50/50 weighted", Objective::Weighted(0.5)),
    ] {
        let hist = ds.label_histogram(objective);
        let t = training::train_selector(&ds, objective, 7);
        println!(
            "{name:<15} labels D1 {:>4} / D2 {:>4} / D3 {:>4} / D4 {:>4}   accuracy {:.1}%",
            hist[0],
            hist[1],
            hist[2],
            hist[3],
            t.accuracy * 100.0
        );
    }

    // Where do the objectives disagree, and what does each disagreement
    // cost on the other axis?
    let lat_labels = ds.labels(Objective::Latency);
    let eng_labels = ds.labels(Objective::Energy);
    let disagreements: Vec<usize> =
        (0..ds.len()).filter(|&i| lat_labels[i] != eng_labels[i]).collect();
    println!(
        "\nobjectives disagree on {} / {} samples ({:.0}%)",
        disagreements.len(),
        ds.len(),
        100.0 * disagreements.len() as f64 / ds.len() as f64
    );

    let mut time_cost = Vec::new();
    let mut energy_saving = Vec::new();
    for &i in &disagreements {
        let s = &ds.samples[i];
        let (l, e) = (lat_labels[i], eng_labels[i]);
        time_cost.push(s.times_s[e] / s.times_s[l]);
        energy_saving.push(s.energies_j[l] / s.energies_j[e]);
    }
    if !disagreements.is_empty() {
        let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
        println!(
            "on those samples, choosing the energy-optimal design costs {:.2}x \
             time and saves {:.2}x energy (geomean)",
            gm(&time_cost),
            gm(&energy_saving)
        );
    }

    // A concrete pair: Designs 2/3 burn more power than the leaner 1/4,
    // so energy labels shift toward them.
    println!("\nper-design power draw:");
    for d in DesignId::ALL {
        println!("  {d}: {:.1} W", misam_sim::resources::power_w(d));
    }
}
