//! Training walkthrough: generate a labeled corpus, train the design
//! selector and the latency predictor, inspect feature importances
//! (Figure 4), the confusion matrix (Table 5), k-fold accuracy, and the
//! compact model's on-disk footprint (§3.1's "6 KB model").
//!
//! ```sh
//! cargo run --release --example train_selector
//! ```

use misam::dataset::{Dataset, Objective};
use misam::training;
use misam_mlkit::tree::DecisionTree;

fn main() {
    let n = 3000;
    println!("generating {n}-sample corpus (operand pairs x 4 simulated designs)…");
    let ds = Dataset::generate(n, 7);
    let hist = ds.label_histogram(Objective::Latency);
    println!(
        "label distribution: D1 {} / D2 {} / D3 {} / D4 {}",
        hist[0], hist[1], hist[2], hist[3]
    );

    println!("\ntraining design selector (70/30 split, inverse-frequency class weights)…");
    let sel = training::train_selector(&ds, Objective::Latency, 1);
    println!("validation accuracy: {:.1}%", sel.accuracy * 100.0);
    println!(
        "model: {} nodes, depth {}, {} bytes serialized",
        sel.selector.tree().node_count(),
        sel.selector.tree().depth(),
        sel.model_bytes
    );

    println!("\nfeature importances (Figure 4):");
    for (name, imp) in sel.selector.ranked_importances().iter().take(8) {
        println!("  {name:<22} {:>6.1}%  {}", imp * 100.0, bar(*imp));
    }

    println!("\nconfusion matrix (Table 5 layout):");
    print!("{}", sel.confusion.render(&["Design 1", "Design 2", "Design 3", "Design 4"]));

    println!("\n10-fold cross-validation:");
    let folds = training::kfold_selector_accuracy(&ds, Objective::Latency, 10, 3);
    let mean = folds.iter().sum::<f64>() / folds.len() as f64;
    println!(
        "  per-fold: {}",
        folds.iter().map(|a| format!("{:.0}%", a * 100.0)).collect::<Vec<_>>().join(" ")
    );
    println!("  mean: {:.1}%", mean * 100.0);

    // The compact binary roundtrip (what would ship to a host runtime).
    let bytes = sel.selector.tree().to_bytes();
    let restored = DecisionTree::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(restored.node_count(), sel.selector.tree().node_count());
    println!("\ncompact model roundtrip OK ({} bytes)", bytes.len());

    println!("\ntraining latency predictor (reconfiguration engine's secondary model)…");
    let lat = training::train_latency_predictor(&ds, 2);
    println!("  log10-latency MAE {:.3}, R2 {:.3} (paper: 0.344 / 0.978)", lat.mae, lat.r2);

    println!("\ntraining an energy-objective selector (the §3.1 objective knob)…");
    let sel_e = training::train_selector(&ds, Objective::Energy, 4);
    println!("  energy-objective accuracy: {:.1}%", sel_e.accuracy * 100.0);
}

fn bar(frac: f64) -> String {
    "#".repeat((frac * 40.0).round() as usize)
}
