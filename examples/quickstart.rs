//! Quickstart: train a Misam system, run one multiplication through the
//! full pipeline, and inspect what it decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use misam::pipeline::Misam;
use misam_sim::Operand;
use misam_sparse::gen;

fn main() {
    // 1. Train the two models on a synthetic corpus. Larger corpora give
    //    paper-scale accuracy; this size trains in seconds.
    println!("training Misam (design selector + latency predictor)…");
    let (mut misam, sel, lat) = Misam::builder()
        .classifier_samples(1500)
        .latency_samples(2500)
        .seed(42)
        .train_with_reports();
    println!(
        "  selector: {:.1}% validation accuracy, {} byte model",
        sel.accuracy * 100.0,
        sel.model_bytes
    );
    println!("  latency predictor: MAE {:.3} / R2 {:.3} (log10 latency)", lat.mae, lat.r2);

    // 2. A graph-analytics style workload: power-law A times a dense
    //    multi-right-hand-side block.
    let a = gen::power_law(8192, 8192, 10.0, 1.5, 7);
    println!(
        "\nworkload: {}x{} sparse A ({} nnz, density {:.2e}) x dense 8192x512 B",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.density()
    );

    // 3. Run it through the pipeline: features -> predicted design ->
    //    reconfiguration decision -> simulated execution.
    let report = misam.execute(&a, Operand::Dense { rows: 8192, cols: 512 });
    println!("  predicted design : {}", report.predicted);
    println!("  executed on      : {}", report.decision.execute_on);
    println!("  reconfigured     : {}", report.decision.reconfigured);
    println!("  preprocess       : {:>10.1} us", report.timings.preprocess_s * 1e6);
    println!("  inference        : {:>10.1} us", report.timings.inference_s * 1e6);
    println!("  execution        : {:>10.1} us", report.sim.time_s * 1e6);
    println!("  PE utilization   : {:>10.1} %", report.sim.pe_utilization * 100.0);
    println!("  energy           : {:>10.3} mJ", report.sim.energy_j * 1e3);

    // 4. A second, very different workload: both operands highly sparse.
    //    The selector should route this to the compressed-B design.
    let b = gen::power_law(8192, 8192, 6.0, 1.4, 8);
    let report2 = misam.execute(&a, Operand::Sparse(&b));
    println!("\nsparse x sparse follow-up:");
    println!("  predicted design : {}", report2.predicted);
    println!("  executed on      : {}", report2.decision.execute_on);
    println!("  engine kept the loaded bitstream: {}", !report2.decision.reconfigured);
}
