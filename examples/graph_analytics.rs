//! Graph-analytics scenario: triangle-counting style A x A
//! self-multiplication over SuiteSparse-class graphs (the paper's HSxHS
//! category), comparing what each fixed design would do against Misam's
//! selection, and sanity-checking the simulated winner against the
//! functional row-wise kernel.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use misam::pipeline::Misam;
use misam_recon::cost::ReconfigCost;
use misam_sim::{simulate, DesignId, Operand};
use misam_sparse::{kernels, suitesparse};

fn main() {
    let mut misam = Misam::builder()
        .classifier_samples(1200)
        .latency_samples(1800)
        .seed(11)
        .reconfig_cost(ReconfigCost::zero())
        .train();

    println!("A x A self-multiplication on synthetic SuiteSparse graphs");
    println!(
        "{:<10} {:>10} {:>10}  {:>9} {:>9} {:>9} {:>9}  chosen",
        "graph", "rows", "nnz", "D1", "D2", "D3", "D4"
    );

    for id in ["p2p", "wiki", "astro", "cond", "ore"] {
        let rec = suitesparse::by_id(id).expect("catalog id");
        // 10% linear scale keeps the demo snappy; structure is preserved.
        let a = rec.generate_scaled(0.1, 99);

        let times: Vec<f64> = DesignId::ALL
            .iter()
            .map(|&d| simulate(&a, Operand::Sparse(&a), d).time_s * 1e3)
            .collect();

        let report = misam.execute(&a, Operand::Sparse(&a));
        println!(
            "{:<10} {:>10} {:>10}  {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms  {}",
            id,
            a.rows(),
            a.nnz(),
            times[0],
            times[1],
            times[2],
            times[3],
            report.decision.execute_on,
        );
    }

    // Functional check: the product the accelerator computes matches the
    // reference kernel (here on a small graph so the dense check is cheap).
    let small = suitesparse::by_id("p2p").expect("catalog id").generate_scaled(0.01, 5);
    let c = kernels::spgemm_rowwise(&small, &small);
    println!(
        "\nfunctional check on p2p@1%: C = A*A has {} nnz across {} rows (flops {})",
        c.nnz(),
        c.rows(),
        kernels::spgemm_flops(&small, &small)
    );
}
