//! `misam` — command-line interface to the Misam reproduction.
//!
//! ```text
//! misam train    --out models.json [--samples N] [--latency N] [--seed S]
//! misam predict  --models models.json --a A.mtx (--b B.mtx | --dense-cols N)
//! misam simulate --a A.mtx (--b B.mtx | --dense-cols N) [--design 1..4]
//! misam features --a A.mtx (--b B.mtx | --dense-cols N)
//! misam gen      --kind K --rows N [--cols N] [--density D] [--seed S] --out M.mtx
//! misam designs
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `misam help` for usage");
            ExitCode::FAILURE
        }
    }
}
