//! Subcommand implementations.

use crate::args::Flags;
use misam::persist::ModelBundle;
use misam::pipeline::Misam;
use misam_features::{PairFeatures, TileConfig, FEATURE_NAMES};
use misam_recon::cost::ReconfigCost;
use misam_serve::protocol::GenSpec;
use misam_serve::{Client, GenTraffic, LoadGen, Response, ServeConfig, ServeMode, Server};
use misam_sim::{simulate, simulate_ref, DesignConfig, DesignId, Operand};
use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::{gen, io, CsrMatrix};

const HELP: &str = "\
misam — ML-assisted dataflow selection for SpGEMM accelerators

USAGE:
  misam train    --out models.json [--samples N] [--latency N] [--seed S]
                 [--objective latency|energy] [--threshold T]
  misam predict  --models models.json --a A.mtx (--b B.mtx | --dense-cols N)
  misam simulate (--a A.mtx | --matrix A.msab) (--b B.mtx | --dense-cols N)
                 [--design 1|2|3|4]
  misam features --a A.mtx (--b B.mtx | --dense-cols N)
  misam gen      --kind uniform|power-law|banded|pruned-dnn|regular|circuit
                 --rows N [--cols N] [--density D] [--seed S] --out M.mtx
  misam ingest   --in A.mtx [--out A.msab] [--budget ENTRIES]
  misam dataset  --out corpus.csv [--samples N] [--seed S] [--format csv|json]
                 [--oracle sim|surrogate|tiered] [--surrogate bundle.json]
  misam train-surrogate --out surrogate.json [--samples N] [--seed S]
                 [--trees N] [--holdout-every N] [--target-agreement A]
  misam suite    [--scale S] [--seed N]
  misam corpus   [--scale 1..10000] [--seed N] [--ingest DIR]
  misam serve    --models models.json [--addr 127.0.0.1:7171] [--threads N]
                 [--mode auto|event|blocking] [--reactors N]
                 [--batch-max N] [--batch-wait-us N] [--queue-cap N]
                 [--learn on|off] [--learn-sample N] [--learn-window N]
                 [--learn-min-window N] [--learn-cadence-ms N]
                 [--learn-drift D] [--learn-objective latency|energy]
                 [--label-via sim|tiered] [--surrogate bundle.json]
  misam client   --addr HOST:PORT --op stats|drift|shutdown|reload|predict-gen|simulate|load
                 [--path models.json] [--design 1|2|3|4] [--matrix A.msab]
                 [--kind K --rows N --cols N --density D --seed S --dense-cols N]
                 [--connections N --requests N --batch N]
                 [--open-loop RPS] [--idle-conns N]
                 [--gen-kind K [--gen-rows N --gen-density D --gen-dense-cols N]
                  [--shift-at N --gen-kind-after K --gen-density-after D]]
                 [--expect-retrain true]
  misam designs
  misam help
";

/// Dispatches one CLI invocation.
///
/// # Errors
///
/// Returns a human-readable message for any usage or I/O problem.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        print!("{HELP}");
        return Ok(());
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "train" => train(&flags),
        "train-surrogate" => train_surrogate_cmd(&flags),
        "predict" => predict(&flags),
        "simulate" => sim_cmd(&flags),
        "features" => features(&flags),
        "gen" => generate(&flags),
        "ingest" => ingest_cmd(&flags),
        "designs" => {
            designs();
            Ok(())
        }
        "dataset" => dataset_cmd(&flags),
        "suite" => suite_cmd(&flags),
        "corpus" => corpus_cmd(&flags),
        "serve" => serve_cmd(&flags),
        "client" => client_cmd(&flags),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn train(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["out", "samples", "latency", "seed", "objective", "threshold"])?;
    let out = flags.require("out")?;
    let samples: usize = flags.get_or("samples", 1500)?;
    let latency: usize = flags.get_or("latency", 2500)?;
    let seed: u64 = flags.get_or("seed", 42u64)?;
    let threshold: f64 = flags.get_or("threshold", 0.2)?;
    let objective = match flags.get("objective").unwrap_or("latency") {
        "latency" => misam::Objective::Latency,
        "energy" => misam::Objective::Energy,
        other => return Err(format!("unknown objective '{other}'")),
    };

    eprintln!("training on {samples}-sample classifier / {latency}-sample latency corpora…");
    let (_, sel, lat) = Misam::builder()
        .classifier_samples(samples)
        .latency_samples(latency)
        .seed(seed)
        .objective(objective)
        .threshold(threshold)
        .train_with_reports();
    eprintln!(
        "selector accuracy {:.1}% ({} bytes); latency predictor MAE {:.3} / R2 {:.3}",
        sel.accuracy * 100.0,
        sel.model_bytes,
        lat.mae,
        lat.r2
    );
    let bundle = ModelBundle::new(
        sel.selector,
        lat.predictor,
        threshold,
        ReconfigCost::default(),
        TileConfig::default(),
    );
    bundle.save(out)?;
    eprintln!("models written to {out}");
    Ok(())
}

fn train_surrogate_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["out", "samples", "seed", "trees", "holdout-every", "target-agreement"])?;
    let out = flags.require("out")?;
    let samples: usize = flags.get_or("samples", 800)?;
    let seed: u64 = flags.get_or("seed", 2025u64)?;
    let mut params = misam_oracle::SurrogateTrainParams::default();
    params.forest.seed = seed;
    params.forest.n_trees = flags.get_or("trees", params.forest.n_trees)?;
    params.holdout_every = flags.get_or("holdout-every", params.holdout_every)?;
    params.target_agreement = flags.get_or("target-agreement", params.target_agreement)?;
    if params.holdout_every < 2 {
        return Err("--holdout-every must be at least 2".into());
    }

    eprintln!("labeling a {samples}-sample corpus through the cycle sim…");
    let ds = misam::dataset::Dataset::generate(samples, seed);
    eprintln!("fitting {} forest(s) of {} tree(s)…", DesignId::ALL.len(), params.forest.n_trees);
    let bundle = misam::training::train_surrogate(&ds, &params);
    let cal = &bundle.calibration;
    eprintln!(
        "calibration on {} held-out pair(s): band tau 10^{:.3}, {} gated \
         ({:.1}% agreement inside the band), overall agreement {:.1}%, \
         fallback rate {:.1}%",
        cal.holdout,
        cal.tau_log10,
        cal.gated,
        cal.gated_agreement * 100.0,
        cal.overall_agreement * 100.0,
        cal.fallback_rate * 100.0,
    );
    for (d, per) in DesignId::ALL.iter().zip(&cal.per_design) {
        eprintln!(
            "  {d}: {} holdout pair(s), {} fallback(s), gated agreement {:.1}%",
            per.support,
            per.fallbacks,
            per.gated_agreement * 100.0
        );
    }
    bundle.save(out).map_err(String::from)?;
    eprintln!("surrogate bundle written to {out}");
    Ok(())
}

/// Loads A and (sparse or dense-shape) B from the flag set.
fn load_operands(flags: &Flags) -> Result<(CsrMatrix, Option<CsrMatrix>, usize), String> {
    let a = io::read_matrix_market_file(flags.require("a")?).map_err(|e| e.to_string())?;
    match (flags.get("b"), flags.get("dense-cols")) {
        (Some(path), None) => {
            let b = io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            if a.cols() != b.rows() {
                return Err(format!(
                    "A is {}x{} but B is {}x{}",
                    a.rows(),
                    a.cols(),
                    b.rows(),
                    b.cols()
                ));
            }
            Ok((a, Some(b), 0))
        }
        (None, Some(n)) => {
            let cols: usize = n.parse().map_err(|_| format!("bad --dense-cols '{n}'"))?;
            Ok((a, None, cols))
        }
        _ => Err("give exactly one of --b M.mtx or --dense-cols N".into()),
    }
}

fn operand<'m>(b: &'m Option<CsrMatrix>, a: &CsrMatrix, dense_cols: usize) -> Operand<'m> {
    match b {
        Some(m) => Operand::Sparse(m),
        None => Operand::Dense { rows: a.cols(), cols: dense_cols },
    }
}

fn predict(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["models", "a", "b", "dense-cols"])?;
    let bundle = ModelBundle::load(flags.require("models")?)?;
    let (a, b, dense_cols) = load_operands(flags)?;
    let mut system = bundle.into_system();
    let report = system.execute(&a, operand(&b, &a, dense_cols));
    println!("predicted design : {}", report.predicted);
    println!("executed on      : {}", report.decision.execute_on);
    println!("reconfigured     : {}", report.decision.reconfigured);
    println!("predicted latency: {:.3} ms", report.decision.predicted_latency_s * 1e3);
    println!("simulated latency: {:.3} ms", report.sim.time_s * 1e3);
    println!("energy           : {:.3} mJ", report.sim.energy_j * 1e3);
    Ok(())
}

fn parse_designs(flags: &Flags) -> Result<Vec<DesignId>, String> {
    match flags.get("design") {
        None => Ok(DesignId::ALL.to_vec()),
        Some(n) => {
            let idx: usize = n.parse().map_err(|_| format!("bad --design '{n}'"))?;
            if !(1..=4).contains(&idx) {
                return Err("--design must be 1..4".into());
            }
            Ok(vec![DesignId::from_index(idx - 1)])
        }
    }
}

fn sim_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["a", "matrix", "b", "dense-cols", "design"])?;
    let designs = parse_designs(flags)?;
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "design", "cycles", "time", "energy", "util", "tiles"
    );
    let print_row = |d: DesignId, r: misam_sim::SimReport| {
        println!(
            "{:<10} {:>12} {:>10.3}ms {:>8.3}mJ {:>7.1}% {:>8}",
            d.to_string(),
            r.cycles,
            r.time_s * 1e3,
            r.energy_j * 1e3,
            r.pe_utilization * 100.0,
            r.tiles
        );
    };
    match (flags.get("a"), flags.get("matrix")) {
        (Some(_), None) => {
            let (a, b, dense_cols) = load_operands(flags)?;
            let op = operand(&b, &a, dense_cols);
            for d in designs {
                print_row(d, simulate(&a, op, d));
            }
        }
        (None, Some(path)) => {
            // Out-of-core path: A stays an mmapped slab view end to end.
            let a = SlabMatrix::open(path).map_err(|e| e.to_string())?;
            let b = match (flags.get("b"), flags.get("dense-cols")) {
                (Some(bp), None) => {
                    let b = io::read_matrix_market_file(bp).map_err(|e| e.to_string())?;
                    if a.cols() != b.rows() {
                        return Err(format!(
                            "A is {}x{} but B is {}x{}",
                            a.rows(),
                            a.cols(),
                            b.rows(),
                            b.cols()
                        ));
                    }
                    Some(b)
                }
                (None, Some(n)) => {
                    let _: usize = n.parse().map_err(|_| format!("bad --dense-cols '{n}'"))?;
                    None
                }
                _ => return Err("give exactly one of --b M.mtx or --dense-cols N".into()),
            };
            let op = match &b {
                Some(m) => Operand::Sparse(m),
                None => {
                    Operand::Dense { rows: a.cols(), cols: flags.get_or("dense-cols", 512usize)? }
                }
            };
            for d in designs {
                print_row(d, simulate_ref(a.as_ref(), op, d));
            }
        }
        _ => return Err("give exactly one of --a A.mtx or --matrix A.msab".into()),
    }
    Ok(())
}

fn ingest_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["in", "out", "budget"])?;
    let input = flags.require("in")?;
    let default_out = std::path::Path::new(input).with_extension("msab");
    let out = match flags.get("out") {
        Some(o) => o.to_string(),
        None => default_out.to_string_lossy().into_owned(),
    };
    let budget: usize = flags.get_or("budget", slab::DEFAULT_INGEST_BUDGET)?;
    if budget == 0 {
        return Err("--budget must be positive".into());
    }
    let report =
        slab::ingest_matrix_market_with_budget(input, &out, budget).map_err(|e| e.to_string())?;
    eprintln!(
        "ingested {input} -> {out}: {}x{} with {} nnz in {} chunk(s), \
         {} -> {} bytes, digest {:#018x}",
        report.rows,
        report.cols,
        report.nnz,
        report.chunks,
        report.mtx_bytes,
        report.slab_bytes,
        report.content_digest
    );
    Ok(())
}

fn corpus_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["scale", "seed", "ingest"])?;
    let scale: u32 = flags.get_or("scale", 100u32)?;
    let seed: u64 = flags.get_or("seed", 2025u64)?;
    if !(1..=10_000).contains(&scale) {
        return Err("--scale must be in 1..=10000".into());
    }
    let tiers = misam::workloads::corpus_tiers(scale);
    let ws = misam::workloads::real_matrix_corpus(scale, seed);
    println!("{:<16} {:>6} {:>9} {:>12} {:>10}", "matrix", "tier", "rows", "nnz", "density");
    for w in &ws {
        println!(
            "{:<16} {:>6} {:>9} {:>12} {:>10.2e}",
            w.name,
            w.name.rsplit('@').next().unwrap_or("?"),
            w.a.rows(),
            w.a.nnz(),
            w.a.density()
        );
    }
    println!("\n{} matrices across tiers {tiers:?} (scale {scale}/10000)", ws.len());
    if let Some(dir) = flags.get("ingest") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        for w in &ws {
            let path = std::path::Path::new(dir).join(format!("{}.msab", w.name));
            slab::write_slab(&path, &w.a).map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {} slabs to {dir}", ws.len());
    }
    Ok(())
}

fn features(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["a", "b", "dense-cols"])?;
    let (a, b, dense_cols) = load_operands(flags)?;
    let cfg = TileConfig::default();
    let f = match &b {
        Some(bm) => PairFeatures::extract(&a, bm, &cfg),
        None => PairFeatures::extract_dense_b(&a, a.cols(), dense_cols, &cfg),
    };
    for (name, value) in FEATURE_NAMES.iter().zip(f.to_vector()) {
        println!("{name:<24} {value}");
    }
    Ok(())
}

fn generate(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["kind", "rows", "cols", "density", "seed", "out"])?;
    let kind = flags.require("kind")?;
    let rows: usize = flags.require("rows")?.parse().map_err(|_| "bad --rows")?;
    let cols: usize = flags.get_or("cols", rows)?;
    let density: f64 = flags.get_or("density", 0.01)?;
    let seed: u64 = flags.get_or("seed", 1u64)?;
    let out = flags.require("out")?;

    let m = match kind {
        "uniform" => gen::uniform_random(rows, cols, density, seed),
        "power-law" => gen::power_law(rows, cols, (density * cols as f64).max(1.0), 1.5, seed),
        "banded" => {
            let bw = ((density * cols as f64 / 1.4).ceil() as usize).max(1);
            gen::banded(rows, cols, bw, 0.7, seed)
        }
        "pruned-dnn" => gen::pruned_dnn(rows, cols, density, seed),
        "regular" => {
            gen::regular_degree(rows, cols, ((density * cols as f64).round() as usize).max(1), seed)
        }
        "circuit" => gen::circuit(rows, cols, density * cols as f64, (rows / 256).max(1), seed),
        other => return Err(format!("unknown generator kind '{other}'")),
    };
    io::write_matrix_market_file(out, &m).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out}: {}x{} with {} nnz (density {:.3e})",
        m.rows(),
        m.cols(),
        m.nnz(),
        m.density()
    );
    Ok(())
}

fn dataset_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["out", "samples", "seed", "format", "oracle", "surrogate"])?;
    let out = flags.require("out")?;
    let samples: usize = flags.get_or("samples", 1000)?;
    let seed: u64 = flags.get_or("seed", 2025u64)?;
    let format = flags.get("format").unwrap_or("csv");
    let oracle = flags.get("oracle").unwrap_or("sim");
    eprintln!("generating {samples}-sample corpus (4 designs per sample, {oracle} oracle)…");
    let ds = match oracle {
        "sim" => misam::dataset::Dataset::generate(samples, seed),
        "surrogate" | "tiered" => {
            // A private tier (not the process global) so the labeling
            // stats below describe exactly this corpus.
            let tiered = misam_oracle::TieredOracle::new();
            if let Some(path) = flags.get("surrogate") {
                tiered.load_bundle(path).map_err(String::from)?;
            } else if oracle == "surrogate" {
                return Err("--oracle surrogate needs a --surrogate bundle.json".into());
            }
            if oracle == "surrogate" {
                // Ungated: trust every surrogate answer, never fall back.
                let model = tiered.model().expect("bundle installed above");
                tiered.install(std::sync::Arc::new(model.with_tau(f64::NEG_INFINITY)));
            }
            let ds = misam::dataset::Dataset::generate_with_threads_via(
                samples,
                seed,
                misam_oracle::pool::default_threads(),
                &tiered,
            );
            let stats = tiered.stats();
            eprintln!(
                "labeled {} pair(s) from the surrogate, {} by cycle-sim fallback, {} unmodeled",
                stats.surrogate_pairs, stats.fallback_pairs, stats.unmodeled_pairs
            );
            ds
        }
        other => return Err(format!("unknown oracle '{other}' (sim|surrogate|tiered)")),
    };
    let body = match format {
        "csv" => ds.to_csv(),
        "json" => ds.to_json().map_err(|e| e.to_string())?,
        other => return Err(format!("unknown format '{other}' (csv|json)")),
    };
    std::fs::write(out, body).map_err(|e| e.to_string())?;
    let hist = ds.label_histogram(misam::Objective::Latency);
    eprintln!(
        "wrote {out}: labels D1 {} / D2 {} / D3 {} / D4 {}",
        hist[0], hist[1], hist[2], hist[3]
    );
    Ok(())
}

fn suite_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&["scale", "seed"])?;
    let scale: f64 = flags.get_or("scale", 0.05)?;
    let seed: u64 = flags.get_or("seed", 2025u64)?;
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let ws = misam::workloads::suite(scale, seed);
    println!(
        "{:<26} {:<6} {:>9} {:>12} {:>10} {:>8}",
        "workload", "cat", "A rows", "A nnz", "dens(A)", "B"
    );
    for w in &ws {
        let b = match &w.b {
            misam::workloads::WorkloadB::Dense { rows, cols } => format!("{rows}x{cols} D"),
            misam::workloads::WorkloadB::Sparse(m) => format!("{}x{} S", m.rows(), m.cols()),
        };
        println!(
            "{:<26} {:<6} {:>9} {:>12} {:>10.2e} {:>8}",
            w.name,
            w.category.label(),
            w.a.rows(),
            w.a.nnz(),
            w.a.density(),
            b
        );
    }
    println!(
        "
{} workloads at HS scale {scale}",
        ws.len()
    );
    Ok(())
}

fn serve_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&[
        "models",
        "addr",
        "threads",
        "mode",
        "reactors",
        "batch-max",
        "batch-wait-us",
        "queue-cap",
        "learn",
        "learn-sample",
        "learn-queue-cap",
        "learn-window",
        "learn-min-window",
        "learn-cadence-ms",
        "learn-drift",
        "learn-min-new",
        "learn-objective",
        "learn-seed",
        "label-via",
        "surrogate",
    ])?;
    let bundle = ModelBundle::load(flags.require("models")?)?;
    let mode = match flags.get("mode").unwrap_or("auto") {
        "auto" => ServeMode::Auto,
        "event" => ServeMode::Event,
        "blocking" => ServeMode::Blocking,
        other => return Err(format!("bad --mode '{other}' (auto|event|blocking)")),
    };
    let learn = match flags.get("learn").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("bad --learn '{other}' (on|off)")),
    };
    let cfg = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
        threads: flags.get_or("threads", 0usize)?,
        mode,
        reactors: flags.get_or("reactors", 0usize)?,
        batch_max: flags.get_or("batch-max", 64usize)?,
        batch_wait_us: flags.get_or("batch-wait-us", 200u64)?,
        queue_cap: flags.get_or("queue-cap", 4096usize)?,
        learn_sample_every: if learn { flags.get_or("learn-sample", 1u64)? } else { 0 },
        learn_queue_cap: flags.get_or("learn-queue-cap", 1024usize)?,
        ..ServeConfig::default()
    };
    if cfg.batch_max == 0 || cfg.queue_cap == 0 {
        return Err("--batch-max and --queue-cap must be positive".into());
    }
    if learn && cfg.learn_sample_every == 0 {
        return Err("--learn-sample must be positive when --learn on".into());
    }
    let label_via = match flags.get("label-via").unwrap_or("sim") {
        "sim" => misam_learn::LabelVia::Sim,
        "tiered" => misam_learn::LabelVia::Tiered,
        other => return Err(format!("bad --label-via '{other}' (sim|tiered)")),
    };
    if let Some(path) = flags.get("surrogate") {
        // Install the bundle into the process-global tier the learner
        // labels through; --label-via tiered without a bundle still
        // works (sim-only until one is installed).
        misam_oracle::tiered_global().load_bundle(path).map_err(String::from)?;
        eprintln!("surrogate bundle {path} installed for tiered labeling");
    }
    let learn_cfg = if learn {
        let defaults = misam_learn::LearnConfig::default();
        Some(misam_learn::LearnConfig {
            objective: match flags.get("learn-objective").unwrap_or("latency") {
                "latency" => misam::dataset::Objective::Latency,
                "energy" => misam::dataset::Objective::Energy,
                other => return Err(format!("bad --learn-objective '{other}' (latency|energy)")),
            },
            window: flags.get_or("learn-window", defaults.window)?,
            min_window: flags.get_or("learn-min-window", defaults.min_window)?,
            cadence: std::time::Duration::from_millis(flags.get_or("learn-cadence-ms", 500u64)?),
            drift_threshold: flags.get_or("learn-drift", defaults.drift_threshold)?,
            min_new_labels: flags.get_or("learn-min-new", defaults.min_new_labels)?,
            seed: flags.get_or("learn-seed", defaults.seed)?,
            label_via,
            ..defaults
        })
    } else {
        None
    };

    let sigint = misam_serve::sigint_flag();
    let server = Server::start(bundle, cfg).map_err(|e| format!("cannot bind: {e}"))?;
    // The learner rides on the server's shared model and tap: sampled
    // traffic is oracle-labeled in the background and retrains are
    // hot-published without a restart or an on-disk bundle.
    let learner = learn_cfg.map(|cfg| {
        let tap = server.learn_tap().expect("tap installed when --learn on");
        misam_learn::Learner::spawn(server.shared_model(), tap, cfg)
    });
    let engine = if server.event_driven() {
        format!("event-driven, {} reactor shard(s)", server.shards())
    } else {
        "blocking, thread-per-connection".to_string()
    };
    let learning = if learner.is_some() { ", online learning on" } else { "" };
    eprintln!(
        "misam-serve listening on {} [{engine}{learning}] (Ctrl-C or a Shutdown request stops it)",
        server.addr()
    );
    // Condvar-backed wait: wakes immediately on a Shutdown request; the
    // short timeout only bounds how stale a Ctrl-C can get.
    while !server.wait_stopping(std::time::Duration::from_millis(200))
        && !sigint.load(std::sync::atomic::Ordering::SeqCst)
    {}
    eprintln!("draining…");
    if let Some(learner) = learner {
        learner.stop();
    }
    let stats = server.shutdown();
    let dump = serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?;
    println!("{dump}");
    Ok(())
}

/// Builds a [`GenSpec`] from client flags (shared by the predict-gen and
/// simulate operations).
fn gen_spec(flags: &Flags) -> Result<GenSpec, String> {
    Ok(GenSpec {
        kind: flags.get("kind").unwrap_or("uniform").to_string(),
        rows: flags.get_or("rows", 1024usize)?,
        cols: flags.get_or("cols", flags.get_or("rows", 1024usize)?)?,
        density: flags.get_or("density", 0.01f64)?,
        seed: flags.get_or("seed", 1u64)?,
        dense_cols: flags.get_or("dense-cols", 64usize)?,
    })
}

fn print_response(resp: &Response) -> Result<(), String> {
    let text = serde_json::to_string_pretty(resp).map_err(|e| e.to_string())?;
    println!("{text}");
    match resp {
        Response::Error(e) => Err(format!("server error ({:?}): {}", e.code, e.message)),
        Response::Overloaded(o) => {
            Err(format!("server overloaded, retry after {} ms", o.retry_after_ms))
        }
        _ => Ok(()),
    }
}

fn client_cmd(flags: &Flags) -> Result<(), String> {
    flags.expect_only(&[
        "addr",
        "op",
        "path",
        "design",
        "matrix",
        "kind",
        "rows",
        "cols",
        "density",
        "seed",
        "dense-cols",
        "connections",
        "requests",
        "batch",
        "open-loop",
        "idle-conns",
        "gen-kind",
        "gen-rows",
        "gen-density",
        "gen-dense-cols",
        "shift-at",
        "gen-kind-after",
        "gen-density-after",
        "expect-retrain",
    ])?;
    let addr = flags.require("addr")?;
    let op = flags.require("op")?;
    if op == "load" {
        let open_loop_rps = match flags.get("open-loop") {
            None => None,
            Some(s) => {
                let rps: f64 = s.parse().map_err(|_| format!("bad --open-loop '{s}'"))?;
                if rps <= 0.0 {
                    return Err("--open-loop must be a positive arrival rate".into());
                }
                Some(rps)
            }
        };
        // --gen-kind switches the run to generator-driven PredictGen
        // traffic (labelable by the online-learning tap); --shift-at
        // flips the family/density mid-run to manufacture drift.
        let gen = match flags.get("gen-kind") {
            None => None,
            Some(kind) => {
                let defaults = GenTraffic::default();
                let shift_at = match flags.get("shift-at") {
                    None => None,
                    Some(s) => Some(s.parse().map_err(|_| format!("bad --shift-at '{s}'"))?),
                };
                Some(GenTraffic {
                    kind: kind.to_string(),
                    rows: flags.get_or("gen-rows", defaults.rows)?,
                    density: flags.get_or("gen-density", defaults.density)?,
                    dense_cols: flags.get_or("gen-dense-cols", defaults.dense_cols)?,
                    shift_at,
                    kind_after: flags
                        .get("gen-kind-after")
                        .unwrap_or(&defaults.kind_after)
                        .to_string(),
                    density_after: flags.get_or(
                        "gen-density-after",
                        flags.get_or("gen-density", defaults.density)?,
                    )?,
                })
            }
        };
        let load = LoadGen {
            connections: flags.get_or("connections", 4usize)?,
            requests_per_conn: flags.get_or("requests", 1000usize)?,
            batch_size: flags.get_or("batch", 16usize)?,
            seed: flags.get_or("seed", 7u64)?,
            open_loop_rps,
            idle_conns: flags.get_or("idle-conns", 0usize)?,
            gen,
        };
        let report = load.run(addr).map_err(|e| format!("load run failed: {e}"))?;
        let text = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        println!("{text}");
        return Ok(());
    }
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if op == "drift" {
        // Focused view of the Stats reply: the online-learning loop and
        // per-shard admission counters. --expect-retrain true makes the
        // exit status assert at least one published retrain (smoke-test
        // hook).
        let resp = client.stats().map_err(|e| format!("request failed: {e}"))?;
        let Response::Stats(stats) = resp else {
            return Err(format!("unexpected stats reply: {resp:?}"));
        };
        #[derive(serde::Serialize)]
        struct DriftView {
            learn: misam_serve::LearnStatsReply,
            batch_shards: Vec<misam_serve::protocol::BatchShardStats>,
        }
        let publishes = stats.learn.publishes;
        let view = DriftView { learn: stats.learn, batch_shards: stats.batch_shards };
        let text = serde_json::to_string_pretty(&view).map_err(|e| e.to_string())?;
        println!("{text}");
        if flags.get_or("expect-retrain", false)? && publishes == 0 {
            return Err("expected at least one published retrain, saw none".into());
        }
        return Ok(());
    }
    let resp = match op {
        "stats" => client.stats(),
        "shutdown" => client.shutdown(),
        "reload" => client.reload(flags.require("path")?),
        "predict-gen" => client.predict_gen(gen_spec(flags)?),
        // --matrix names an ingested slab on the server host; otherwise
        // the generator-spec flags describe a synthetic workload.
        "simulate" => match flags.get("matrix") {
            Some(path) => {
                let dense_cols = match flags.get("dense-cols") {
                    None => None,
                    Some(n) => Some(n.parse().map_err(|_| format!("bad --dense-cols '{n}'"))?),
                };
                client.simulate_matrix(path, dense_cols, flags.get_or("design", 1usize)?)
            }
            None => client.simulate(gen_spec(flags)?, flags.get_or("design", 1usize)?),
        },
        other => return Err(format!("unknown --op '{other}'")),
    }
    .map_err(|e| format!("request failed: {e}"))?;
    print_response(&resp)
}

fn designs() {
    println!(
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>11} {:>9} {:>12}",
        "design", "ch_A", "ch_B", "ch_C", "PEGs", "scheduler", "format B", "freq"
    );
    for d in DesignId::ALL {
        let c = DesignConfig::of(d);
        println!(
            "{:<10} {:>5} {:>5} {:>5} {:>5} {:>11} {:>9} {:>9.1}MHz",
            d.to_string(),
            c.ch_a,
            c.ch_b,
            c.ch_c,
            c.pegs,
            format!("{:?}", c.scheduler_a),
            format!("{:?}", c.format_b),
            c.freq_mhz
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    fn tmp() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("misam_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn designs_prints() {
        assert!(dispatch(&argv(&["designs"])).is_ok());
    }

    #[test]
    fn dataset_exports_csv_and_json() {
        let dir = tmp();
        let csv = dir.join("c.csv");
        let json = dir.join("c.json");
        dispatch(&argv(&[
            "dataset",
            "--out",
            csv.to_str().unwrap(),
            "--samples",
            "6",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "dataset",
            "--out",
            json.to_str().unwrap(),
            "--samples",
            "6",
            "--seed",
            "3",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&csv).unwrap().lines().count() == 7);
        assert!(std::fs::read_to_string(&json).unwrap().starts_with('{'));
        assert!(dispatch(&argv(&["dataset", "--out", csv.to_str().unwrap(), "--format", "xml",]))
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_lists_workloads() {
        assert!(dispatch(&argv(&["suite", "--scale", "0.01"])).is_ok());
        assert!(dispatch(&argv(&["suite", "--scale", "-1"])).is_err());
    }

    #[test]
    fn gen_simulate_features_roundtrip() {
        let dir = tmp();
        let a = dir.join("a.mtx");
        let a_s = a.to_str().unwrap();
        dispatch(&argv(&[
            "gen",
            "--kind",
            "power-law",
            "--rows",
            "200",
            "--density",
            "0.02",
            "--seed",
            "3",
            "--out",
            a_s,
        ]))
        .unwrap();
        dispatch(&argv(&["simulate", "--a", a_s, "--dense-cols", "64"])).unwrap();
        dispatch(&argv(&["simulate", "--a", a_s, "--dense-cols", "64", "--design", "2"])).unwrap();
        dispatch(&argv(&["features", "--a", a_s, "--dense-cols", "64"])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_then_simulate_out_of_core() {
        let dir = tmp();
        let a = dir.join("oc.mtx");
        let a_s = a.to_str().unwrap();
        dispatch(&argv(&[
            "gen",
            "--kind",
            "power-law",
            "--rows",
            "180",
            "--density",
            "0.03",
            "--seed",
            "9",
            "--out",
            a_s,
        ]))
        .unwrap();
        // Default output path swaps the extension; a small budget forces
        // multi-chunk streaming.
        dispatch(&argv(&["ingest", "--in", a_s, "--budget", "64"])).unwrap();
        let slab_path = dir.join("oc.msab");
        assert!(slab_path.exists());
        let slab = SlabMatrix::open(&slab_path).unwrap();
        let owned = io::read_matrix_market_file(a_s).unwrap();
        assert_eq!(slab.to_matrix(), owned);

        dispatch(&argv(&[
            "simulate",
            "--matrix",
            slab_path.to_str().unwrap(),
            "--dense-cols",
            "64",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--matrix",
            slab_path.to_str().unwrap(),
            "--dense-cols",
            "64",
            "--design",
            "3",
        ]))
        .unwrap();

        // Flag validation: --a and --matrix are mutually exclusive, and
        // a missing slab is a readable error.
        let err = dispatch(&argv(&[
            "simulate",
            "--a",
            a_s,
            "--matrix",
            slab_path.to_str().unwrap(),
            "--dense-cols",
            "8",
        ]))
        .unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        assert!(dispatch(&argv(&["ingest", "--in", a_s, "--budget", "0"])).is_err());
        assert!(dispatch(&argv(&[
            "simulate",
            "--matrix",
            dir.join("nope.msab").to_str().unwrap(),
            "--dense-cols",
            "8",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_lists_tiers_and_ingests_slabs() {
        let dir = tmp();
        let slabs = dir.join("corpus_slabs");
        dispatch(&argv(&[
            "corpus",
            "--scale",
            "2",
            "--seed",
            "4",
            "--ingest",
            slabs.to_str().unwrap(),
        ]))
        .unwrap();
        // Tiers [1, 2] x 12 catalog matrices, one slab each.
        let count = std::fs::read_dir(&slabs).unwrap().count();
        assert_eq!(count, 24);
        let one = SlabMatrix::open(slabs.join("p2p@2.msab")).unwrap();
        assert!(one.nnz() > 0);
        assert!(dispatch(&argv(&["corpus", "--scale", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparse_b_path_checks_dimensions() {
        let dir = tmp();
        let a = dir.join("a2.mtx");
        let b = dir.join("b2.mtx");
        dispatch(&argv(&[
            "gen",
            "--kind",
            "uniform",
            "--rows",
            "50",
            "--out",
            a.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "gen",
            "--kind",
            "uniform",
            "--rows",
            "60",
            "--out",
            b.to_str().unwrap(),
        ]))
        .unwrap();
        let err =
            dispatch(&argv(&["simulate", "--a", a.to_str().unwrap(), "--b", b.to_str().unwrap()]))
                .unwrap_err();
        assert!(err.contains("50x50"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_then_predict_via_bundle() {
        let dir = tmp();
        let models = dir.join("models.json");
        let a = dir.join("a3.mtx");
        dispatch(&argv(&[
            "train",
            "--out",
            models.to_str().unwrap(),
            "--samples",
            "120",
            "--latency",
            "150",
            "--seed",
            "5",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "gen",
            "--kind",
            "uniform",
            "--rows",
            "150",
            "--density",
            "0.05",
            "--out",
            a.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "predict",
            "--models",
            models.to_str().unwrap(),
            "--a",
            a.to_str().unwrap(),
            "--dense-cols",
            "64",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_subcommand_round_trips_against_a_live_server() {
        let dir = tmp();
        let models = dir.join("serve_models.json");
        dispatch(&argv(&[
            "train",
            "--out",
            models.to_str().unwrap(),
            "--samples",
            "120",
            "--latency",
            "150",
            "--seed",
            "5",
        ]))
        .unwrap();
        let bundle = ModelBundle::load(models.to_str().unwrap()).unwrap();
        let server = Server::start(bundle, ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        dispatch(&argv(&["client", "--addr", &addr, "--op", "stats"])).unwrap();
        dispatch(&argv(&[
            "client",
            "--addr",
            &addr,
            "--op",
            "predict-gen",
            "--kind",
            "power-law",
            "--rows",
            "256",
            "--density",
            "0.02",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "client", "--addr", &addr, "--op", "simulate", "--rows", "128", "--design", "2",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "client",
            "--addr",
            &addr,
            "--op",
            "load",
            "--connections",
            "2",
            "--requests",
            "5",
            "--batch",
            "4",
        ]))
        .unwrap();
        // Open-loop pacing plus an idle-connection flood ride the same
        // subcommand.
        dispatch(&argv(&[
            "client",
            "--addr",
            &addr,
            "--op",
            "load",
            "--connections",
            "1",
            "--requests",
            "5",
            "--batch",
            "1",
            "--open-loop",
            "500",
            "--idle-conns",
            "8",
        ]))
        .unwrap();
        // Server-reported errors must surface as CLI errors.
        let err =
            dispatch(&argv(&["client", "--addr", &addr, "--op", "simulate", "--design", "9"]))
                .unwrap_err();
        assert!(err.contains("BadGenSpec"), "{err}");

        dispatch(&argv(&["client", "--addr", &addr, "--op", "shutdown"])).unwrap();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_and_serve_flag_validation() {
        assert!(dispatch(&argv(&["client", "--op", "stats"])).is_err(), "addr is required");
        assert!(dispatch(&argv(&["client", "--addr", "x", "--op", "nope"])).is_err());
        assert!(dispatch(&argv(&["serve", "--addr", "127.0.0.1:0"])).is_err(), "models required");
        let err = dispatch(&argv(&["serve", "--models", "/nonexistent.json"])).unwrap_err();
        assert!(err.contains("nonexistent") || err.contains("No such file"), "{err}");
        let err = dispatch(&argv(&["client", "--addr", "x", "--op", "load", "--open-loop", "-3"]))
            .unwrap_err();
        assert!(err.contains("open-loop"), "{err}");
    }

    #[test]
    fn drift_op_reports_the_learning_loop_against_a_live_server() {
        let dir = tmp();
        let models = dir.join("learn_models.json");
        dispatch(&argv(&[
            "train",
            "--out",
            models.to_str().unwrap(),
            "--samples",
            "80",
            "--latency",
            "100",
            "--seed",
            "5",
        ]))
        .unwrap();
        let bundle = ModelBundle::load(models.to_str().unwrap()).unwrap();
        // Mirrors `misam serve --learn on`: tap in the server, learner on
        // the shared model (the command itself blocks until shutdown, so
        // the test assembles the same pieces directly).
        let server =
            Server::start(bundle, ServeConfig { learn_sample_every: 1, ..ServeConfig::default() })
                .unwrap();
        let learner = misam_learn::Learner::spawn(
            server.shared_model(),
            server.learn_tap().expect("tap installed"),
            misam_learn::LearnConfig {
                window: 24,
                min_window: 8,
                cadence: std::time::Duration::from_millis(20),
                drift_threshold: -1.0,
                min_new_labels: 4,
                ..misam_learn::LearnConfig::default()
            },
        );
        let addr = server.addr().to_string();

        // Gen-driven load with a mid-run distribution shift: the first
        // half draws uniform matrices, the second half banded.
        dispatch(&argv(&[
            "client",
            "--addr",
            &addr,
            "--op",
            "load",
            "--connections",
            "2",
            "--requests",
            "8",
            "--gen-kind",
            "uniform",
            "--gen-rows",
            "80",
            "--gen-density",
            "0.05",
            "--gen-dense-cols",
            "24",
            "--shift-at",
            "8",
            "--gen-kind-after",
            "banded",
        ]))
        .unwrap();

        // Poll the drift view until the forced-refit learner publishes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            let result = dispatch(&argv(&[
                "client",
                "--addr",
                &addr,
                "--op",
                "drift",
                "--expect-retrain",
                "true",
            ]));
            if result.is_ok() {
                break;
            }
            if std::time::Instant::now() >= deadline {
                result.expect("learner never published a retrain");
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        dispatch(&argv(&["client", "--addr", &addr, "--op", "shutdown"])).unwrap();
        learner.stop();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn operand_flags_are_mutually_exclusive() {
        let dir = tmp();
        let a = dir.join("a4.mtx");
        dispatch(&argv(&[
            "gen",
            "--kind",
            "uniform",
            "--rows",
            "40",
            "--out",
            a.to_str().unwrap(),
        ]))
        .unwrap();
        let err = dispatch(&argv(&["simulate", "--a", a.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
