//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `--name value` pairs from `argv`.
    ///
    /// # Errors
    ///
    /// Rejects bare positionals, unterminated flags, and repeated flags.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(tok) = it.next() {
            let name =
                tok.strip_prefix("--").ok_or_else(|| format!("expected a --flag, got '{tok}'"))?;
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?.clone();
            if values.insert(name.to_string(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Flags { values })
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unparseable flag.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("flag --{name}: cannot parse '{raw}'")),
        }
    }

    /// Verifies no flags outside `known` were given.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown flag.
    pub fn expect_only(&self, known: &[&str]) -> Result<(), String> {
        for k in self.values.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let f = Flags::parse(&argv(&["--a", "1", "--b", "two"])).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.require("b").unwrap(), "two");
        assert_eq!(f.get("c"), None);
    }

    #[test]
    fn rejects_positionals_and_dangling_flags() {
        assert!(Flags::parse(&argv(&["oops"])).is_err());
        assert!(Flags::parse(&argv(&["--a"])).is_err());
        assert!(Flags::parse(&argv(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn typed_defaults_and_parse_errors() {
        let f = Flags::parse(&argv(&["--n", "42"])).unwrap();
        assert_eq!(f.get_or("n", 7usize).unwrap(), 42);
        assert_eq!(f.get_or("m", 7usize).unwrap(), 7);
        let bad = Flags::parse(&argv(&["--n", "forty"])).unwrap();
        assert!(bad.get_or("n", 7usize).is_err());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let f = Flags::parse(&argv(&["--good", "1", "--bad", "2"])).unwrap();
        assert!(f.expect_only(&["good"]).is_err());
        assert!(f.expect_only(&["good", "bad"]).is_ok());
    }
}
