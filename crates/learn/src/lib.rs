//! misam-learn: the online learning loop.
//!
//! Closes the serve-side feedback cycle: sampled production traffic
//! (tapped by `misam-serve`'s [`LearnTap`]) is oracle-labeled in the
//! background, accumulated into a rolling window, and periodically
//! retrained into a fresh [`ModelBundle`] that is hot-published back
//! into the serving [`SharedModel`] — all off the request hot path.
//!
//! The loop is deliberately conservative about when it retrains:
//!
//! - **Full refit** only when observed drift (1 − rolling
//!   selector-vs-oracle agreement) exceeds [`LearnConfig::drift_threshold`].
//!   A refit reruns the whole training pipeline ([`train_selector`] +
//!   [`train_latency_predictor`]) on the rolling window, so given the
//!   same window and seed it is byte-identical to an offline refit.
//! - **Touch-up** otherwise: the serving selector is copy-pruned
//!   against the window ([`TrainedSelector::refreshed_with_validation`])
//!   and published only if pruning actually removed subtrees.
//!
//! Every published bundle goes through [`SharedModel::publish`], which
//! stamps a fresh generation number under the model write lock, so
//! in-flight batches (which snapshot once per flush) are never torn
//! across generations.

#![warn(missing_docs)]

use misam::dataset::{Dataset, Objective, Sample};
use misam::persist::ModelBundle;
use misam::training::{train_latency_predictor, train_selector};
use misam_oracle::Executor;
use misam_serve::state::SharedModel;
use misam_serve::{LearnTap, TapSample};
use misam_sim::{DesignId, Operand};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which oracle tier labels tapped traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelVia {
    /// The memoized cycle simulator ([`misam_oracle::global`]).
    #[default]
    Sim,
    /// The tiered oracle ([`misam_oracle::tiered_global`]): gated
    /// surrogate answers with cycle-sim fallback. Degrades to sim-only
    /// labeling while no surrogate bundle is installed.
    Tiered,
}

/// Tuning knobs for the background learning loop.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Label objective: what "the right design" means for this deployment.
    pub objective: Objective,
    /// Rolling labeled-window capacity (oldest samples age out).
    pub window: usize,
    /// Minimum labeled samples before any retrain is considered.
    pub min_window: usize,
    /// Minimum time between retrain evaluations.
    pub cadence: Duration,
    /// Drift (1 − rolling agreement) above which a full refit runs
    /// instead of a prune touch-up. Negative forces full refits.
    pub drift_threshold: f64,
    /// New labels required since the last evaluation before another runs.
    pub min_new_labels: usize,
    /// Size of the rolling agreement ring (recent predicted-vs-oracle
    /// pairs scored for the drift signal).
    pub agreement_window: usize,
    /// Training seed for refits (determinism: same window + seed →
    /// byte-identical bundle).
    pub seed: u64,
    /// Oracle tier used to label tapped traffic.
    pub label_via: LabelVia,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            objective: Objective::Latency,
            window: 512,
            min_window: 64,
            cadence: Duration::from_millis(500),
            drift_threshold: 0.1,
            min_new_labels: 32,
            agreement_window: 128,
            seed: 7,
            label_via: LabelVia::Sim,
        }
    }
}

/// A tapped request after oracle labeling.
#[derive(Debug, Clone)]
pub struct LabeledSample {
    /// Feature vector exactly as served (same layout the selector saw).
    pub features: Vec<f64>,
    /// What the serving selector answered at tap time.
    pub predicted: DesignId,
    /// What the simulation oracle says was optimal under the objective.
    pub oracle: DesignId,
    /// Oracle latency per design.
    pub times_s: [f64; 4],
    /// Oracle energy per design.
    pub energies_j: [f64; 4],
    /// Generator family of A (provenance for the dataset row).
    pub kind: String,
}

/// Oracle-labels one tapped sample.
///
/// Only samples with generator provenance ([`TapSample::spec`]) can be
/// labeled: the spec rebuilds A deterministically server-side, and the
/// process-global memoizing oracle sweeps all four designs (each
/// (matrix, design) pair is cycle-simulated at most once per process,
/// so relabeling identical traffic is cache-hit cheap and, crucially,
/// *identical* — the basis of the byte-identity guarantee).
///
/// # Errors
///
/// Returns a message when the sample carries no spec (bare `Predict`
/// vectors have no provenance to simulate) or the spec fails to build.
pub fn label_sample(sample: &TapSample, objective: Objective) -> Result<LabeledSample, String> {
    label_sample_via(sample, objective, LabelVia::Sim)
}

/// [`label_sample`] with an explicit oracle tier. `LabelVia::Tiered`
/// routes through [`misam_oracle::tiered_global`], which answers from
/// the gated surrogate when confident and falls back to the cycle sim
/// otherwise — with no bundle installed it is sim-only, so labels stay
/// byte-identical to the `Sim` path.
///
/// # Errors
///
/// Same contract as [`label_sample`].
pub fn label_sample_via(
    sample: &TapSample,
    objective: Objective,
    via: LabelVia,
) -> Result<LabeledSample, String> {
    let spec = sample.spec.as_ref().ok_or("sample has no generator provenance")?;
    let a = spec.build()?;
    let b = Operand::Dense { rows: a.cols(), cols: spec.dense_cols };
    let reports = match via {
        LabelVia::Sim => misam_oracle::global().execute_all(&a, b),
        LabelVia::Tiered => misam_oracle::tiered_global().execute_all(&a, b),
    };
    let mut times_s = [0.0f64; 4];
    let mut energies_j = [0.0f64; 4];
    for r in &reports {
        times_s[r.design.index()] = r.time_s;
        energies_j[r.design.index()] = r.energy_j;
    }
    let oracle = DesignId::from_index(objective.best_design(&times_s, &energies_j));
    Ok(LabeledSample {
        features: sample.features.clone(),
        predicted: sample.predicted,
        oracle,
        times_s,
        energies_j,
        kind: spec.kind.clone(),
    })
}

/// Full retrain on a labeled window: the same pipeline offline training
/// runs, so the result is deterministic given (window, seed) and
/// byte-identical to an offline refit on the same rows.
///
/// Threshold, reconfiguration-cost constants, and tile geometry are
/// carried over from the bundle being replaced (`base`) — the loop
/// relearns the *selector* and *predictor*, not the deployment's
/// policy constants.
///
/// # Panics
///
/// Panics if `window` is empty (callers gate on `min_window`).
pub fn refit_bundle(
    window: &[LabeledSample],
    objective: Objective,
    seed: u64,
    base: &ModelBundle,
) -> ModelBundle {
    assert!(!window.is_empty(), "refit_bundle needs a non-empty window");
    let dataset = Dataset {
        samples: window
            .iter()
            .map(|s| Sample {
                features: s.features.clone(),
                times_s: s.times_s,
                energies_j: s.energies_j,
                a_kind: s.kind.clone(),
                b_dense: true,
            })
            .collect(),
    };
    let selector = train_selector(&dataset, objective, seed);
    let predictor = train_latency_predictor(&dataset, seed);
    ModelBundle::new(
        selector.selector,
        predictor.predictor,
        base.threshold,
        base.cost,
        base.tile_config(),
    )
}

/// Handle to the background trainer thread.
///
/// Dropping the handle without calling [`Learner::stop`] detaches the
/// thread (it keeps running until the process exits); `stop` joins it.
#[derive(Debug)]
pub struct Learner {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Learner {
    /// Starts the tap → label → retrain → publish loop on a background
    /// thread. The loop drains the tap in small batches, labels each
    /// sample against the global oracle, and evaluates the retrain
    /// policy at most once per [`LearnConfig::cadence`].
    pub fn spawn(model: Arc<SharedModel>, tap: Arc<LearnTap>, cfg: LearnConfig) -> Learner {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("misam-learn".into())
            .spawn(move || trainer_loop(&model, &tap, &cfg, &flag))
            .expect("spawn learner thread");
        Learner { stop, thread: Some(thread) }
    }

    /// Signals the trainer to exit and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// How many samples one loop iteration labels before re-checking the
/// stop flag and retrain cadence.
const DRAIN_BATCH: usize = 64;

fn trainer_loop(model: &SharedModel, tap: &LearnTap, cfg: &LearnConfig, stop: &AtomicBool) {
    let window_cap = cfg.window.max(1);
    let ring_cap = cfg.agreement_window.max(1);
    let mut window: VecDeque<LabeledSample> = VecDeque::with_capacity(window_cap);
    // Recent (predicted, oracle) pairs: the drift signal. `hits` tracks
    // agreements inside the ring so the rolling rate is O(1) to read.
    let mut ring: VecDeque<bool> = VecDeque::with_capacity(ring_cap);
    let mut hits: usize = 0;
    let mut new_labels: usize = 0;
    let mut last_eval = Instant::now();

    while !stop.load(Ordering::Relaxed) {
        let mut drained = 0usize;
        while drained < DRAIN_BATCH {
            let Some(sample) = tap.try_pop() else { break };
            drained += 1;
            match label_sample_via(&sample, cfg.objective, cfg.label_via) {
                Ok(labeled) => {
                    if ring.len() == ring_cap && ring.pop_front() == Some(true) {
                        hits -= 1;
                    }
                    let agree = labeled.predicted == labeled.oracle;
                    ring.push_back(agree);
                    hits += usize::from(agree);
                    if window.len() == window_cap {
                        if let Some(old) = window.pop_front() {
                            tap.retire_label(old.predicted, old.oracle);
                        }
                    }
                    let agreement = hits as f64 / ring.len() as f64;
                    tap.record_label(
                        labeled.predicted,
                        labeled.oracle,
                        window.len() + 1,
                        agreement,
                    );
                    window.push_back(labeled);
                    new_labels += 1;
                }
                Err(_) => tap.record_skip(),
            }
        }
        if drained > 0 && cfg.label_via == LabelVia::Tiered {
            let ts = misam_oracle::tiered_global().stats();
            tap.record_surrogate(ts.surrogate_pairs, ts.fallback_pairs);
        }

        if last_eval.elapsed() >= cfg.cadence
            && window.len() >= cfg.min_window.max(1)
            && new_labels >= cfg.min_new_labels
        {
            let agreement = if ring.is_empty() { 1.0 } else { hits as f64 / ring.len() as f64 };
            let drift = 1.0 - agreement;
            let base = model.snapshot();
            window.make_contiguous();
            let (samples, _) = window.as_slices();
            if drift > cfg.drift_threshold {
                tap.record_retrain(true);
                let bundle = refit_bundle(samples, cfg.objective, cfg.seed, &base.bundle);
                let generation = model.publish(bundle);
                tap.record_publish(generation);
            } else {
                tap.record_retrain(false);
                let x: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
                let y: Vec<usize> = samples.iter().map(|s| s.oracle.index()).collect();
                let (selector, removed) = base.bundle.selector.refreshed_with_validation(&x, &y);
                if removed > 0 {
                    let mut bundle = base.bundle.clone();
                    bundle.selector = selector;
                    let generation = model.publish(bundle);
                    tap.record_publish(generation);
                }
            }
            new_labels = 0;
            last_eval = Instant::now();
        }

        if drained == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_features::{PairFeatures, TileConfig};
    use misam_serve::GenSpec;

    fn spec(kind: &str, seed: u64) -> GenSpec {
        GenSpec { kind: kind.into(), rows: 96, cols: 96, density: 0.05, seed, dense_cols: 32 }
    }

    fn seed_bundle() -> ModelBundle {
        let dataset = Dataset::generate(40, 11);
        let sel = train_selector(&dataset, Objective::Latency, 11);
        let lat = train_latency_predictor(&dataset, 11);
        ModelBundle::new(
            sel.selector,
            lat.predictor,
            0.08,
            misam_recon::cost::ReconfigCost::default(),
            TileConfig::default(),
        )
    }

    /// Features exactly as the server computes them for a PredictGen
    /// request: dense-B pair features under the bundle's tile config.
    fn served_features(spec: &GenSpec, tile: &TileConfig) -> Vec<f64> {
        let a = spec.build().expect("spec builds");
        PairFeatures::extract_dense_b(&a, a.cols(), spec.dense_cols, tile).to_vector()
    }

    #[test]
    fn label_sample_requires_provenance() {
        let bare =
            TapSample { features: vec![0.0; 4], predicted: DesignId::from_index(0), spec: None };
        assert!(label_sample(&bare, Objective::Latency).is_err());
    }

    #[test]
    fn labeling_is_deterministic_through_the_memoized_oracle() {
        let s = spec("uniform", 42);
        let tile = TileConfig::default();
        let sample = TapSample {
            features: served_features(&s, &tile),
            predicted: DesignId::from_index(1),
            spec: Some(s),
        };
        let a = label_sample(&sample, Objective::Latency).expect("labels");
        let b = label_sample(&sample, Objective::Latency).expect("labels again");
        assert_eq!(a.oracle, b.oracle);
        assert_eq!(a.times_s, b.times_s);
        assert_eq!(a.energies_j, b.energies_j);
    }

    #[test]
    fn tiered_labeling_without_a_bundle_matches_sim_labeling() {
        let s = spec("power-law", 77);
        let tile = TileConfig::default();
        let sample = TapSample {
            features: served_features(&s, &tile),
            predicted: DesignId::from_index(2),
            spec: Some(s),
        };
        // No surrogate bundle is installed in this process, so the
        // tiered tier must degrade to sim-only and produce identical
        // labels (the issue's "degrades to sim-only" guarantee).
        let sim = label_sample_via(&sample, Objective::Latency, LabelVia::Sim).expect("sim");
        let tiered =
            label_sample_via(&sample, Objective::Latency, LabelVia::Tiered).expect("tiered");
        assert_eq!(sim.oracle, tiered.oracle);
        assert_eq!(sim.times_s, tiered.times_s);
        assert_eq!(sim.energies_j, tiered.energies_j);
    }

    #[test]
    fn refit_is_deterministic_given_window_and_seed() {
        let tile = TileConfig::default();
        let base = seed_bundle();
        let window: Vec<LabeledSample> = (0..24)
            .map(|i| {
                let s = spec(if i % 2 == 0 { "uniform" } else { "banded" }, 100 + i);
                let sample = TapSample {
                    features: served_features(&s, &tile),
                    predicted: DesignId::from_index(0),
                    spec: Some(s),
                };
                label_sample(&sample, Objective::Latency).expect("labels")
            })
            .collect();
        let x = refit_bundle(&window, Objective::Latency, 5, &base);
        let y = refit_bundle(&window, Objective::Latency, 5, &base);
        assert_eq!(x.to_json().expect("json"), y.to_json().expect("json"));
        assert_eq!(x.threshold, base.threshold);
        assert_eq!(x.tile_config(), base.tile_config());
    }

    /// The tentpole byte-identity guarantee: a learner-published bundle
    /// equals an offline refit on the same labeled window, byte for
    /// byte. Drives the loop directly through a SharedModel + LearnTap
    /// (no sockets) with a negative drift threshold so the first
    /// evaluation is a full refit.
    #[test]
    fn learner_publish_matches_offline_refit_byte_for_byte() {
        const N: usize = 12;
        let base = seed_bundle();
        let tile = base.tile_config();
        let model = Arc::new(SharedModel::new(base.clone()));
        let tap = Arc::new(LearnTap::new(1, 4096));

        let mut expected_window = Vec::with_capacity(N);
        for i in 0..N {
            let s = spec(if i % 3 == 0 { "power-law" } else { "uniform" }, 500 + i as u64);
            let features = served_features(&s, &tile);
            let predicted = DesignId::from_index(i % 4);
            expected_window.push(
                label_sample(
                    &TapSample { features: features.clone(), predicted, spec: Some(s.clone()) },
                    Objective::Latency,
                )
                .expect("offline label"),
            );
            tap.offer(&features, predicted, Some(&s));
        }

        let cfg = LearnConfig {
            window: N,
            min_window: N,
            cadence: Duration::from_millis(1),
            drift_threshold: -1.0, // any drift (even 0) forces a full refit
            min_new_labels: 1,
            seed: 21,
            ..LearnConfig::default()
        };
        let learner = Learner::spawn(Arc::clone(&model), Arc::clone(&tap), cfg);
        let deadline = Instant::now() + Duration::from_secs(60);
        while tap.publishes() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        learner.stop();
        assert!(tap.publishes() >= 1, "learner never published");

        let offline = refit_bundle(&expected_window, Objective::Latency, 21, &base);
        let published = model.snapshot();
        assert!(published.generation() > 1, "generation did not advance");
        assert_eq!(
            published.bundle.to_json().expect("published json"),
            offline.to_json().expect("offline json"),
            "published bundle differs from offline refit on the same window"
        );
    }

    #[test]
    fn touchup_path_skips_publish_when_nothing_prunes() {
        let base = seed_bundle();
        let model = Arc::new(SharedModel::new(base.clone()));
        let tap = Arc::new(LearnTap::new(1, 4096));
        let tile = base.tile_config();

        // Label traffic the serving selector already agrees with: zero
        // drift keeps the loop on the touch-up path.
        let prepared = model.snapshot();
        for i in 0..8u64 {
            let s = spec("uniform", 900 + i);
            let features = served_features(&s, &tile);
            let labeled = label_sample(
                &TapSample {
                    features: features.clone(),
                    predicted: DesignId::from_index(0),
                    spec: Some(s.clone()),
                },
                Objective::Latency,
            )
            .expect("label");
            tap.offer(&features, labeled.oracle, Some(&s));
        }
        drop(prepared);

        let cfg = LearnConfig {
            window: 8,
            min_window: 8,
            cadence: Duration::from_millis(1),
            drift_threshold: 0.5,
            min_new_labels: 1,
            ..LearnConfig::default()
        };
        let learner = Learner::spawn(Arc::clone(&model), Arc::clone(&tap), cfg);
        let deadline = Instant::now() + Duration::from_secs(60);
        while tap.labeled() < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Give the cadence one evaluation after labeling completes.
        std::thread::sleep(Duration::from_millis(50));
        learner.stop();

        let stats = tap.stats_reply(model.generation());
        assert_eq!(stats.labeled, 8);
        assert!(stats.retrains_full == 0, "zero drift must not trigger a full refit");
        assert!(stats.retrains_touchup >= 1, "cadence never evaluated");
        // Agreement is perfect, so drift stayed under threshold.
        assert!((stats.agreement - 1.0).abs() < 1e-9);
    }
}
