//! End-to-end online-learning test: a real server with the tap
//! installed, a learner thread on its shared model, and PredictGen
//! traffic over the wire. Asserts the loop labels, retrains, publishes
//! a new generation, and reports all of it through `Stats`.

use misam::dataset::{Dataset, Objective};
use misam::persist::ModelBundle;
use misam::training::{train_latency_predictor, train_selector};
use misam_features::TileConfig;
use misam_learn::{LearnConfig, Learner};
use misam_recon::cost::ReconfigCost;
use misam_serve::{Client, GenSpec, Response, ServeConfig, Server};
use std::time::{Duration, Instant};

fn bundle() -> ModelBundle {
    let dataset = Dataset::generate(40, 3);
    let sel = train_selector(&dataset, Objective::Latency, 3);
    let lat = train_latency_predictor(&dataset, 3);
    ModelBundle::new(
        sel.selector,
        lat.predictor,
        0.08,
        ReconfigCost::default(),
        TileConfig::default(),
    )
}

fn spec(kind: &str, seed: u64) -> GenSpec {
    GenSpec { kind: kind.into(), rows: 96, cols: 96, density: 0.05, seed, dense_cols: 32 }
}

#[test]
fn served_traffic_feeds_retrain_and_hot_publish() {
    let cfg =
        ServeConfig { learn_sample_every: 1, learn_queue_cap: 4096, ..ServeConfig::default() };
    let server = Server::start(bundle(), cfg).expect("server starts");
    let addr = server.addr();
    let tap = server.learn_tap().expect("tap installed when learn_sample_every > 0");
    let model = server.shared_model();
    let generation_before = model.generation();

    let learner = Learner::spawn(
        model.clone(),
        tap.clone(),
        LearnConfig {
            window: 32,
            min_window: 8,
            cadence: Duration::from_millis(20),
            drift_threshold: -1.0, // force full refits so a publish is guaranteed
            min_new_labels: 4,
            seed: 13,
            ..LearnConfig::default()
        },
    );

    let mut client = Client::connect(addr).expect("client connects");
    for i in 0..16u64 {
        let kind = if i % 2 == 0 { "uniform" } else { "banded" };
        match client.predict_gen(spec(kind, 700 + i)).expect("predict_gen") {
            Response::Predict(_) => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut learn = loop {
        match client.stats().expect("stats") {
            Response::Stats(s) => {
                if s.learn.publishes >= 1 || Instant::now() >= deadline {
                    break s.learn;
                }
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    // One more stats read so the reply reflects the published generation.
    if let Response::Stats(s) = client.stats().expect("stats") {
        learn = s.learn;
    }
    drop(client);
    learner.stop();
    let stats = server.shutdown();

    assert!(learn.enabled, "tap should report enabled");
    assert_eq!(learn.sample_every, 1);
    assert!(learn.sampled >= 16, "all PredictGen traffic should be sampled");
    assert!(learn.labeled >= 8, "learner should have labeled the window");
    assert!(learn.publishes >= 1, "no retrain was published");
    assert!(learn.retrains_full >= 1, "forced-drift config must full-refit");
    assert!(
        learn.last_publish_generation > generation_before,
        "published generation must advance past the boot bundle"
    );
    assert!(
        learn.model_generation >= learn.last_publish_generation,
        "serving generation should reflect the publish"
    );
    assert_eq!(learn.confusion.len(), 16);
    assert_eq!(stats.errors, 0, "learning must not introduce serve errors");
}
