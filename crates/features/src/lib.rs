//! Matrix feature extraction for Misam's ML-based dataflow predictor
//! (paper §3.1).
//!
//! The decision tree is only as good as the features describing the
//! operands, so this crate computes the paper's full candidate set: the
//! sparsity of A and B, the mean and variance of nonzeros per row and
//! column of both operands, tile density and tile counts under 1-D and
//! architecture-aware 2-D tiling of B, and the load-imbalance ratio
//! (longest row or column over the average length). Everything is derived
//! from CSR/CSC pointer offsets alone — no value inspection — exactly as
//! the paper describes, which keeps preprocessing around 2% of end-to-end
//! time (§5.5).
//!
//! # Example
//!
//! ```
//! use misam_features::{PairFeatures, TileConfig};
//! use misam_sparse::gen;
//!
//! let a = gen::power_law(256, 256, 6.0, 1.5, 1);
//! let b = gen::pruned_dnn(256, 512, 0.2, 2);
//! let f = PairFeatures::extract(&a, &b, &TileConfig::default());
//! assert!(f.a.load_imbalance_row >= 1.0);
//! assert_eq!(f.to_vector().len(), misam_features::FEATURE_NAMES.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use misam_sparse::{CsrMatrix, CsrRef, MatrixProfile, Structure};

/// Names of the entries of [`PairFeatures::to_vector`], in order. These
/// match the labels of the paper's Figure 4 where applicable.
pub const FEATURE_NAMES: &[&str] = &[
    "A_sparsity",
    "B_sparsity",
    "A_rows",
    "A_cols",
    "row_B",
    "B_cols",
    "A_nonzeroes",
    "B_nonzeroes",
    "A_avg_nnz_row",
    "A_var_nnz_row",
    "A_avg_nnz_col",
    "A_var_nnz_col",
    "B_avg_nnz_row",
    "B_var_nnz_row",
    "B_avg_nnz_col",
    "B_var_nnz_col",
    "A_load_imbalance_row",
    "A_load_imbalance_col",
    "B_load_imbalance_row",
    "B_load_imbalance_col",
    "Tile_1D_Density",
    "Tile_2D_Density",
    "Tile_1D_Count",
    "Tile_2D_Count",
];

/// Index of a named feature in the extracted vector.
///
/// # Panics
///
/// Panics if `name` is not in [`FEATURE_NAMES`].
pub fn feature_index(name: &str) -> usize {
    FEATURE_NAMES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown feature name '{name}'"))
}

/// Tiling geometry the 1-D / 2-D tile-density features are computed
/// under. Defaults mirror Design 1's buffer provisioning: B row tiles
/// bounded by the 4096-entry BRAM depth and column tiles bounded by the
/// PEG count (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Rows of B per 1-D tile.
    pub tile_rows: usize,
    /// Columns of B per tile in the 2-D scheme.
    pub tile_cols: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        // 4096 BRAM entries / 16 FP32 per word = 256 rows per tile;
        // 16 PEGs x 4 PEs = 64 column lanes.
        TileConfig { tile_rows: 256, tile_cols: 64 }
    }
}

/// Per-matrix structural statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// `1 - nnz / (rows * cols)`.
    pub sparsity: f64,
    /// Mean nonzeros per row.
    pub avg_nnz_row: f64,
    /// Population variance of nonzeros per row.
    pub var_nnz_row: f64,
    /// Mean nonzeros per column.
    pub avg_nnz_col: f64,
    /// Population variance of nonzeros per column.
    pub var_nnz_col: f64,
    /// Longest row over average row length (≥ 1 when any nonzero exists).
    pub load_imbalance_row: f64,
    /// Longest column over average column length.
    pub load_imbalance_col: f64,
}

impl MatrixStats {
    /// Computes the statistics of one matrix from its CSR structure
    /// (one structural pass, via a throwaway [`MatrixProfile`]).
    pub fn extract(m: &CsrMatrix) -> Self {
        Self::extract_ref(m.as_ref())
    }

    /// View-based form of [`MatrixStats::extract`]: the same structural
    /// pass over any storage producing a [`CsrRef`] (owned or
    /// mmap-backed), bit-identical across producers.
    pub fn extract_ref(m: CsrRef<'_>) -> Self {
        Self::from_profile(&MatrixProfile::build_ref(m))
    }

    /// Reads the statistics off a precomputed profile — no CSR
    /// traversal, and bit-identical to [`MatrixStats::extract`] on the
    /// profiled matrix. This is how the oracle layer shares one
    /// structural pass between feature extraction and simulation.
    pub fn from_profile(p: &MatrixProfile) -> Self {
        let rows = p.rows();
        let cols = p.cols();
        let nnz = p.nnz();
        let total = rows as f64 * cols as f64;
        let sparsity = if total > 0.0 { 1.0 - nnz as f64 / total } else { 1.0 };
        let rs = p.row_summary();
        let cs = p.col_summary();
        MatrixStats {
            rows,
            cols,
            nnz,
            sparsity,
            avg_nnz_row: rs.mean,
            var_nnz_row: rs.var,
            avg_nnz_col: cs.mean,
            var_nnz_col: cs.var,
            load_imbalance_row: rs.imbalance(),
            load_imbalance_col: cs.imbalance(),
        }
    }

    /// Matrix density (`1 - sparsity`).
    pub fn density(&self) -> f64 {
        1.0 - self.sparsity
    }

    /// Statistics of a fully dense `rows x cols` matrix, synthesized
    /// without materializing it (dense operands are shape-only in the
    /// execution model).
    pub fn dense(rows: usize, cols: usize) -> Self {
        MatrixStats {
            rows,
            cols,
            nnz: rows * cols,
            sparsity: 0.0,
            avg_nnz_row: cols as f64,
            var_nnz_row: 0.0,
            avg_nnz_col: rows as f64,
            var_nnz_col: 0.0,
            load_imbalance_row: 1.0,
            load_imbalance_col: 1.0,
        }
    }
}

/// Tile-occupancy statistics of matrix B under a [`TileConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TileStats {
    /// Mean density of *occupied* 1-D (row-strip) tiles.
    pub density_1d: f64,
    /// Mean density of occupied 2-D tiles.
    pub density_2d: f64,
    /// Total number of 1-D tiles the matrix partitions into.
    pub count_1d: usize,
    /// Total number of 2-D tiles the matrix partitions into.
    pub count_2d: usize,
}

impl TileStats {
    /// Computes tile occupancy of `m` under `cfg`.
    ///
    /// Density is averaged over occupied tiles only, so clustered
    /// structure reads as high tile density even when overall density is
    /// low — the property that makes `Tile_1D_Density` the most important
    /// feature in the paper's Figure 4.
    pub fn extract(m: &CsrMatrix, cfg: &TileConfig) -> Self {
        Self::extract_ref(m.as_ref(), cfg)
    }

    /// View-based form of [`TileStats::extract`], bit-identical across
    /// storage producers.
    pub fn extract_ref(m: CsrRef<'_>, cfg: &TileConfig) -> Self {
        let tr = cfg.tile_rows.max(1);
        let tc = cfg.tile_cols.max(1);
        let tiles_down = m.rows().div_ceil(tr);
        let tiles_across = m.cols().div_ceil(tc);
        if m.rows() == 0 || m.cols() == 0 {
            return TileStats {
                density_1d: 0.0,
                density_2d: 0.0,
                count_1d: tiles_down,
                count_2d: tiles_down * tiles_across,
            };
        }

        let mut nnz_1d = vec![0usize; tiles_down];
        let mut nnz_2d = vec![0usize; tiles_down * tiles_across];
        for (r, c, _) in m.iter() {
            let ti = r / tr;
            nnz_1d[ti] += 1;
            nnz_2d[ti * tiles_across + c / tc] += 1;
        }
        Self::aggregate(m.rows(), m.cols(), tr, tc, &nnz_1d, &nnz_2d)
    }

    /// Computes tile occupancy from a [`Structure`] without
    /// materializing the matrix, bit-identical to
    /// [`TileStats::extract`] on the materialized CSR. Run structures
    /// tally whole column-tile segments at a time
    /// (O(nnz / tile_cols + rows)); mesh structures walk their ≤ 7
    /// stencil columns per row.
    pub fn from_structure(s: &Structure, cfg: &TileConfig) -> Self {
        let tr = cfg.tile_rows.max(1);
        let tc = cfg.tile_cols.max(1);
        let rows = s.rows();
        let cols = s.cols();
        let tiles_down = rows.div_ceil(tr);
        let tiles_across = cols.div_ceil(tc);
        if rows == 0 || cols == 0 {
            return TileStats {
                density_1d: 0.0,
                density_2d: 0.0,
                count_1d: tiles_down,
                count_2d: tiles_down * tiles_across,
            };
        }

        let mut nnz_1d = vec![0usize; tiles_down];
        let mut nnz_2d = vec![0usize; tiles_down * tiles_across];
        match s {
            Structure::Runs(rr) => {
                for r in 0..rows {
                    let ti = r / tr;
                    nnz_1d[ti] += rr.lens()[r] as usize;
                    for (lo, hi) in rr.row_intervals(r) {
                        let mut c = lo;
                        while c < hi {
                            let tj = c / tc;
                            let seg_end = hi.min((tj + 1) * tc);
                            nnz_2d[ti * tiles_across + tj] += seg_end - c;
                            c = seg_end;
                        }
                    }
                }
            }
            Structure::Mesh2d { .. } | Structure::Mesh3d { .. } => {
                let mut buf = [0u32; 7];
                for r in 0..rows {
                    let ti = r / tr;
                    let n = s.mesh_row_cols(r, &mut buf);
                    nnz_1d[ti] += n;
                    for &c in &buf[..n] {
                        nnz_2d[ti * tiles_across + c as usize / tc] += 1;
                    }
                }
            }
        }
        Self::aggregate(rows, cols, tr, tc, &nnz_1d, &nnz_2d)
    }

    /// Shared occupied-tile averaging over exact per-tile nonzero
    /// counts; both entry points end here, so their float sums run in
    /// the same tile order.
    fn aggregate(
        rows: usize,
        cols: usize,
        tr: usize,
        tc: usize,
        nnz_1d: &[usize],
        nnz_2d: &[usize],
    ) -> Self {
        let tiles_down = nnz_1d.len();
        let tiles_across = nnz_2d.len().checked_div(tiles_down).unwrap_or(0);
        let area_1d = |ti: usize| {
            let h = (rows - ti * tr).min(tr);
            (h * cols) as f64
        };
        let area_2d = |ti: usize, tj: usize| {
            let h = (rows - ti * tr).min(tr);
            let w = (cols - tj * tc).min(tc);
            (h * w) as f64
        };

        let mut d1 = 0.0;
        let mut n1 = 0usize;
        for (ti, &nz) in nnz_1d.iter().enumerate() {
            if nz > 0 {
                d1 += nz as f64 / area_1d(ti);
                n1 += 1;
            }
        }
        let mut d2 = 0.0;
        let mut n2 = 0usize;
        for ti in 0..tiles_down {
            for tj in 0..tiles_across {
                let nz = nnz_2d[ti * tiles_across + tj];
                if nz > 0 {
                    d2 += nz as f64 / area_2d(ti, tj);
                    n2 += 1;
                }
            }
        }
        TileStats {
            density_1d: if n1 > 0 { d1 / n1 as f64 } else { 0.0 },
            density_2d: if n2 > 0 { d2 / n2 as f64 } else { 0.0 },
            count_1d: tiles_down,
            count_2d: tiles_down * tiles_across,
        }
    }
}

/// The full feature record for an `(A, B)` operand pair — the input to
/// Misam's design classifier and latency predictor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairFeatures {
    /// Statistics of the left operand A.
    pub a: MatrixStats,
    /// Statistics of the right operand B.
    pub b: MatrixStats,
    /// Tile occupancy of B (the scheduled, buffered operand).
    pub tiles_b: TileStats,
}

impl PairFeatures {
    /// Extracts features from an operand pair.
    pub fn extract(a: &CsrMatrix, b: &CsrMatrix, cfg: &TileConfig) -> Self {
        Self::extract_ref(a.as_ref(), b.as_ref(), cfg)
    }

    /// View-based form of [`PairFeatures::extract`], bit-identical
    /// across storage producers — how slab-backed operands reach the
    /// classifier without materializing.
    pub fn extract_ref(a: CsrRef<'_>, b: CsrRef<'_>, cfg: &TileConfig) -> Self {
        Self::from_profiles_ref(&MatrixProfile::build_ref(a), &MatrixProfile::build_ref(b), b, cfg)
    }

    /// Extracts features from precomputed operand profiles, walking B
    /// only for its tile-occupancy statistics. Bit-identical to
    /// [`PairFeatures::extract`]; callers holding cached profiles (the
    /// oracle layer, the streaming executor) avoid re-deriving the
    /// row/column distributions per call.
    pub fn from_profiles(
        ap: &MatrixProfile,
        bp: &MatrixProfile,
        b: &CsrMatrix,
        cfg: &TileConfig,
    ) -> Self {
        Self::from_profiles_ref(ap, bp, b.as_ref(), cfg)
    }

    /// View-based form of [`PairFeatures::from_profiles`].
    pub fn from_profiles_ref(
        ap: &MatrixProfile,
        bp: &MatrixProfile,
        b: CsrRef<'_>,
        cfg: &TileConfig,
    ) -> Self {
        PairFeatures {
            a: MatrixStats::from_profile(ap),
            b: MatrixStats::from_profile(bp),
            tiles_b: TileStats::extract_ref(b, cfg),
        }
    }

    /// Extracts features from precomputed profiles and B's
    /// [`Structure`], never touching element arrays — the fully
    /// structural path of the streaming corpus pipeline. Bit-identical
    /// to [`PairFeatures::extract`] on the materialized pair.
    pub fn from_profiles_structural(
        ap: &MatrixProfile,
        bp: &MatrixProfile,
        b: &Structure,
        cfg: &TileConfig,
    ) -> Self {
        PairFeatures {
            a: MatrixStats::from_profile(ap),
            b: MatrixStats::from_profile(bp),
            tiles_b: TileStats::from_structure(b, cfg),
        }
    }

    /// Extracts features for a sparse A against a dense `b_rows x b_cols`
    /// right-hand side, synthesizing B's statistics from its shape.
    pub fn extract_dense_b(a: &CsrMatrix, b_rows: usize, b_cols: usize, cfg: &TileConfig) -> Self {
        Self::from_profile_dense_b(&MatrixProfile::build(a), b_rows, b_cols, cfg)
    }

    /// [`PairFeatures::extract_dense_b`] from a precomputed profile of A.
    pub fn from_profile_dense_b(
        ap: &MatrixProfile,
        b_rows: usize,
        b_cols: usize,
        cfg: &TileConfig,
    ) -> Self {
        let count_1d = b_rows.div_ceil(cfg.tile_rows.max(1));
        let count_2d = count_1d * b_cols.div_ceil(cfg.tile_cols.max(1));
        let occupied = b_rows > 0 && b_cols > 0;
        PairFeatures {
            a: MatrixStats::from_profile(ap),
            b: MatrixStats::dense(b_rows, b_cols),
            tiles_b: TileStats {
                density_1d: if occupied { 1.0 } else { 0.0 },
                density_2d: if occupied { 1.0 } else { 0.0 },
                count_1d,
                count_2d,
            },
        }
    }

    /// Flattens the record into the vector layout described by
    /// [`FEATURE_NAMES`].
    pub fn to_vector(&self) -> Vec<f64> {
        vec![
            self.a.sparsity,
            self.b.sparsity,
            self.a.rows as f64,
            self.a.cols as f64,
            self.b.rows as f64,
            self.b.cols as f64,
            self.a.nnz as f64,
            self.b.nnz as f64,
            self.a.avg_nnz_row,
            self.a.var_nnz_row,
            self.a.avg_nnz_col,
            self.a.var_nnz_col,
            self.b.avg_nnz_row,
            self.b.var_nnz_row,
            self.b.avg_nnz_col,
            self.b.var_nnz_col,
            self.a.load_imbalance_row,
            self.a.load_imbalance_col,
            self.b.load_imbalance_row,
            self.b.load_imbalance_col,
            self.tiles_b.density_1d,
            self.tiles_b.density_2d,
            self.tiles_b.count_1d as f64,
            self.tiles_b.count_2d as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sparse::gen;

    #[test]
    fn feature_names_match_vector_length() {
        let a = gen::uniform_random(32, 32, 0.1, 1);
        let f = PairFeatures::extract(&a, &a, &TileConfig::default());
        assert_eq!(f.to_vector().len(), FEATURE_NAMES.len());
    }

    #[test]
    fn feature_index_finds_paper_top_features() {
        assert_eq!(FEATURE_NAMES[feature_index("Tile_1D_Density")], "Tile_1D_Density");
        assert_eq!(FEATURE_NAMES[feature_index("row_B")], "row_B");
        assert_eq!(FEATURE_NAMES[feature_index("A_load_imbalance_row")], "A_load_imbalance_row");
        assert_eq!(FEATURE_NAMES[feature_index("A_rows")], "A_rows");
    }

    #[test]
    #[should_panic(expected = "unknown feature name")]
    fn feature_index_panics_on_unknown() {
        feature_index("bogus");
    }

    #[test]
    fn stats_of_known_matrix() {
        // [1 0 2]
        // [0 0 0]
        // [3 4 5]
        let m = misam_sparse::CsrMatrix::from_dense(
            3,
            3,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 5.0],
        );
        let s = MatrixStats::extract(&m);
        assert_eq!(s.nnz, 5);
        assert!((s.sparsity - (1.0 - 5.0 / 9.0)).abs() < 1e-12);
        assert!((s.avg_nnz_row - 5.0 / 3.0).abs() < 1e-12);
        // Row counts 2,0,3 -> mean 5/3, var = (4+0+9)/3 - 25/9 = 14/9
        assert!((s.var_nnz_row - 14.0 / 9.0).abs() < 1e-9);
        assert!((s.load_imbalance_row - 3.0 / (5.0 / 3.0)).abs() < 1e-9);
        // Col counts 2,1,2 -> max 2, mean 5/3.
        assert!((s.load_imbalance_col - 2.0 / (5.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_stats_are_finite() {
        let m = misam_sparse::CsrMatrix::zeros(4, 4);
        let s = MatrixStats::extract(&m);
        assert_eq!(s.sparsity, 1.0);
        assert_eq!(s.load_imbalance_row, 1.0);
        assert_eq!(s.var_nnz_col, 0.0);
        let zero = misam_sparse::CsrMatrix::zeros(0, 0);
        let s0 = MatrixStats::extract(&zero);
        assert!(s0.sparsity.is_finite());
    }

    #[test]
    fn dense_matrix_tile_density_is_one() {
        let m = gen::dense(64, 64, 3);
        let t = TileStats::extract(&m, &TileConfig { tile_rows: 16, tile_cols: 16 });
        assert!((t.density_1d - 1.0).abs() < 1e-12);
        assert!((t.density_2d - 1.0).abs() < 1e-12);
        assert_eq!(t.count_1d, 4);
        assert_eq!(t.count_2d, 16);
    }

    #[test]
    fn clustered_matrix_has_higher_tile_density_than_overall() {
        // All nonzeros in the top-left 16x16 corner of a 256x256 matrix.
        let mut coo = misam_sparse::CooMatrix::new(256, 256);
        for r in 0..16 {
            for c in 0..16 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let m = coo.to_csr();
        let overall = m.density();
        let t = TileStats::extract(&m, &TileConfig { tile_rows: 16, tile_cols: 16 });
        assert!(t.density_2d > 10.0 * overall, "2D tile density should expose clustering");
        assert!((t.density_2d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tile_counts_use_ceiling_division() {
        let m = gen::uniform_random(100, 70, 0.2, 5);
        let t = TileStats::extract(&m, &TileConfig { tile_rows: 30, tile_cols: 32 });
        assert_eq!(t.count_1d, 4);
        assert_eq!(t.count_2d, 4 * 3);
    }

    #[test]
    fn ragged_edge_tiles_use_true_area() {
        // Single full column strip in a matrix whose last tile is ragged.
        let mut coo = misam_sparse::CooMatrix::new(10, 10);
        for r in 0..10 {
            coo.push(r, 0, 1.0).unwrap();
        }
        let m = coo.to_csr();
        let t = TileStats::extract(&m, &TileConfig { tile_rows: 8, tile_cols: 8 });
        // Tile (0,0): 8 nnz / 64 area; tile (1,0): 2 nnz / 16 area.
        let expect = (8.0 / 64.0 + 2.0 / 16.0) / 2.0;
        assert!((t.density_2d - expect).abs() < 1e-12);
    }

    #[test]
    fn imbalanced_generator_yields_high_imbalance_feature() {
        let a = gen::imbalanced_rows(200, 1000, 0.05, 300, 4, 7);
        let s = MatrixStats::extract(&a);
        assert!(s.load_imbalance_row > 5.0);
        let u = gen::regular_degree(200, 1000, 16, 8);
        let su = MatrixStats::extract(&u);
        assert!((su.load_imbalance_row - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_backed_features_are_bit_identical() {
        let a = gen::power_law(300, 200, 5.0, 1.4, 17);
        let b = gen::imbalanced_rows(200, 400, 0.05, 150, 2, 18);
        let cfg = TileConfig::default();
        let direct = PairFeatures::extract(&a, &b, &cfg);
        let (ap, bp) = (MatrixProfile::build(&a), MatrixProfile::build(&b));
        let via_profile = PairFeatures::from_profiles(&ap, &bp, &b, &cfg);
        assert_eq!(direct, via_profile);
        assert_eq!(direct.to_vector(), via_profile.to_vector());

        let dense_direct = PairFeatures::extract_dense_b(&a, 200, 64, &cfg);
        let dense_profiled = PairFeatures::from_profile_dense_b(&ap, 200, 64, &cfg);
        assert_eq!(dense_direct, dense_profiled);
    }

    #[test]
    fn structural_tile_stats_match_element_walk() {
        let lazies = [
            gen::uniform_random_lazy(300, 280, 0.05, 70),
            gen::power_law_lazy(250, 250, 6.0, 1.4, 71),
            gen::banded_lazy(200, 200, 9, 0.7, 72),
            gen::pruned_dnn_lazy(128, 300, 0.3, 73),
            gen::imbalanced_rows_lazy(150, 400, 0.05, 120, 2, 74),
            gen::mesh2d_lazy(19, 13),
            gen::mesh3d_lazy(6, 5, 4),
        ];
        let cfgs = [
            TileConfig::default(),
            TileConfig { tile_rows: 17, tile_cols: 13 },
            TileConfig { tile_rows: 1, tile_cols: 1 },
        ];
        for lazy in &lazies {
            for cfg in &cfgs {
                let walked = TileStats::extract(lazy.materialize(), cfg);
                let structural = TileStats::from_structure(lazy.structure(), cfg);
                assert_eq!(walked, structural, "tile cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn fully_structural_pair_features_are_bit_identical() {
        let a = gen::power_law_lazy(300, 200, 5.0, 1.4, 75);
        let b = gen::imbalanced_rows_lazy(200, 400, 0.05, 150, 2, 76);
        let cfg = TileConfig::default();
        let ap = MatrixProfile::synthesize(a.structure(), &[], &[]);
        let bp = MatrixProfile::synthesize(b.structure(), &[], &[]);
        let structural = PairFeatures::from_profiles_structural(&ap, &bp, b.structure(), &cfg);
        let direct = PairFeatures::extract(a.materialize(), b.materialize(), &cfg);
        assert_eq!(structural, direct);
    }

    #[test]
    fn pair_features_use_b_for_tiles() {
        let a = gen::uniform_random(64, 64, 0.5, 1);
        let b = misam_sparse::CsrMatrix::zeros(64, 64);
        let f = PairFeatures::extract(&a, &b, &TileConfig::default());
        assert_eq!(f.tiles_b.density_1d, 0.0);
        assert!(f.a.density() > 0.3);
    }
}
