//! Feature extraction must not see the storage producer: for any
//! generated operand pair, `MatrixStats`, `TileStats`, and
//! `PairFeatures` extracted from owned `CsrMatrix` storage and from
//! the mmap-backed slab twin must be equal field for field (all fields
//! are `f64`/counts compared through `PartialEq`, so equality here is
//! bit-identity for every finite value the extractors produce).

use misam_features::{MatrixStats, PairFeatures, TileConfig, TileStats};
use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::{gen, CsrMatrix};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn slab_twin(m: &CsrMatrix) -> (std::path::PathBuf, SlabMatrix) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "misam_feat_eq_{}_{}.msab",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    slab::write_slab(&path, m).expect("write slab");
    let s = SlabMatrix::open(&path).expect("open slab");
    (path, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stats_match_across_storage_producers(
        rows in 1usize..160,
        cols in 1usize..160,
        avg in 0.5f64..10.0,
        alpha in 1.1f64..1.9,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::power_law(rows, cols, avg, alpha, seed);
        let (path, s) = slab_twin(&m);
        let cfg = TileConfig::default();
        prop_assert_eq!(MatrixStats::extract(&m), MatrixStats::extract_ref(s.as_ref()));
        prop_assert_eq!(
            TileStats::extract(&m, &cfg),
            TileStats::extract_ref(s.as_ref(), &cfg)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pair_features_match_across_storage_producers(
        rows in 1usize..120,
        inner in 1usize..120,
        cols in 1usize..120,
        density in 0.0f64..0.3,
        seed in 0u64..1_000_000,
    ) {
        let a = gen::uniform_random(rows, inner, density, seed);
        let b = gen::uniform_random(inner, cols, density, seed ^ 0x9E37_79B9);
        let (pa, sa) = slab_twin(&a);
        let (pb, sb) = slab_twin(&b);
        let cfg = TileConfig::default();
        // Every mix of producers lands on the same features: both
        // owned, both mapped, and one of each.
        let owned = PairFeatures::extract(&a, &b, &cfg);
        prop_assert_eq!(owned, PairFeatures::extract_ref(sa.as_ref(), sb.as_ref(), &cfg));
        prop_assert_eq!(owned, PairFeatures::extract_ref(a.as_ref(), sb.as_ref(), &cfg));
        prop_assert_eq!(owned, PairFeatures::extract_ref(sa.as_ref(), b.as_ref(), &cfg));
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }
}
