//! Synthetic stand-ins for the SuiteSparse matrices of the paper's
//! Table 3.
//!
//! The reproduction has no access to the SuiteSparse collection, so each
//! matrix is regenerated from its published metadata (rows, nonzeros,
//! density) by a structure-aware generator matching its application class
//! (see `DESIGN.md` §1). The decision-tree features the paper uses are all
//! structural, so regime-faithful synthesis preserves the selection
//! behaviour the experiments measure.

use crate::gen;
use crate::CsrMatrix;

/// Structural family of a catalog matrix, deciding which generator
/// synthesizes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixClass {
    /// Scale-free graph adjacency (social, p2p, co-authorship, wiki).
    Graph,
    /// Finite-element / CFD / structural stencil.
    Fem,
    /// Circuit simulation: near-diagonal plus dense rails.
    Circuit,
    /// Near-constant row degree (DNA electrophoresis `cage` family).
    Cage,
    /// Optimization / LP basis: dense blocks embedded in sparsity.
    Optimization,
}

/// Metadata record for one Table 3 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixRecord {
    /// Full SuiteSparse name, e.g. `"p2p-Gnutella24"`.
    pub name: &'static str,
    /// The short ID the paper's figures use, e.g. `"p2p"`.
    pub id: &'static str,
    /// Published density (nnz / rows²).
    pub density: f64,
    /// Published row (and column) count; all Table 3 matrices are square.
    pub rows: usize,
    /// Published nonzero count.
    pub nnz: usize,
    /// Structural family used for synthesis.
    pub class: MatrixClass,
}

impl MatrixRecord {
    /// Average nonzeros per row from the published metadata.
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz as f64 / self.rows.max(1) as f64
    }

    /// Synthesizes the matrix at full published scale.
    pub fn generate(&self, seed: u64) -> CsrMatrix {
        self.generate_scaled(1.0, seed)
    }

    /// Synthesizes the matrix with its row count scaled by `scale`
    /// (clamped to at least 64 rows), preserving the average row degree.
    /// Experiments use `scale < 1` to keep dataset builds fast; the
    /// structural features the selector reads are scale-stable.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> CsrMatrix {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((self.rows as f64 * scale).round() as usize).max(64);
        let avg = self.avg_row_nnz().min(n as f64);
        let seed = seed ^ fxhash(self.name);
        match self.class {
            MatrixClass::Graph => gen::power_law(n, n, avg, 1.45, seed),
            MatrixClass::Fem => {
                // Choose bandwidth so the band holds ~avg entries at 70% fill.
                let bw = ((avg / (2.0 * 0.7)).ceil() as usize).max(1);
                gen::banded(n, n, bw, 0.7, seed)
            }
            MatrixClass::Circuit => gen::circuit(n, n, avg.max(1.0) - 1.0, (n / 400).max(2), seed),
            MatrixClass::Cage => gen::regular_degree(n, n, avg.round().max(1.0) as usize, seed),
            MatrixClass::Optimization => {
                // Dense row blocks over a sparse background: half the mass
                // in heavy rows, half uniform.
                let heavy_nnz = (avg * 8.0).round() as usize;
                let light_nnz = (avg * 0.5).round().max(1.0) as usize;
                gen::imbalanced_rows(n, n, 0.07, heavy_nnz.min(n), light_nnz, seed)
            }
        }
    }
}

/// Stable tiny string hash to decorrelate per-matrix seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The sixteen highly sparse matrices of Table 3, in paper order.
pub fn catalog() -> &'static [MatrixRecord] {
    use MatrixClass::*;
    const CATALOG: &[MatrixRecord] = &[
        MatrixRecord {
            name: "p2p-Gnutella24",
            id: "p2p",
            density: 9.3e-5,
            rows: 26518,
            nnz: 65369,
            class: Graph,
        },
        MatrixRecord {
            name: "sx-mathoverflow",
            id: "sx",
            density: 3.9e-4,
            rows: 24818,
            nnz: 239978,
            class: Graph,
        },
        MatrixRecord {
            name: "ca-CondMat",
            id: "cond",
            density: 3.5e-4,
            rows: 23133,
            nnz: 186936,
            class: Graph,
        },
        MatrixRecord {
            name: "Oregon-2",
            id: "ore",
            density: 3.5e-4,
            rows: 11806,
            nnz: 65460,
            class: Graph,
        },
        MatrixRecord {
            name: "email-Enron",
            id: "em",
            density: 2.7e-4,
            rows: 36692,
            nnz: 367662,
            class: Graph,
        },
        MatrixRecord {
            name: "opt1",
            id: "opt",
            density: 8.1e-3,
            rows: 15449,
            nnz: 1930655,
            class: Optimization,
        },
        MatrixRecord {
            name: "scircuit",
            id: "sc",
            density: 3.3e-5,
            rows: 170998,
            nnz: 958936,
            class: Circuit,
        },
        MatrixRecord {
            name: "gupta2",
            id: "gup",
            density: 1.1e-3,
            rows: 62064,
            nnz: 4248286,
            class: Optimization,
        },
        MatrixRecord {
            name: "sme3Db",
            id: "sme",
            density: 2.5e-3,
            rows: 29067,
            nnz: 2081063,
            class: Fem,
        },
        MatrixRecord {
            name: "poisson3Da",
            id: "poi",
            density: 1.9e-3,
            rows: 13514,
            nnz: 352762,
            class: Fem,
        },
        MatrixRecord {
            name: "wiki-RfA",
            id: "wiki",
            density: 1.5e-3,
            rows: 11380,
            nnz: 188077,
            class: Graph,
        },
        MatrixRecord {
            name: "ca-AstroPh",
            id: "astro",
            density: 1.1e-3,
            rows: 18772,
            nnz: 396160,
            class: Graph,
        },
        MatrixRecord {
            name: "msc10848",
            id: "ms",
            density: 1.0e-2,
            rows: 10848,
            nnz: 1229776,
            class: Fem,
        },
        MatrixRecord {
            name: "ramage02",
            id: "ram",
            density: 1.0e-2,
            rows: 16830,
            nnz: 2866352,
            class: Fem,
        },
        MatrixRecord {
            name: "cage12",
            id: "cage",
            density: 1.2e-4,
            rows: 130228,
            nnz: 2032536,
            class: Cage,
        },
        MatrixRecord {
            name: "goodwin",
            id: "good",
            density: 6.0e-3,
            rows: 7320,
            nnz: 324772,
            class: Fem,
        },
    ];
    CATALOG
}

/// Looks a catalog matrix up by its short ID (`"p2p"`, `"cage"`, …).
pub fn by_id(id: &str) -> Option<&'static MatrixRecord> {
    catalog().iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SparsityRegime;

    #[test]
    fn catalog_has_sixteen_entries_matching_paper_metadata() {
        let cat = catalog();
        assert_eq!(cat.len(), 16);
        // Published densities agree with nnz / rows^2 to within rounding.
        for rec in cat {
            let implied = rec.nnz as f64 / (rec.rows as f64 * rec.rows as f64);
            let ratio = implied / rec.density;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: implied density {implied:.2e} vs published {:.2e}",
                rec.name,
                rec.density
            );
        }
    }

    #[test]
    fn by_id_finds_each_record() {
        for rec in catalog() {
            assert_eq!(by_id(rec.id).unwrap().name, rec.name);
        }
        assert!(by_id("nope").is_none());
    }

    #[test]
    fn scaled_generation_preserves_row_degree_and_regime() {
        for rec in catalog().iter().filter(|r| r.id != "sc" && r.id != "cage") {
            let m = rec.generate_scaled(0.02, 1);
            let avg = m.nnz() as f64 / m.rows() as f64;
            let target = rec.avg_row_nnz();
            assert!(
                avg > target * 0.4 && avg < target * 2.5,
                "{}: avg row nnz {avg:.1} vs target {target:.1}",
                rec.name
            );
            assert!(m.rows() >= 64);
            // At small scale density rises, but these matrices remain sparse.
            assert_ne!(SparsityRegime::classify(m.density()), SparsityRegime::Dense);
        }
    }

    #[test]
    fn graph_records_generate_skewed_matrices() {
        let rec = by_id("p2p").unwrap();
        let m = rec.generate_scaled(0.05, 2);
        let max_row = (0..m.rows()).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / m.rows() as f64;
        assert!(max_row as f64 > 2.0 * avg, "graph matrix should be skewed");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let rec = by_id("poi").unwrap();
        assert_eq!(rec.generate_scaled(0.02, 3), rec.generate_scaled(0.02, 3));
        assert_ne!(rec.generate_scaled(0.02, 3), rec.generate_scaled(0.02, 4));
    }
}
