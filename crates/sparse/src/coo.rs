use crate::{CscMatrix, CsrMatrix, Result, SparseError};

/// A sparse matrix in coordinate (triplet) format.
///
/// COO is the assembly format: entries may arrive in any order and
/// duplicates are permitted until [`CooMatrix::compress`] (or a conversion
/// to [`CsrMatrix`]/[`CscMatrix`]) sums them. The Misam hardware encodes
/// matrix A — and, in Design 4, matrix B — as 64-bit coalesced COO words
/// containing `(row, col, value)` (§3.2.1), so this type also models the
/// on-wire representation.
///
/// # Example
///
/// ```
/// use misam_sparse::CooMatrix;
///
/// let mut m = CooMatrix::new(2, 3);
/// m.push(0, 0, 1.0).unwrap();
/// m.push(1, 2, 2.0).unwrap();
/// m.push(1, 2, 3.0).unwrap(); // duplicate — summed on compress
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.get(1, 2), Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`, the index width of
    /// the hardware's coalesced 64-bit entry format.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions must fit the 32-bit index fields of the coalesced entry format"
        );
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Builds a COO matrix directly from triplets.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any triplet lies outside
    /// the declared bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(rows, cols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `(row, col)` is outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries, including duplicates not yet compressed.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over stored `(row, col, value)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Sorts entries row-major and sums duplicates in place.
    ///
    /// Entries that sum to exactly zero are retained (explicit zeros), as
    /// the hardware streams whatever the host scheduled; use
    /// [`CooMatrix::prune_zeros`] to drop them.
    pub fn compress(&mut self) {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Removes entries whose value is exactly zero.
    pub fn prune_zeros(&mut self) {
        self.entries.retain(|&(_, _, v)| v != 0.0);
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.clone();
        sorted.compress();
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &(r, _, _) in &sorted.entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<u32> = sorted.entries.iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f32> = sorted.entries.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("compressed COO yields valid CSR")
    }

    /// Converts to CSC, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        let mut sorted = self.clone();
        sorted.entries.sort_unstable_by_key(|&(r, c, _)| (c, r));
        // Sum duplicates in column-major order.
        let mut out: Vec<(u32, u32, f32)> = Vec::with_capacity(sorted.entries.len());
        for &(r, c, v) in &sorted.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => out.push((r, c, v)),
            }
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &(_, c, _) in &out {
            col_ptr[c as usize + 1] += 1;
        }
        for j in 0..self.cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let row_idx: Vec<u32> = out.iter().map(|&(r, _, _)| r).collect();
        let values: Vec<f32> = out.iter().map(|&(_, _, v)| v).collect();
        CscMatrix::from_raw_parts(self.rows, self.cols, col_ptr, row_idx, values)
            .expect("compressed COO yields valid CSC")
    }

    /// Packs all entries into the 64-bit coalesced wire format used by the
    /// accelerator's HBM streams: 16-bit row, 16-bit column, 32-bit value
    /// when dimensions permit, otherwise a two-word wide encoding.
    ///
    /// Returns the number of 64-bit words the stream occupies; the
    /// simulator uses this to model HBM read traffic.
    pub fn wire_words(&self) -> usize {
        let narrow = self.rows <= u16::MAX as usize + 1 && self.cols <= u16::MAX as usize + 1;
        if narrow {
            self.entries.len()
        } else {
            self.entries.len() * 2
        }
    }
}

impl FromIterator<(usize, usize, f32)> for CooMatrix {
    /// Collects triplets into a matrix sized to the maximum seen indices.
    fn from_iter<T: IntoIterator<Item = (usize, usize, f32)>>(iter: T) -> Self {
        let triplets: Vec<_> = iter.into_iter().collect();
        let rows = triplets.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = triplets.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        CooMatrix::from_triplets(rows, cols, triplets).expect("indices bounded by construction")
    }
}

impl Extend<(usize, usize, f32)> for CooMatrix {
    /// Appends triplets, panicking on out-of-bounds coordinates.
    fn extend<T: IntoIterator<Item = (usize, usize, f32)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("extend received out-of-bounds triplet");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert!(m.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn compress_sums_duplicates() {
        let mut m = CooMatrix::new(3, 3);
        m.push(1, 1, 2.0).unwrap();
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 1, 3.0).unwrap();
        m.compress();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn compress_keeps_explicit_zero_then_prune_drops_it() {
        let mut m = CooMatrix::new(1, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, -1.0).unwrap();
        m.compress();
        assert_eq!(m.nnz(), 1);
        m.prune_zeros();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn csr_roundtrip_preserves_entries() {
        let m =
            CooMatrix::from_triplets(3, 4, vec![(2, 3, 1.5), (0, 1, -2.0), (2, 0, 4.0)]).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.get(2, 3), Some(1.5));
        assert_eq!(csr.get(0, 1), Some(-2.0));
        assert_eq!(csr.get(2, 0), Some(4.0));
        assert_eq!(csr.get(1, 1), None);
    }

    #[test]
    fn csc_matches_csr_contents() {
        let m =
            CooMatrix::from_triplets(3, 3, vec![(0, 2, 1.0), (1, 0, 2.0), (2, 2, 3.0)]).unwrap();
        let csr = m.to_csr();
        let csc = m.to_csc();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(csr.get(r, c), csc.get(r, c), "mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn from_iterator_sizes_to_max_index() {
        let m: CooMatrix = vec![(0usize, 0usize, 1.0f32), (4, 2, 2.0)].into_iter().collect();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = CooMatrix::new(0, 0);
        assert_eq!(m.nnz(), 0);
        let csr = m.to_csr();
        assert_eq!(csr.rows(), 0);
    }

    #[test]
    fn wire_words_narrow_vs_wide() {
        let mut small = CooMatrix::new(100, 100);
        small.push(1, 1, 1.0).unwrap();
        assert_eq!(small.wire_words(), 1);
        let mut big = CooMatrix::new(1 << 20, 1 << 20);
        big.push(70000, 70000, 1.0).unwrap();
        assert_eq!(big.wire_words(), 2);
    }
}
