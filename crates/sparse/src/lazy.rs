//! Lazy CSR materialization — the *fill stage* of the two-stage
//! generators.
//!
//! A [`LazyMatrix`] pairs a [`Structure`] with the value-stream seed
//! that fully determines its element values. Consumers that only need
//! structure (profiling, scheduling, feature extraction) work straight
//! off [`LazyMatrix::structure`] and never touch element arrays;
//! consumers that genuinely need elements (numeric kernels, the
//! element-walk reference simulator, I/O) call
//! [`LazyMatrix::materialize`], which builds the CSR exactly once and
//! caches it.
//!
//! Process-wide counters track how many lazy matrices were created and
//! how many were ever materialized, so benchmarks can report a
//! `csr_materialization_rate` and prove that labeling-only pipelines
//! stay element-free.

use crate::structure::Structure;
use crate::CsrMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static LAZY_CREATED: AtomicU64 = AtomicU64::new(0);
static MATERIALIZED: AtomicU64 = AtomicU64::new(0);

/// Creation/materialization counters since process start (or the last
/// [`reset_materialization_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaterializationStats {
    /// Lazy matrices constructed.
    pub created: u64,
    /// Lazy matrices whose CSR was actually built.
    pub materialized: u64,
}

impl MaterializationStats {
    /// Fraction of lazy matrices that were materialized (0 when none
    /// were created).
    pub fn rate(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.materialized as f64 / self.created as f64
        }
    }
}

/// Current process-wide counters.
pub fn materialization_stats() -> MaterializationStats {
    MaterializationStats {
        created: LAZY_CREATED.load(Ordering::Relaxed),
        materialized: MATERIALIZED.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide counters (benchmark scoping).
pub fn reset_materialization_stats() {
    LAZY_CREATED.store(0, Ordering::Relaxed);
    MATERIALIZED.store(0, Ordering::Relaxed);
}

/// A matrix whose structure is known but whose elements are built on
/// demand.
///
/// The CSR a `LazyMatrix` materializes to is a pure function of
/// `(structure, value_seed)` — see [`Structure::materialize`] — so two
/// lazy matrices with equal structure and seed are interchangeable,
/// which is what lets oracle fingerprints key on the structure alone.
#[derive(Debug)]
pub struct LazyMatrix {
    structure: Structure,
    value_seed: u64,
    cache: OnceLock<Arc<CsrMatrix>>,
}

impl LazyMatrix {
    /// Wraps a structure and its fill seed; no elements are allocated.
    pub fn new(structure: Structure, value_seed: u64) -> Self {
        LAZY_CREATED.fetch_add(1, Ordering::Relaxed);
        LazyMatrix { structure, value_seed, cache: OnceLock::new() }
    }

    /// The structural description (always available, never allocates).
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Seed of the deterministic value stream used by the fill stage.
    pub fn value_seed(&self) -> u64 {
        self.value_seed
    }

    /// Number of rows, off the structure.
    pub fn rows(&self) -> usize {
        self.structure.rows()
    }

    /// Number of columns, off the structure.
    pub fn cols(&self) -> usize {
        self.structure.cols()
    }

    /// Number of nonzeros, off the structure.
    pub fn nnz(&self) -> usize {
        self.structure.nnz()
    }

    /// Whether the CSR has already been built.
    pub fn is_materialized(&self) -> bool {
        self.cache.get().is_some()
    }

    /// The materialized CSR, built exactly once and cached.
    pub fn materialize(&self) -> &CsrMatrix {
        self.cache.get_or_init(|| {
            MATERIALIZED.fetch_add(1, Ordering::Relaxed);
            Arc::new(self.structure.materialize(self.value_seed))
        })
    }

    /// The materialized CSR as a shared handle.
    pub fn materialize_arc(&self) -> Arc<CsrMatrix> {
        self.materialize();
        Arc::clone(self.cache.get().expect("just materialized"))
    }

    /// Consumes the lazy wrapper, returning the owned CSR (reusing the
    /// cached build when present).
    pub fn into_csr(self) -> CsrMatrix {
        match self.cache.into_inner() {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => {
                MATERIALIZED.fetch_add(1, Ordering::Relaxed);
                self.structure.materialize(self.value_seed)
            }
        }
    }
}

impl Clone for LazyMatrix {
    /// Clones share the already-materialized CSR (if any) but count as
    /// a new lazy instance.
    fn clone(&self) -> Self {
        LAZY_CREATED.fetch_add(1, Ordering::Relaxed);
        let cache = OnceLock::new();
        if let Some(arc) = self.cache.get() {
            let _ = cache.set(Arc::clone(arc));
        }
        LazyMatrix { structure: self.structure.clone(), value_seed: self.value_seed, cache }
    }
}

/// A lazy multiplication operand: a dense B is fully described by its
/// shape, a sparse B by its lazy matrix.
#[derive(Debug, Clone, Copy)]
pub enum LazyOperand<'a> {
    /// Dense operand of the given shape.
    Dense {
        /// Rows of B.
        rows: usize,
        /// Columns of B.
        cols: usize,
    },
    /// Sparse operand described lazily.
    Sparse(&'a LazyMatrix),
}

impl<'a> LazyOperand<'a> {
    /// Rows of the operand.
    pub fn rows(&self) -> usize {
        match self {
            LazyOperand::Dense { rows, .. } => *rows,
            LazyOperand::Sparse(m) => m.rows(),
        }
    }

    /// Columns of the operand.
    pub fn cols(&self) -> usize {
        match self {
            LazyOperand::Dense { cols, .. } => *cols,
            LazyOperand::Sparse(m) => m.cols(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LazyMatrix {
        LazyMatrix::new(Structure::runs(4, 8, vec![1, 6, 0, 3], vec![3, 4, 0, 8]), 99)
    }

    #[test]
    fn materialize_is_cached_and_counted() {
        reset_materialization_stats();
        let m = sample();
        assert!(!m.is_materialized());
        assert_eq!(materialization_stats().created, 1);
        assert_eq!(materialization_stats().materialized, 0);

        let first = m.materialize() as *const CsrMatrix;
        let second = m.materialize() as *const CsrMatrix;
        assert_eq!(first, second, "single cached build");
        assert_eq!(materialization_stats().materialized, 1);
        assert!((materialization_stats().rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn into_csr_matches_structure() {
        let m = sample();
        let nnz = m.nnz();
        let csr = m.clone().into_csr();
        assert_eq!(csr.nnz(), nnz);
        assert_eq!(csr, *m.materialize());
    }

    #[test]
    fn structure_only_consumers_never_materialize() {
        reset_materialization_stats();
        let m = sample();
        let _ = (m.rows(), m.cols(), m.nnz(), m.structure());
        assert_eq!(materialization_stats().materialized, 0);
    }
}
