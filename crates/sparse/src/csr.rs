use crate::{CooMatrix, CscMatrix, Result, SparseError};

/// A sparse matrix in Compressed Sparse Row format.
///
/// CSR is the format matrix A arrives in for every Misam design: the row
/// pointer array is exactly the structure the host uses to derive the
/// scheduling pointer lists streamed to each PEG (§3.2.1), and the feature
/// extractor reads row statistics straight from it (§3.1).
///
/// Invariants (checked at construction):
/// - `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[rows] == values.len()`;
/// - column indices within each row are strictly increasing and `< cols`;
/// - `col_idx.len() == values.len()`.
///
/// # Example
///
/// ```
/// use misam_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_raw_parts(2, 3, vec![0, 1, 3], vec![2, 0, 1],
///                                   vec![5.0, 1.0, 2.0])?;
/// assert_eq!(m.row(1).len(), 2);
/// assert_eq!(m.get(0, 2), Some(5.0));
/// # Ok::<(), misam_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from its constituent arrays, validating every
    /// invariant listed on the type.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedPointers`] or
    /// [`SparseError::MalformedIndices`] describing the first violated
    /// invariant.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr has length {} but rows + 1 = {}",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers("row_ptr[0] must be 0".into()));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedIndices(format!(
                "col_idx length {} differs from values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if *row_ptr.last().expect("non-empty by construction") != values.len() {
            return Err(SparseError::MalformedPointers(format!(
                "row_ptr ends at {} but there are {} values",
                row_ptr.last().unwrap(),
                values.len()
            )));
        }
        for r in 0..rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::MalformedPointers(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            let mut prev: Option<u32> = None;
            for &c in &col_idx[lo..hi] {
                if c as usize >= cols {
                    return Err(SparseError::MalformedIndices(format!(
                        "column {c} in row {r} exceeds cols {cols}"
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::MalformedIndices(format!(
                            "columns not strictly increasing in row {r}"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Creates an empty matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from a dense row-major slice, skipping zeros.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_dense(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length must equal rows*cols");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = data[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored: `nnz / (rows * cols)`.
    /// Returns 0 for an empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array, parallel to [`CsrMatrix::values`].
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Returns the `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> RowView<'_> {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        RowView { cols: &self.col_idx[lo..hi], values: &self.values[lo..hi] }
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Looks up a single entry. O(log nnz(row)).
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        let seg = &self.col_idx[lo..hi];
        seg.binary_search(&(col as u32)).ok().map(|i| self.values[lo + i])
    }

    /// Iterates all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            (lo..hi).map(move |i| (r, self.col_idx[i] as usize, self.values[i]))
        })
    }

    /// Converts to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        CooMatrix::from_triplets(self.rows, self.cols, self.iter())
            .expect("CSR entries are in bounds")
    }

    /// Converts to CSC (a transpose of the internal layout, not of the
    /// matrix itself).
    pub fn to_csc(&self) -> CscMatrix {
        let mut col_counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            col_counts[c as usize] += 1;
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for j in 0..self.cols {
            col_ptr[j + 1] = col_ptr[j] + col_counts[j];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        for (r, c, v) in self.iter() {
            let dst = cursor[c];
            row_idx[dst] = r as u32;
            values[dst] = v;
            cursor[c] += 1;
        }
        CscMatrix::from_raw_parts(self.rows, self.cols, col_ptr, row_idx, values)
            .expect("scatter from valid CSR yields valid CSC")
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let csc = self.to_csc();
        CsrMatrix::from_raw_parts(
            self.cols,
            self.rows,
            csc.col_ptr().to_vec(),
            csc.row_idx().to_vec(),
            csc.values().to_vec(),
        )
        .expect("CSC arrays of a valid matrix form the transposed CSR")
    }

    /// Renders the matrix into a dense row-major buffer.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.rows * self.cols];
        for (r, c, v) in self.iter() {
            out[r * self.cols + c] = v;
        }
        out
    }

    /// Extracts the sub-matrix covering rows `row_range` and all columns.
    /// Used by the streaming executor to carve A into independent tiles
    /// (§3.3).
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds `rows`.
    pub fn row_slice(&self, row_range: std::ops::Range<usize>) -> CsrMatrix {
        assert!(row_range.end <= self.rows, "row slice out of bounds");
        let lo = self.row_ptr[row_range.start];
        let hi = self.row_ptr[row_range.end];
        let row_ptr: Vec<usize> =
            self.row_ptr[row_range.start..=row_range.end].iter().map(|p| p - lo).collect();
        CsrMatrix {
            rows: row_range.len(),
            cols: self.cols,
            row_ptr,
            col_idx: self.col_idx[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Extracts the sub-matrix covering columns `col_range` and all rows,
    /// re-basing column indices to the slice. Used for column tiling of A
    /// aligned to resident B row tiles (§3.2.4).
    ///
    /// # Panics
    ///
    /// Panics if the range end exceeds `cols`.
    pub fn col_slice(&self, col_range: std::ops::Range<usize>) -> CsrMatrix {
        assert!(col_range.end <= self.cols, "column slice out of bounds");
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for i in lo..hi {
                let c = self.col_idx[i] as usize;
                if col_range.contains(&c) {
                    col_idx.push((c - col_range.start) as u32);
                    values.push(self.values[i]);
                }
            }
            row_ptr.push(values.len());
        }
        CsrMatrix { rows: self.rows, cols: col_range.len(), row_ptr, col_idx, values }
    }
}

/// Borrowed view of a single CSR row: parallel column/value slices.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    cols: &'a [u32],
    values: &'a [f32],
}

impl<'a> RowView<'a> {
    /// Assembles a row view from its parallel slices (storage producers
    /// only — the slices must come from the same row of a valid CSR).
    pub(crate) fn new(cols: &'a [u32], values: &'a [f32]) -> Self {
        debug_assert_eq!(cols.len(), values.len());
        RowView { cols, values }
    }

    /// Number of nonzeros in the row.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the row holds no nonzeros.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The column indices of the row.
    pub fn cols(&self) -> &'a [u32] {
        self.cols
    }

    /// The values of the row.
    pub fn values(&self) -> &'a [f32] {
        self.values
    }

    /// Iterates `(col, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + 'a {
        self.cols.iter().zip(self.values.iter()).map(|(&c, &v)| (c as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 0 1 0 ]
        // [ 2 0 3 ]
        CsrMatrix::from_raw_parts(2, 3, vec![0, 1, 3], vec![1, 0, 2], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn from_raw_parts_validates_pointer_length() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers(_))));
    }

    #[test]
    fn from_raw_parts_validates_monotonicity() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::MalformedPointers(_))));
    }

    #[test]
    fn from_raw_parts_validates_sorted_columns() {
        let err = CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::MalformedIndices(_))));
    }

    #[test]
    fn from_raw_parts_validates_column_bounds() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(err, Err(SparseError::MalformedIndices(_))));
    }

    #[test]
    fn get_and_row_views() {
        let m = sample();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![(0, 2.0), (2, 3.0)]);
        assert!(m.row(0).len() == 1 && !m.row(0).is_empty());
    }

    #[test]
    fn density_and_nnz() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert!((m.density() - 0.5).abs() < 1e-12);
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0];
        let m = CsrMatrix::from_dense(2, 3, &dense);
        assert_eq!(m, sample());
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn transpose_involutes() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(1, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(2.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn csc_roundtrip() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.get(1, 2), Some(3.0));
        assert_eq!(csc.to_csr(), m);
    }

    #[test]
    fn row_slice_rebases_pointers() {
        let m = sample();
        let s = m.row_slice(1..2);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.get(0, 0), Some(2.0));
    }

    #[test]
    fn col_slice_rebases_columns() {
        let m = sample();
        let s = m.col_slice(1..3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 0), Some(1.0)); // was (0,1)
        assert_eq!(s.get(1, 1), Some(3.0)); // was (1,2)
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn empty_row_slice_is_empty() {
        let m = sample();
        let s = m.row_slice(0..0);
        assert_eq!(s.rows(), 0);
        assert_eq!(s.nnz(), 0);
    }
}
