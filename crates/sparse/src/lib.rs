//! Sparse matrix substrate for the Misam reproduction.
//!
//! This crate provides the storage formats, reference multiplication
//! kernels, and synthetic matrix generators that every other Misam crate
//! builds on:
//!
//! - [`CooMatrix`], [`CsrMatrix`], [`CscMatrix`] — the three storage formats
//!   used throughout the paper (§2.1), with lossless conversions between
//!   them.
//! - [`kernels`] — software reference implementations of the three SpGEMM
//!   dataflows (inner product, outer product, row-wise/Gustavson) plus
//!   SpMM against a dense right-hand side. These are the functional ground
//!   truth that the cycle-level simulator's outputs are checked against.
//! - [`gen`] — seeded synthetic generators covering every sparsity regime
//!   in the paper's Figure 1: uniform random, power-law graphs, banded/FEM,
//!   circuit-like, and structured-pruned DNN layers. Every family runs in
//!   two deterministic stages: an O(rows) *structure stage* emitting a
//!   [`Structure`], and a lazy *fill stage* ([`LazyMatrix`]) that only
//!   materializes a CSR for consumers that need element values.
//! - [`structure`] / [`lazy`] — the structural matrix descriptions and
//!   lazy materialization behind the two-stage generators; profiles
//!   synthesize from a [`Structure`] in O(rows + cols) via
//!   [`MatrixProfile::synthesize`], bit-identical to profiling the
//!   materialized matrix.
//! - [`suitesparse`] — a catalog of synthetic stand-ins for the sixteen
//!   SuiteSparse matrices of Table 3, matching their published dimensions,
//!   nonzero counts and structural class.
//! - [`io`] — Matrix Market (`.mtx`) reading and writing.
//! - [`CsrRef`] / [`slab`] — the storage-generic borrowed view of a CSR
//!   matrix and the mmap-backed `.msab` slab format behind out-of-core
//!   ingest of real matrices; a streaming two-pass converter turns a
//!   `.mtx` file into a slab without holding the matrix in memory.
//!
//! # Example
//!
//! ```
//! use misam_sparse::{CsrMatrix, kernels};
//! use misam_sparse::gen::{self, SparsityRegime};
//!
//! let a = gen::uniform_random(64, 64, 0.01, 1);
//! let b = gen::uniform_random(64, 64, 0.01, 2);
//! let c = kernels::spgemm_rowwise(&a, &b);
//! assert_eq!(c.rows(), 64);
//! assert_eq!(c.cols(), 64);
//! assert_eq!(SparsityRegime::classify(a.density()), SparsityRegime::HighlySparse);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csc;
mod csr;
mod error;
mod view;

pub mod gen;
pub mod io;
pub mod kernels;
pub mod lazy;
pub mod profile;
pub mod simd;
pub mod slab;
pub mod structure;
pub mod suitesparse;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use lazy::{LazyMatrix, LazyOperand};
pub use profile::MatrixProfile;
pub use structure::{RowRuns, Structure};
pub use view::CsrRef;

/// Result alias used by fallible operations in this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
