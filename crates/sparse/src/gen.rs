//! Seeded synthetic matrix generators covering the sparsity regimes of the
//! paper's Figure 1.
//!
//! Every generator takes an explicit `seed` and is deterministic, so the
//! datasets, workload suites and experiments built on top of them are
//! reproducible bit-for-bit. The structural classes mirror the application
//! domains the paper draws workloads from:
//!
//! - [`uniform_random`] — Erdős–Rényi style, the unstructured baseline;
//! - [`power_law`] — scale-free graph adjacency (social / web / p2p
//!   networks), heavy row-length skew;
//! - [`banded`] — FEM / CFD stencils (e.g. `sme3Db`, `msc10848`);
//! - [`circuit`] — near-diagonal with a few dense coupling rows
//!   (e.g. `scircuit`);
//! - [`regular_degree`] — near-constant row degree (e.g. `cage12`
//!   DNA-electrophoresis chains);
//! - [`pruned_dnn`] — structured-pruned DNN weight layers at a target
//!   density (the paper's MS regime, STR pruning at 0.1 / 0.2);
//! - [`dense`] — fully dense operands (activations / multiple right-hand
//!   sides);
//! - [`imbalanced_rows`] — explicit load-imbalance stressor used to
//!   exercise Design 3's row-wise scheduler.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CooMatrix, CsrMatrix};

/// Coarse sparsity regime labels used throughout the paper (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SparsityRegime {
    /// Density below 2% — SuiteSparse-class scientific/graph matrices.
    HighlySparse,
    /// Density in `[2%, 50%)` — pruned DNN weights and similar.
    ModeratelySparse,
    /// Density of 50% or more.
    Dense,
}

impl SparsityRegime {
    /// Classifies a density value into a regime.
    ///
    /// ```
    /// use misam_sparse::gen::SparsityRegime;
    /// assert_eq!(SparsityRegime::classify(1e-4), SparsityRegime::HighlySparse);
    /// assert_eq!(SparsityRegime::classify(0.15), SparsityRegime::ModeratelySparse);
    /// assert_eq!(SparsityRegime::classify(0.9), SparsityRegime::Dense);
    /// ```
    pub fn classify(density: f64) -> Self {
        if density >= 0.5 {
            SparsityRegime::Dense
        } else if density >= 0.02 {
            SparsityRegime::ModeratelySparse
        } else {
            SparsityRegime::HighlySparse
        }
    }

    /// The two-letter abbreviation the paper uses (HS / MS / D).
    pub fn abbrev(self) -> &'static str {
        match self {
            SparsityRegime::HighlySparse => "HS",
            SparsityRegime::ModeratelySparse => "MS",
            SparsityRegime::Dense => "D",
        }
    }
}

impl std::fmt::Display for SparsityRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

fn value(rng: &mut StdRng) -> f32 {
    // Uniform in [-1, 1] excluding exact zero, so nnz counts are stable.
    loop {
        let v: f32 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Samples `k` distinct values from `0..n` in sorted order.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<u32> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k * 3 >= n {
        // Dense case: partial Fisher–Yates over the full range.
        let mut all: Vec<u32> = (0..n as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            all.swap(i, j);
        }
        let mut chosen = all[..k].to_vec();
        chosen.sort_unstable();
        chosen
    } else {
        // Sparse case: rejection sampling into a sorted set.
        let mut chosen = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        while chosen.len() < k {
            let c = rng.gen_range(0..n) as u32;
            if seen.insert(c) {
                chosen.push(c);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

/// Approximate binomial draw `Binomial(n, p)` via a normal approximation
/// (exact Bernoulli loop for small `n`).
fn binomial(rng: &mut StdRng, n: usize, p: f64) -> usize {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        return (0..n).filter(|_| rng.gen_bool(p)).count();
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box–Muller standard normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sd * z).round().clamp(0.0, n as f64) as usize
}

/// Generates an Erdős–Rényi style random matrix where each entry is
/// present independently with probability `density`.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn uniform_random(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
    build_by_rows(
        rows,
        cols,
        |r, rng| {
            let _ = r;
            binomial(rng, cols, density)
        },
        &mut rng,
    )
}

/// Generates a scale-free (power-law) adjacency-like matrix with `avg_nnz`
/// nonzeros per row on average and row-degree exponent `alpha` (larger
/// `alpha` ⇒ heavier skew). Columns are hub-biased, mimicking social /
/// p2p / co-authorship graphs.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `avg_nnz == 0` with nonzero rows.
pub fn power_law(rows: usize, cols: usize, avg_nnz: f64, alpha: f64, seed: u64) -> CsrMatrix {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0002);
    if rows == 0 || cols == 0 {
        return CsrMatrix::zeros(rows, cols);
    }
    // Zipf row weights, shuffled so hubs land on random row indices.
    let mut weights: Vec<f64> = (0..rows).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let total = avg_nnz * rows as f64;
    for w in &mut weights {
        *w = *w / wsum * total;
    }
    // Shuffle row weights.
    for i in (1..rows).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    let mut coo = CooMatrix::new(rows, cols);
    for (r, &w) in weights.iter().enumerate() {
        let k = w.round().max(0.0) as usize;
        let k = k.min(cols);
        // Hub-biased column draw: u^2 concentrates mass on low columns,
        // then a per-seed permutation offset decorrelates matrices.
        let mut cols_chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut tries = 0;
        while cols_chosen.len() < k && tries < k * 20 + 16 {
            let u: f64 = rng.gen_range(0.0..1.0);
            let c = ((u * u) * cols as f64) as usize % cols;
            cols_chosen.insert(c);
            tries += 1;
        }
        let mut cols_sorted: Vec<usize> = cols_chosen.into_iter().collect();
        cols_sorted.sort_unstable();
        for c in cols_sorted {
            coo.push(r, c, value(&mut rng)).expect("generated index in bounds");
        }
    }
    coo.to_csr()
}

/// Generates an R-MAT (recursive-matrix) graph adjacency in the style of
/// Graph500: each of `nnz_target` edges picks its cell by descending a
/// quadtree over the adjacency matrix with quadrant probabilities
/// `(a, b, c, d)`. The classic skewed setting `(0.57, 0.19, 0.19, 0.05)`
/// yields heavy-tailed degree distributions with community structure —
/// a sharper model of web/social graphs than [`power_law`].
///
/// Duplicate edges are merged, so the resulting nnz can be below
/// `nnz_target` (more so at high skew).
///
/// # Panics
///
/// Panics if the probabilities are not positive or do not sum to ~1.
pub fn rmat(
    rows: usize,
    cols: usize,
    nnz_target: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> CsrMatrix {
    let (a, b, c, d) = probs;
    assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0, "quadrant probabilities must be positive");
    assert!(((a + b + c + d) - 1.0).abs() < 1e-6, "quadrant probabilities must sum to 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_000a);
    if rows == 0 || cols == 0 {
        return CsrMatrix::zeros(rows, cols);
    }
    let mut coo = CooMatrix::new(rows, cols);
    for _ in 0..nnz_target {
        let (mut r_lo, mut r_hi) = (0usize, rows);
        let (mut c_lo, mut c_hi) = (0usize, cols);
        while r_hi - r_lo > 1 || c_hi - c_lo > 1 {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Add a little per-level noise so the result is not a
            // perfectly self-similar grid (standard Graph500 practice).
            let jitter = 0.9 + 0.2 * rng.gen_range(0.0..1.0f64);
            let (top, left) = if u < a * jitter {
                (true, true)
            } else if u < (a + b) * jitter {
                (true, false)
            } else if u < a + b + c {
                (false, true)
            } else {
                (false, false)
            };
            let r_mid = r_lo + ((r_hi - r_lo) / 2).max(1);
            let c_mid = c_lo + ((c_hi - c_lo) / 2).max(1);
            if r_hi - r_lo > 1 {
                if top {
                    r_hi = r_mid;
                } else {
                    r_lo = r_mid;
                }
            }
            if c_hi - c_lo > 1 {
                if left {
                    c_hi = c_mid;
                } else {
                    c_lo = c_mid;
                }
            }
        }
        coo.push(r_lo, c_lo, value(&mut rng)).expect("descent stays in bounds");
    }
    coo.compress();
    // Merged duplicates keep their summed values; exact zeros from
    // cancellation are dropped for structural cleanliness.
    coo.prune_zeros();
    coo.to_csr()
}

/// Generates a banded FEM/CFD-style matrix: full diagonal, dense band of
/// half-width `bandwidth` with fill probability `fill`.
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]`.
pub fn banded(rows: usize, cols: usize, bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0003);
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(cols);
        for c in lo..hi {
            if c == r.min(cols.saturating_sub(1)) || rng.gen_bool(fill) {
                coo.push(r, c, value(&mut rng)).expect("band index in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Generates the 5-point finite-difference stencil over an `nx x ny`
/// grid: the classic 2-D Poisson/Laplace system matrix
/// (`(nx*ny) x (nx*ny)`, ≤ 5 nonzeros per row, strictly banded).
pub fn mesh2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let mut coo = CooMatrix::new(n, n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, 4.0).expect("diagonal in bounds");
            if x > 0 {
                coo.push(i, idx(x - 1, y), -1.0).expect("west in bounds");
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), -1.0).expect("east in bounds");
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), -1.0).expect("south in bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), -1.0).expect("north in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Generates the 7-point stencil over an `nx x ny x nz` grid — the 3-D
/// Poisson system (`poisson3Da`-class structure from Table 3).
pub fn mesh3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut coo = CooMatrix::new(n, n);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0).expect("diagonal in bounds");
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0).expect("in bounds");
                }
                if x + 1 < nx {
                    coo.push(i, idx(x + 1, y, z), -1.0).expect("in bounds");
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0).expect("in bounds");
                }
                if y + 1 < ny {
                    coo.push(i, idx(x, y + 1, z), -1.0).expect("in bounds");
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0).expect("in bounds");
                }
                if z + 1 < nz {
                    coo.push(i, idx(x, y, z + 1), -1.0).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

/// Generates a circuit-simulation-style matrix: diagonal plus sparse
/// random couplings, plus `dense_rows` rows (supply rails) that touch a
/// large share of columns.
pub fn circuit(
    rows: usize,
    cols: usize,
    avg_off_diag: f64,
    dense_rows: usize,
    seed: u64,
) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0004);
    let mut coo = CooMatrix::new(rows, cols);
    let n_dense = dense_rows.min(rows);
    for r in 0..rows {
        if r < cols {
            coo.push(r, r, value(&mut rng)).expect("diagonal in bounds");
        }
        let k = binomial(
            &mut rng,
            cols.saturating_sub(1),
            (avg_off_diag / cols.max(1) as f64).min(1.0),
        );
        for c in sample_distinct(&mut rng, cols, k) {
            if c as usize != r {
                coo.push(r, c as usize, value(&mut rng)).expect("in bounds");
            }
        }
    }
    // Dense rail rows at pseudo-random positions.
    for d in 0..n_dense {
        let r = (d * rows / n_dense.max(1) + 7) % rows;
        let k = (cols / 10).max(8).min(cols);
        for c in sample_distinct(&mut rng, cols, k) {
            coo.push(r, c as usize, value(&mut rng)).expect("in bounds");
        }
    }
    let mut csr = coo.to_csr();
    // Duplicate summation may have produced explicit zeros; drop them.
    let mut c = csr.to_coo();
    c.prune_zeros();
    csr = c.to_csr();
    csr
}

/// Generates a matrix with near-constant row degree `deg` and locally
/// clustered columns, like diffusion/cage matrices.
pub fn regular_degree(rows: usize, cols: usize, deg: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0005);
    let mut coo = CooMatrix::new(rows, cols);
    if cols == 0 {
        return CsrMatrix::zeros(rows, cols);
    }
    for r in 0..rows {
        let k = deg.min(cols);
        // Half local (near the scaled diagonal), half uniform. The local
        // window holds only `2*span + 1` distinct columns, so the local
        // quota is capped by it.
        let center = (r as f64 / rows.max(1) as f64 * cols as f64) as usize;
        let span = (cols / 64).max(4).min(cols);
        let local_quota = (k / 2).min(2 * span);
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        while chosen.len() < local_quota {
            let off = rng.gen_range(0..span * 2 + 1) as i64 - span as i64;
            let c = (center as i64 + off).rem_euclid(cols as i64) as usize;
            chosen.insert(c);
        }
        while chosen.len() < k {
            chosen.insert(rng.gen_range(0..cols));
        }
        let mut chosen_sorted: Vec<usize> = chosen.into_iter().collect();
        chosen_sorted.sort_unstable();
        for c in chosen_sorted {
            coo.push(r, c, value(&mut rng)).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Generates a structured-pruned DNN weight matrix at the given `density`,
/// using block pruning with 4-wide column blocks (the STR-style structured
/// regime of the paper's MS workloads): each row keeps a round-robin-
/// offset subset of blocks so per-row nnz is uniform.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn pruned_dnn(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0006);
    const BLOCK: usize = 4;
    let blocks_per_row = cols.div_ceil(BLOCK);
    let keep = ((blocks_per_row as f64 * density).round() as usize).min(blocks_per_row);
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        for b in sample_distinct(&mut rng, blocks_per_row, keep) {
            let start = b as usize * BLOCK;
            for c in start..(start + BLOCK).min(cols) {
                coo.push(r, c, value(&mut rng)).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Generates a fully dense matrix as CSR (every entry stored).
pub fn dense(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0007);
    let data: Vec<f32> = (0..rows * cols).map(|_| value(&mut rng)).collect();
    CsrMatrix::from_dense(rows, cols, &data)
}

/// Generates a dense row-major buffer (for SpMM right-hand sides).
pub fn dense_buffer(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0008);
    (0..rows * cols).map(|_| value(&mut rng)).collect()
}

/// Generates a matrix with deliberate row-length imbalance: a fraction
/// `heavy_frac` of rows carry `heavy_nnz` nonzeros each while the rest
/// carry `light_nnz`. This is the structural signal behind the paper's
/// `A_load_imbalance_row` feature and Design 3's advantage (§3.2.3).
pub fn imbalanced_rows(
    rows: usize,
    cols: usize,
    heavy_frac: f64,
    heavy_nnz: usize,
    light_nnz: usize,
    seed: u64,
) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0009);
    let n_heavy = ((rows as f64 * heavy_frac).round() as usize).min(rows);
    // Scatter heavy rows across the index space deterministically.
    let mut heavy = vec![false; rows];
    if n_heavy > 0 {
        let stride = rows.max(1) / n_heavy.max(1);
        let mut r = stride / 2;
        for _ in 0..n_heavy {
            heavy[r.min(rows - 1)] = true;
            r += stride.max(1);
            if r >= rows {
                r = rng.gen_range(0..rows);
            }
        }
    }
    build_by_rows(
        rows,
        cols,
        |r, _| if heavy[r] { heavy_nnz.min(cols) } else { light_nnz.min(cols) },
        &mut rng,
    )
}

/// Shared row-driven builder: `row_nnz(r, rng)` decides each row's count,
/// columns are drawn uniformly without replacement.
fn build_by_rows(
    rows: usize,
    cols: usize,
    mut row_nnz: impl FnMut(usize, &mut StdRng) -> usize,
    rng: &mut StdRng,
) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for r in 0..rows {
        let k = row_nnz(r, rng).min(cols);
        for c in sample_distinct(rng, cols, k) {
            col_idx.push(c);
            values.push(value(rng));
        }
        row_ptr.push(values.len());
    }
    CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .expect("builder produces sorted in-bounds columns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_classification_boundaries() {
        assert_eq!(SparsityRegime::classify(0.0), SparsityRegime::HighlySparse);
        assert_eq!(SparsityRegime::classify(0.019), SparsityRegime::HighlySparse);
        assert_eq!(SparsityRegime::classify(0.02), SparsityRegime::ModeratelySparse);
        assert_eq!(SparsityRegime::classify(0.499), SparsityRegime::ModeratelySparse);
        assert_eq!(SparsityRegime::classify(0.5), SparsityRegime::Dense);
        assert_eq!(SparsityRegime::classify(1.0), SparsityRegime::Dense);
        assert_eq!(SparsityRegime::HighlySparse.to_string(), "HS");
    }

    #[test]
    fn uniform_random_hits_target_density() {
        let m = uniform_random(200, 200, 0.1, 42);
        let d = m.density();
        assert!((d - 0.1).abs() < 0.02, "density {d} too far from 0.1");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law(100, 100, 5.0, 1.5, 9);
        let b = power_law(100, 100, 5.0, 1.5, 9);
        assert_eq!(a, b);
        let c = power_law(100, 100, 5.0, 1.5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn power_law_is_skewed() {
        let m = power_law(500, 500, 8.0, 1.4, 3);
        let max_row = (0..500).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 500.0;
        assert!(max_row as f64 > 3.0 * avg, "max {max_row} vs avg {avg} not skewed");
    }

    #[test]
    fn rmat_produces_skewed_connected_structure() {
        let m = rmat(1024, 1024, 16_000, (0.57, 0.19, 0.19, 0.05), 7);
        // Duplicates merge, so nnz is close to but below the target.
        assert!(m.nnz() > 8_000 && m.nnz() <= 16_000, "nnz {}", m.nnz());
        let max_row = (0..1024).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 1024.0;
        assert!(max_row as f64 > 4.0 * avg, "R-MAT should be heavy-tailed");
        // Deterministic per seed.
        assert_eq!(m, rmat(1024, 1024, 16_000, (0.57, 0.19, 0.19, 0.05), 7));
    }

    #[test]
    fn rmat_uniform_probs_are_near_uniform() {
        let m = rmat(256, 256, 6000, (0.25, 0.25, 0.25, 0.25), 8);
        let max_row = (0..256).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 256.0;
        assert!(
            (max_row as f64) < 4.0 * avg,
            "uniform quadrants should not concentrate: max {max_row} avg {avg:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probabilities() {
        rmat(16, 16, 10, (0.5, 0.5, 0.5, 0.5), 1);
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded(64, 64, 3, 0.8, 5);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() as usize <= 3);
        }
        // Diagonal always present.
        for r in 0..64 {
            assert!(m.get(r, r).is_some(), "missing diagonal at {r}");
        }
    }

    #[test]
    fn mesh2d_is_the_classic_poisson_stencil() {
        let m = mesh2d(4, 3);
        assert_eq!(m.rows(), 12);
        // Interior point (1,1) = index 5 has all 5 stencil entries.
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.get(5, 5), Some(4.0));
        assert_eq!(m.get(5, 4), Some(-1.0)); // west
        assert_eq!(m.get(5, 6), Some(-1.0)); // east
        assert_eq!(m.get(5, 1), Some(-1.0)); // south
        assert_eq!(m.get(5, 9), Some(-1.0)); // north
                                             // Corner has only 3 entries; matrix is symmetric.
        assert_eq!(m.row_nnz(0), 3);
        let mt = m.transpose();
        assert_eq!(m, mt);
        // nnz = 5n - 2*(nx + ny) boundary corrections.
        assert_eq!(m.nnz(), 5 * 12 - 2 * 4 - 2 * 3);
    }

    #[test]
    fn mesh3d_matches_seven_point_structure() {
        let m = mesh3d(3, 3, 3);
        assert_eq!(m.rows(), 27);
        // Center of the cube — (x, y, z) = (1, 1, 1) — has the full
        // 7-point stencil.
        let center = 13;
        assert_eq!(m.row_nnz(center), 7);
        assert_eq!(m.get(center, center), Some(6.0));
        assert_eq!(m, m.transpose());
        // Row sums: interior rows sum to 6 - 6 = 0 (discrete Laplacian).
        let sums: f32 = m.row(center).values().iter().sum();
        assert_eq!(sums, 0.0);
    }

    #[test]
    fn circuit_has_dense_rail_rows() {
        let m = circuit(200, 200, 3.0, 4, 6);
        let max_row = (0..200).map(|r| m.row_nnz(r)).max().unwrap();
        assert!(max_row >= 20, "rail rows should be much denser, max {max_row}");
    }

    #[test]
    fn regular_degree_rows_are_uniform() {
        let m = regular_degree(128, 256, 8, 2);
        for r in 0..128 {
            assert_eq!(m.row_nnz(r), 8);
        }
    }

    #[test]
    fn pruned_dnn_is_block_structured_and_balanced() {
        let m = pruned_dnn(64, 256, 0.2, 8);
        let first = m.row_nnz(0);
        for r in 0..64 {
            assert_eq!(m.row_nnz(r), first, "structured pruning keeps rows balanced");
        }
        assert!((m.density() - 0.2).abs() < 0.05);
        // Entries come in 4-wide blocks.
        for r in 0..64 {
            let cols: Vec<usize> = m.row(r).iter().map(|(c, _)| c).collect();
            for chunk in cols.chunks(4) {
                assert_eq!(chunk.len(), 4);
                assert_eq!(chunk[0] % 4, 0, "block starts aligned");
                assert_eq!(chunk[3], chunk[0] + 3, "block contiguous");
            }
        }
    }

    #[test]
    fn dense_generator_is_full() {
        let m = dense(8, 8, 1);
        assert_eq!(m.nnz(), 64);
        assert_eq!(SparsityRegime::classify(m.density()), SparsityRegime::Dense);
    }

    #[test]
    fn imbalanced_rows_creates_imbalance() {
        let m = imbalanced_rows(100, 1000, 0.05, 200, 5, 4);
        let max_row = (0..100).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 100.0;
        assert_eq!(max_row, 200);
        assert!(max_row as f64 / avg > 5.0);
    }

    #[test]
    fn zero_sized_generators_are_safe() {
        assert_eq!(uniform_random(0, 10, 0.5, 1).nnz(), 0);
        assert_eq!(power_law(0, 0, 3.0, 1.2, 1).nnz(), 0);
        assert_eq!(pruned_dnn(4, 0, 0.5, 1).nnz(), 0);
    }

    #[test]
    fn binomial_mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 10_000;
        let total: usize = (0..200).map(|_| binomial(&mut rng, n, 0.3)).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 3000.0).abs() < 60.0, "binomial mean {mean} off");
    }
}
