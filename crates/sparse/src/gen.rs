//! Seeded synthetic matrix generators covering the sparsity regimes of the
//! paper's Figure 1.
//!
//! Every generator takes an explicit `seed` and is deterministic, so the
//! datasets, workload suites and experiments built on top of them are
//! reproducible bit-for-bit. The structural classes mirror the application
//! domains the paper draws workloads from:
//!
//! - [`uniform_random`] — Erdős–Rényi style, the unstructured baseline;
//! - [`power_law`] — scale-free graph adjacency (social / web / p2p
//!   networks), heavy row-length skew;
//! - [`banded`] — FEM / CFD stencils (e.g. `sme3Db`, `msc10848`);
//! - [`circuit`] — near-diagonal with a few dense coupling rows
//!   (e.g. `scircuit`);
//! - [`regular_degree`] — near-constant row degree (e.g. `cage12`
//!   DNA-electrophoresis chains);
//! - [`pruned_dnn`] — structured-pruned DNN weight layers at a target
//!   density (the paper's MS regime, STR pruning at 0.1 / 0.2);
//! - [`dense`] — fully dense operands (activations / multiple right-hand
//!   sides);
//! - [`imbalanced_rows`] — explicit load-imbalance stressor used to
//!   exercise Design 3's row-wise scheduler.
//!
//! # Two-stage generation
//!
//! Every family runs in two deterministic stages sharing one seeded RNG
//! discipline:
//!
//! 1. **Structure stage** — `StdRng::seed_from_u64(seed ^ FAMILY_SALT)`
//!    samples only row placements (a start and a length per row) and
//!    emits a [`Structure`] in O(rows). No element arrays are allocated.
//!    Each row's columns form one contiguous — possibly cyclically
//!    wrapping — run, which preserves each family's defining statistics
//!    (density, row-length skew, bandedness, block alignment, degree
//!    regularity, imbalance) while making profile synthesis
//!    ([`crate::MatrixProfile::synthesize`]) and compressed-dataflow
//!    cost scheduling closed-form.
//! 2. **Fill stage** — `StdRng::seed_from_u64(seed ^ FAMILY_SALT ^
//!    VALUE_SALT)` draws element values row by row in ascending column
//!    order, but only when a consumer materializes the
//!    [`LazyMatrix`]. Labeling pipelines that read structure alone never
//!    run it.
//!
//! Each `*_lazy` function returns the un-materialized form; the classic
//! CSR-returning names delegate to it and materialize immediately, so
//! `family(args) == family_lazy(args).into_csr()` bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::structure::Structure;
use crate::{CsrMatrix, LazyMatrix};

/// XOR-folded into a family's salt to derive its independent fill-stage
/// value stream from the same user seed.
const VALUE_SALT: u64 = 0xf111_b175_0000_0001;

/// Coarse sparsity regime labels used throughout the paper (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SparsityRegime {
    /// Density below 2% — SuiteSparse-class scientific/graph matrices.
    HighlySparse,
    /// Density in `[2%, 50%)` — pruned DNN weights and similar.
    ModeratelySparse,
    /// Density of 50% or more.
    Dense,
}

impl SparsityRegime {
    /// Classifies a density value into a regime.
    ///
    /// ```
    /// use misam_sparse::gen::SparsityRegime;
    /// assert_eq!(SparsityRegime::classify(1e-4), SparsityRegime::HighlySparse);
    /// assert_eq!(SparsityRegime::classify(0.15), SparsityRegime::ModeratelySparse);
    /// assert_eq!(SparsityRegime::classify(0.9), SparsityRegime::Dense);
    /// ```
    pub fn classify(density: f64) -> Self {
        if density >= 0.5 {
            SparsityRegime::Dense
        } else if density >= 0.02 {
            SparsityRegime::ModeratelySparse
        } else {
            SparsityRegime::HighlySparse
        }
    }

    /// The two-letter abbreviation the paper uses (HS / MS / D).
    pub fn abbrev(self) -> &'static str {
        match self {
            SparsityRegime::HighlySparse => "HS",
            SparsityRegime::ModeratelySparse => "MS",
            SparsityRegime::Dense => "D",
        }
    }
}

impl std::fmt::Display for SparsityRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

fn value(rng: &mut StdRng) -> f32 {
    crate::structure::fill_value(rng)
}

/// Legacy O(n) binomial draw: exact Bernoulli loop for `n <= 64`, normal
/// approximation above. Retained because seed-pinned tests check its
/// stream; the structure stage uses [`binomial_fast`] instead.
#[cfg_attr(not(test), allow(dead_code))]
fn binomial(rng: &mut StdRng, n: usize, p: f64) -> usize {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        return (0..n).filter(|_| rng.gen_bool(p)).count();
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box–Muller standard normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sd * z).round().clamp(0.0, n as f64) as usize
}

/// Capacity of the precomputed CDF table in [`Binomial::Table`]. With
/// the half-mean capped at 32 (σ ≤ √32 ≈ 5.7), index 127 sits ~16σ past
/// the mean, so the truncated tail mass is far below the 1e-12 cutoff.
const BINOMIAL_TABLE_CAP: usize = 128;

/// Precomputed binomial sampler `Binomial(n, p)` for the structure
/// stage. Construction does the per-distribution work (a CDF table in
/// the small-mean regime, moment constants otherwise) so generators
/// that draw thousands of rows from one distribution pay it once and
/// each row costs O(1) RNG draws plus a table lookup.
///
/// RNG-stream contract — the number of uniforms consumed per draw is
/// part of the seeded output format, so the regimes below are frozen
/// (changing them changes every downstream structure stream):
///
/// - degenerate (`n == 0`, `p <= 0`, `p >= 1`): zero draws;
/// - `n * min(p, 1 - p) <= 32`: exactly one uniform per draw, inverted
///   against the CDF table (exact distribution up to a 1e-12 tail
///   truncation; `p > 1/2` is drawn as `n - Binomial(n, 1 - p)`);
/// - otherwise: exactly two uniforms per draw (Box–Muller normal
///   approximation, matching the legacy large-`n` regime).
enum Binomial {
    /// Degenerate distribution: always this value, zero draws.
    Const(usize),
    /// Small-mean regime: CDF inversion. `cdf[k] = P(X <= k)` for the
    /// half distribution; `flip` maps a draw `k` to `n - k`. Boxed: the
    /// table dwarfs the other variants, and samplers are built once per
    /// distribution, so the indirection is off the per-row path.
    Table { cdf: Box<[f64; BINOMIAL_TABLE_CAP]>, len: usize, n: usize, flip: bool },
    /// Large-mean regime: Box–Muller normal approximation.
    Normal { n: usize, mean: f64, sd: f64 },
}

impl Binomial {
    fn new(n: usize, p: f64) -> Binomial {
        if n == 0 || p <= 0.0 {
            return Binomial::Const(0);
        }
        if p >= 1.0 {
            return Binomial::Const(n);
        }
        // Work with the half of the distribution whose success
        // probability is <= 1/2 so pmf(0) = q^n never underflows.
        let (ph, flip) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
        if n as f64 * ph <= 32.0 {
            let q = 1.0 - ph;
            let s = ph / q;
            let mut pmf = (n as f64 * q.ln()).exp();
            let mut cdf = Box::new([0.0f64; BINOMIAL_TABLE_CAP]);
            let mut acc = 0.0;
            let mut len = 0usize;
            loop {
                acc += pmf;
                cdf[len] = acc;
                let k = len;
                len += 1;
                if acc >= 1.0 - 1e-12 || k >= n || len == BINOMIAL_TABLE_CAP {
                    break;
                }
                // pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q.
                pmf *= (n - k) as f64 / (k + 1) as f64 * s;
            }
            Binomial::Table { cdf, len, n, flip }
        } else {
            let mean = n as f64 * p;
            Binomial::Normal { n, mean, sd: (mean * (1.0 - p)).sqrt() }
        }
    }

    fn draw(&self, rng: &mut StdRng) -> usize {
        match self {
            Binomial::Const(k) => *k,
            Binomial::Table { cdf, len, n, flip } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                let k = cdf[..*len].partition_point(|&c| c <= u).min(len - 1);
                if *flip {
                    n - k
                } else {
                    k
                }
            }
            Binomial::Normal { n, mean, sd } => {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + sd * z).round().clamp(0.0, *n as f64) as usize
            }
        }
    }
}

/// One-shot `Binomial(n, p)` draw (see [`Binomial`] for the RNG-stream
/// contract). Generators with a fixed per-row distribution should hoist
/// a [`Binomial`] out of the row loop instead; the streams are
/// identical either way — the small-mean arm below accumulates the CDF
/// on the fly against the same uniform, mirroring the table's
/// termination rules, instead of materializing the table per call.
fn binomial_fast(rng: &mut StdRng, n: usize, p: f64) -> usize {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let (ph, flip) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    if n as f64 * ph <= 32.0 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let q = 1.0 - ph;
        let s = ph / q;
        let mut pmf = (n as f64 * q.ln()).exp();
        let mut acc = pmf;
        let mut k = 0usize;
        while acc <= u && acc < 1.0 - 1e-12 && k < n && k + 1 < BINOMIAL_TABLE_CAP {
            pmf *= (n - k) as f64 / (k + 1) as f64 * s;
            k += 1;
            acc += pmf;
        }
        if flip {
            n - k
        } else {
            k
        }
    } else {
        Binomial::new(n, p).draw(rng)
    }
}

/// Uniform run placement helper: a cyclic start for a non-empty row.
#[inline]
fn uniform_start(rng: &mut StdRng, cols: usize, k: usize) -> u32 {
    if k > 0 {
        rng.gen_range(0..cols) as u32
    } else {
        0
    }
}

/// Structure stage of [`uniform_random`]: each row carries a
/// `Binomial(cols, density)`-sized run at a uniform cyclic start, so the
/// matrix hits the target density with independent per-row counts.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn uniform_random_lazy(rows: usize, cols: usize, density: f64, seed: u64) -> LazyMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
    let bin = Binomial::new(cols, density);
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for _ in 0..rows {
        let k = bin.draw(&mut rng);
        starts.push(uniform_start(&mut rng, cols, k));
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), seed ^ 0x5eed_0001 ^ VALUE_SALT)
}

/// Generates an Erdős–Rényi style random matrix at the target `density`.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn uniform_random(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    uniform_random_lazy(rows, cols, density, seed).into_csr()
}

/// Structure stage of [`power_law`]: Zipf row lengths (shuffled so hubs
/// land on random row indices) with hub-biased run starts — `u²`
/// concentrates run starts on low columns, giving the column-occupancy
/// skew of scale-free adjacency.
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn power_law_lazy(rows: usize, cols: usize, avg_nnz: f64, alpha: f64, seed: u64) -> LazyMatrix {
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0002);
    let vseed = seed ^ 0x5eed_0002 ^ VALUE_SALT;
    if rows == 0 || cols == 0 {
        return LazyMatrix::new(Structure::empty(rows, cols), vseed);
    }
    // Zipf row weights, shuffled so hubs land on random row indices.
    let mut weights: Vec<f64> = (0..rows).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let total = avg_nnz * rows as f64;
    for w in &mut weights {
        *w = *w / wsum * total;
    }
    for i in (1..rows).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for &w in &weights {
        let k = (w.round().max(0.0) as usize).min(cols);
        let u: f64 = rng.gen_range(0.0..1.0);
        starts.push((((u * u) * cols as f64) as usize % cols) as u32);
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), vseed)
}

/// Generates a scale-free (power-law) adjacency-like matrix with `avg_nnz`
/// nonzeros per row on average and row-degree exponent `alpha` (larger
/// `alpha` ⇒ heavier skew). Columns are hub-biased, mimicking social /
/// p2p / co-authorship graphs.
///
/// # Panics
///
/// Panics if `alpha <= 0`.
pub fn power_law(rows: usize, cols: usize, avg_nnz: f64, alpha: f64, seed: u64) -> CsrMatrix {
    power_law_lazy(rows, cols, avg_nnz, alpha, seed).into_csr()
}

/// Structure stage of [`rmat`]: the edge budget is split across rows by
/// a recursive binomial descent with top-half probability `a + b` (the
/// R-MAT row marginal), then each non-empty row anchors its run with a
/// column-wise quadrant descent using the left-half marginal `a + c`.
/// Skew and community bias match the element-wise descent while using
/// O(rows) draws instead of O(nnz).
///
/// # Panics
///
/// Panics if the probabilities are not positive or do not sum to ~1.
pub fn rmat_lazy(
    rows: usize,
    cols: usize,
    nnz_target: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> LazyMatrix {
    let (a, b, c, d) = probs;
    assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0, "quadrant probabilities must be positive");
    assert!(((a + b + c + d) - 1.0).abs() < 1e-6, "quadrant probabilities must sum to 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_000a);
    let vseed = seed ^ 0x5eed_000a ^ VALUE_SALT;
    if rows == 0 || cols == 0 {
        return LazyMatrix::new(Structure::empty(rows, cols), vseed);
    }
    // Row marginal: recursively split the budget between the top and
    // bottom halves (depth-first, top-first, so the draw order is a
    // deterministic function of the dimensions alone).
    let p_top = a + b;
    let mut counts = vec![0usize; rows];
    let mut stack = vec![(0usize, rows, nnz_target)];
    while let Some((lo, hi, n)) = stack.pop() {
        if n == 0 {
            continue;
        }
        if hi - lo == 1 {
            counts[lo] = n;
            continue;
        }
        let mid = lo + ((hi - lo) / 2).max(1);
        let top = binomial_fast(&mut rng, n, p_top);
        stack.push((mid, hi, n - top));
        stack.push((lo, mid, top));
    }
    // Column marginal: each non-empty row anchors its run at the cell a
    // left/right quadrant descent lands on.
    let p_left = a + c;
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for &count in &counts {
        let k = count.min(cols);
        if k == 0 {
            starts.push(0);
            lens.push(0);
            continue;
        }
        let (mut c_lo, mut c_hi) = (0usize, cols);
        while c_hi - c_lo > 1 {
            let mid = c_lo + ((c_hi - c_lo) / 2).max(1);
            if rng.gen_bool(p_left) {
                c_hi = mid;
            } else {
                c_lo = mid;
            }
        }
        starts.push(c_lo as u32);
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), vseed)
}

/// Generates an R-MAT (recursive-matrix) graph adjacency in the style of
/// Graph500: the `nnz_target` edge budget is distributed by descending
/// the adjacency quadtree with quadrant probabilities `(a, b, c, d)`.
/// The classic skewed setting `(0.57, 0.19, 0.19, 0.05)` yields
/// heavy-tailed degree distributions with community structure — a
/// sharper model of web/social graphs than [`power_law`].
///
/// Rows whose share of the budget exceeds the column count are clamped,
/// so the resulting nnz can be slightly below `nnz_target` (more so at
/// high skew).
///
/// # Panics
///
/// Panics if the probabilities are not positive or do not sum to ~1.
pub fn rmat(
    rows: usize,
    cols: usize,
    nnz_target: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> CsrMatrix {
    rmat_lazy(rows, cols, nnz_target, probs, seed).into_csr()
}

/// Structure stage of [`banded`]: each row places one
/// diagonal-containing run of `1 + Binomial(band_width - 1, fill)`
/// columns uniformly inside its band window, so every element stays in
/// the band and the diagonal is always present.
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]`.
pub fn banded_lazy(rows: usize, cols: usize, bandwidth: usize, fill: f64, seed: u64) -> LazyMatrix {
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0003);
    // Interior rows (band fully inside the matrix) share one window
    // width; only the first/last `bandwidth` rows differ.
    let interior = Binomial::new(2 * bandwidth, fill);
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for r in 0..rows {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(cols);
        if lo >= hi {
            starts.push(0);
            lens.push(0);
            continue;
        }
        let diag = r.min(cols - 1);
        let window = hi - lo - 1;
        let k = 1 + if window == 2 * bandwidth {
            interior.draw(&mut rng)
        } else {
            binomial_fast(&mut rng, window, fill)
        };
        let s_lo = lo.max((diag + 1).saturating_sub(k));
        let s_hi = diag.min(hi - k);
        let start = if s_hi > s_lo { rng.gen_range(s_lo..=s_hi) } else { s_lo };
        starts.push(start as u32);
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), seed ^ 0x5eed_0003 ^ VALUE_SALT)
}

/// Generates a banded FEM/CFD-style matrix: full diagonal, dense band of
/// half-width `bandwidth` with fill probability `fill`.
///
/// # Panics
///
/// Panics if `fill` is outside `[0, 1]`.
pub fn banded(rows: usize, cols: usize, bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix {
    banded_lazy(rows, cols, bandwidth, fill, seed).into_csr()
}

/// Structure stage of [`mesh2d`]: fully determined by the grid, no RNG.
pub fn mesh2d_lazy(nx: usize, ny: usize) -> LazyMatrix {
    LazyMatrix::new(Structure::Mesh2d { nx, ny }, 0)
}

/// Generates the 5-point finite-difference stencil over an `nx x ny`
/// grid: the classic 2-D Poisson/Laplace system matrix
/// (`(nx*ny) x (nx*ny)`, ≤ 5 nonzeros per row, strictly banded).
pub fn mesh2d(nx: usize, ny: usize) -> CsrMatrix {
    mesh2d_lazy(nx, ny).into_csr()
}

/// Structure stage of [`mesh3d`]: fully determined by the grid, no RNG.
pub fn mesh3d_lazy(nx: usize, ny: usize, nz: usize) -> LazyMatrix {
    LazyMatrix::new(Structure::Mesh3d { nx, ny, nz }, 0)
}

/// Generates the 7-point stencil over an `nx x ny x nz` grid — the 3-D
/// Poisson system (`poisson3Da`-class structure from Table 3).
pub fn mesh3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    mesh3d_lazy(nx, ny, nz).into_csr()
}

/// Structure stage of [`circuit`]: regular rows carry a short
/// diagonal-containing run of `1 + Binomial(cols - 1, avg_off_diag /
/// cols)` columns; supply-rail rows (at the same deterministic positions
/// as ever) carry a `max(cols/10, 8)`-column run instead.
pub fn circuit_lazy(
    rows: usize,
    cols: usize,
    avg_off_diag: f64,
    dense_rows: usize,
    seed: u64,
) -> LazyMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0004);
    let vseed = seed ^ 0x5eed_0004 ^ VALUE_SALT;
    if cols == 0 {
        return LazyMatrix::new(Structure::empty(rows, cols), vseed);
    }
    let n_dense = dense_rows.min(rows);
    let mut rail = vec![false; rows];
    for d in 0..n_dense {
        rail[(d * rows / n_dense.max(1) + 7) % rows] = true;
    }
    let rail_k = (cols / 10).max(8).min(cols);
    let p = (avg_off_diag / cols as f64).clamp(0.0, 1.0);
    let bin = Binomial::new(cols - 1, p);
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for (r, &is_rail) in rail.iter().enumerate() {
        let k = if is_rail {
            rail_k
        } else {
            let off = bin.draw(&mut rng);
            if r < cols {
                1 + off
            } else {
                off
            }
        };
        if k == 0 {
            starts.push(0);
            lens.push(0);
            continue;
        }
        let start = if r < cols {
            // Diagonal-containing placement within [0, cols).
            let s_lo = (r + 1).saturating_sub(k);
            let s_hi = r.min(cols - k);
            if s_hi > s_lo {
                rng.gen_range(s_lo..=s_hi)
            } else {
                s_lo
            }
        } else {
            rng.gen_range(0..cols)
        };
        starts.push(start as u32);
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), vseed)
}

/// Generates a circuit-simulation-style matrix: diagonal plus sparse
/// couplings, plus `dense_rows` rows (supply rails) that touch a large
/// share of columns.
pub fn circuit(
    rows: usize,
    cols: usize,
    avg_off_diag: f64,
    dense_rows: usize,
    seed: u64,
) -> CsrMatrix {
    circuit_lazy(rows, cols, avg_off_diag, dense_rows, seed).into_csr()
}

/// Structure stage of [`regular_degree`]: every row carries exactly
/// `deg` columns in one run jittered around the scaled diagonal,
/// mirroring the locally clustered constant-degree structure of
/// cage-class matrices.
pub fn regular_degree_lazy(rows: usize, cols: usize, deg: usize, seed: u64) -> LazyMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0005);
    let vseed = seed ^ 0x5eed_0005 ^ VALUE_SALT;
    if cols == 0 {
        return LazyMatrix::new(Structure::empty(rows, cols), vseed);
    }
    let k = deg.min(cols);
    let span = (cols / 64).max(4).min(cols);
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for r in 0..rows {
        let center = (r as f64 / rows.max(1) as f64 * cols as f64) as usize;
        let off = rng.gen_range(0..span * 2 + 1) as i64 - span as i64;
        let start = (center as i64 + off - (k / 2) as i64).rem_euclid(cols as i64) as usize;
        starts.push(start as u32);
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), vseed)
}

/// Generates a matrix with constant row degree `deg` and locally
/// clustered columns, like diffusion/cage matrices.
pub fn regular_degree(rows: usize, cols: usize, deg: usize, seed: u64) -> CsrMatrix {
    regular_degree_lazy(rows, cols, deg, seed).into_csr()
}

/// Structure stage of [`pruned_dnn`]: each row keeps `round(blocks *
/// density)` *consecutive* 4-wide blocks starting at a uniform block
/// offset (cyclically wrapping), so per-row nnz stays uniform and every
/// kept chunk is block-aligned.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn pruned_dnn_lazy(rows: usize, cols: usize, density: f64, seed: u64) -> LazyMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0006);
    let vseed = seed ^ 0x5eed_0006 ^ VALUE_SALT;
    const BLOCK: usize = 4;
    if cols == 0 {
        return LazyMatrix::new(Structure::empty(rows, cols), vseed);
    }
    let blocks = cols.div_ceil(BLOCK);
    let keep = ((blocks as f64 * density).round() as usize).min(blocks);
    // The last block may be narrower than BLOCK on ragged widths.
    let last_width = cols - BLOCK * (blocks - 1);
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for _ in 0..rows {
        if keep == 0 {
            starts.push(0);
            lens.push(0);
            continue;
        }
        let sb = rng.gen_range(0..blocks);
        let covers_last = sb + keep >= blocks;
        let len = keep * BLOCK - if covers_last { BLOCK - last_width } else { 0 };
        starts.push((sb * BLOCK) as u32);
        lens.push(len as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), vseed)
}

/// Generates a structured-pruned DNN weight matrix at the given `density`,
/// using block pruning with 4-wide column blocks (the STR-style structured
/// regime of the paper's MS workloads): each row keeps a uniform-offset
/// subset of blocks so per-row nnz is uniform.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn pruned_dnn(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    pruned_dnn_lazy(rows, cols, density, seed).into_csr()
}

/// Structure stage of [`dense`]: every row is a full run, no RNG.
pub fn dense_lazy(rows: usize, cols: usize, seed: u64) -> LazyMatrix {
    LazyMatrix::new(
        Structure::runs(rows, cols, vec![0; rows], vec![cols as u32; rows]),
        seed ^ 0x5eed_0007 ^ VALUE_SALT,
    )
}

/// Generates a fully dense matrix as CSR (every entry stored).
pub fn dense(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    dense_lazy(rows, cols, seed).into_csr()
}

/// Generates a dense row-major buffer (for SpMM right-hand sides).
pub fn dense_buffer(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0008);
    (0..rows * cols).map(|_| value(&mut rng)).collect()
}

/// Structure stage of [`imbalanced_rows`]: heavy rows are scattered at
/// the same deterministic stride positions as ever; every row then
/// carries its fixed count in a run at a uniform cyclic start.
pub fn imbalanced_rows_lazy(
    rows: usize,
    cols: usize,
    heavy_frac: f64,
    heavy_nnz: usize,
    light_nnz: usize,
    seed: u64,
) -> LazyMatrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0009);
    let n_heavy = ((rows as f64 * heavy_frac).round() as usize).min(rows);
    // Scatter heavy rows across the index space deterministically.
    let mut heavy = vec![false; rows];
    if n_heavy > 0 {
        let stride = rows.max(1) / n_heavy.max(1);
        let mut r = stride / 2;
        for _ in 0..n_heavy {
            heavy[r.min(rows - 1)] = true;
            r += stride.max(1);
            if r >= rows {
                r = rng.gen_range(0..rows);
            }
        }
    }
    let mut starts = Vec::with_capacity(rows);
    let mut lens = Vec::with_capacity(rows);
    for &h in &heavy {
        let k = if h { heavy_nnz.min(cols) } else { light_nnz.min(cols) };
        starts.push(uniform_start(&mut rng, cols, k));
        lens.push(k as u32);
    }
    LazyMatrix::new(Structure::runs(rows, cols, starts, lens), seed ^ 0x5eed_0009 ^ VALUE_SALT)
}

/// Generates a matrix with deliberate row-length imbalance: a fraction
/// `heavy_frac` of rows carry `heavy_nnz` nonzeros each while the rest
/// carry `light_nnz`. This is the structural signal behind the paper's
/// `A_load_imbalance_row` feature and Design 3's advantage (§3.2.3).
pub fn imbalanced_rows(
    rows: usize,
    cols: usize,
    heavy_frac: f64,
    heavy_nnz: usize,
    light_nnz: usize,
    seed: u64,
) -> CsrMatrix {
    imbalanced_rows_lazy(rows, cols, heavy_frac, heavy_nnz, light_nnz, seed).into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_classification_boundaries() {
        assert_eq!(SparsityRegime::classify(0.0), SparsityRegime::HighlySparse);
        assert_eq!(SparsityRegime::classify(0.019), SparsityRegime::HighlySparse);
        assert_eq!(SparsityRegime::classify(0.02), SparsityRegime::ModeratelySparse);
        assert_eq!(SparsityRegime::classify(0.499), SparsityRegime::ModeratelySparse);
        assert_eq!(SparsityRegime::classify(0.5), SparsityRegime::Dense);
        assert_eq!(SparsityRegime::classify(1.0), SparsityRegime::Dense);
        assert_eq!(SparsityRegime::HighlySparse.to_string(), "HS");
    }

    #[test]
    fn uniform_random_hits_target_density() {
        let m = uniform_random(200, 200, 0.1, 42);
        let d = m.density();
        assert!((d - 0.1).abs() < 0.02, "density {d} too far from 0.1");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law(100, 100, 5.0, 1.5, 9);
        let b = power_law(100, 100, 5.0, 1.5, 9);
        assert_eq!(a, b);
        let c = power_law(100, 100, 5.0, 1.5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_and_eager_forms_agree() {
        let eager = uniform_random(96, 128, 0.07, 21);
        let lazy = uniform_random_lazy(96, 128, 0.07, 21);
        assert_eq!(lazy.nnz(), eager.nnz());
        assert_eq!(*lazy.materialize(), eager);

        let eager = power_law(80, 80, 5.0, 1.4, 3);
        assert_eq!(power_law_lazy(80, 80, 5.0, 1.4, 3).into_csr(), eager);
    }

    #[test]
    fn power_law_is_skewed() {
        let m = power_law(500, 500, 8.0, 1.4, 3);
        let max_row = (0..500).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 500.0;
        assert!(max_row as f64 > 3.0 * avg, "max {max_row} vs avg {avg} not skewed");
    }

    #[test]
    fn rmat_produces_skewed_connected_structure() {
        let m = rmat(1024, 1024, 16_000, (0.57, 0.19, 0.19, 0.05), 7);
        // Hub rows clamp at the column count, so nnz is close to but
        // at most the target.
        assert!(m.nnz() > 8_000 && m.nnz() <= 16_000, "nnz {}", m.nnz());
        let max_row = (0..1024).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 1024.0;
        assert!(max_row as f64 > 4.0 * avg, "R-MAT should be heavy-tailed");
        // Deterministic per seed.
        assert_eq!(m, rmat(1024, 1024, 16_000, (0.57, 0.19, 0.19, 0.05), 7));
    }

    #[test]
    fn rmat_uniform_probs_are_near_uniform() {
        let m = rmat(256, 256, 6000, (0.25, 0.25, 0.25, 0.25), 8);
        let max_row = (0..256).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 256.0;
        assert!(
            (max_row as f64) < 4.0 * avg,
            "uniform quadrants should not concentrate: max {max_row} avg {avg:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probabilities() {
        rmat(16, 16, 10, (0.5, 0.5, 0.5, 0.5), 1);
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded(64, 64, 3, 0.8, 5);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() as usize <= 3);
        }
        // Diagonal always present.
        for r in 0..64 {
            assert!(m.get(r, r).is_some(), "missing diagonal at {r}");
        }
    }

    #[test]
    fn banded_handles_wide_matrices() {
        let m = banded(8, 64, 2, 0.5, 11);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() as usize <= 2);
        }
        for r in 0..8 {
            assert!(m.get(r, r).is_some());
        }
    }

    #[test]
    fn mesh2d_is_the_classic_poisson_stencil() {
        let m = mesh2d(4, 3);
        assert_eq!(m.rows(), 12);
        // Interior point (1,1) = index 5 has all 5 stencil entries.
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.get(5, 5), Some(4.0));
        assert_eq!(m.get(5, 4), Some(-1.0)); // west
        assert_eq!(m.get(5, 6), Some(-1.0)); // east
        assert_eq!(m.get(5, 1), Some(-1.0)); // south
        assert_eq!(m.get(5, 9), Some(-1.0)); // north
                                             // Corner has only 3 entries; matrix is symmetric.
        assert_eq!(m.row_nnz(0), 3);
        let mt = m.transpose();
        assert_eq!(m, mt);
        // nnz = 5n - 2*(nx + ny) boundary corrections.
        assert_eq!(m.nnz(), 5 * 12 - 2 * 4 - 2 * 3);
    }

    #[test]
    fn mesh3d_matches_seven_point_structure() {
        let m = mesh3d(3, 3, 3);
        assert_eq!(m.rows(), 27);
        // Center of the cube — (x, y, z) = (1, 1, 1) — has the full
        // 7-point stencil.
        let center = 13;
        assert_eq!(m.row_nnz(center), 7);
        assert_eq!(m.get(center, center), Some(6.0));
        assert_eq!(m, m.transpose());
        // Row sums: interior rows sum to 6 - 6 = 0 (discrete Laplacian).
        let sums: f32 = m.row(center).values().iter().sum();
        assert_eq!(sums, 0.0);
    }

    #[test]
    fn circuit_has_dense_rail_rows() {
        let m = circuit(200, 200, 3.0, 4, 6);
        let max_row = (0..200).map(|r| m.row_nnz(r)).max().unwrap();
        assert!(max_row >= 20, "rail rows should be much denser, max {max_row}");
        // Regular rows keep the diagonal.
        let mut diag_present = 0;
        for r in 0..200 {
            if m.get(r, r).is_some() {
                diag_present += 1;
            }
        }
        assert!(diag_present >= 196, "diagonal present on non-rail rows");
    }

    #[test]
    fn regular_degree_rows_are_uniform() {
        let m = regular_degree(128, 256, 8, 2);
        for r in 0..128 {
            assert_eq!(m.row_nnz(r), 8);
        }
    }

    #[test]
    fn pruned_dnn_is_block_structured_and_balanced() {
        let m = pruned_dnn(64, 256, 0.2, 8);
        let first = m.row_nnz(0);
        for r in 0..64 {
            assert_eq!(m.row_nnz(r), first, "structured pruning keeps rows balanced");
        }
        assert!((m.density() - 0.2).abs() < 0.05);
        // Entries come in 4-wide blocks.
        for r in 0..64 {
            let cols: Vec<usize> = m.row(r).iter().map(|(c, _)| c).collect();
            for chunk in cols.chunks(4) {
                assert_eq!(chunk.len(), 4);
                assert_eq!(chunk[0] % 4, 0, "block starts aligned");
                assert_eq!(chunk[3], chunk[0] + 3, "block contiguous");
            }
        }
    }

    #[test]
    fn dense_generator_is_full() {
        let m = dense(8, 8, 1);
        assert_eq!(m.nnz(), 64);
        assert_eq!(SparsityRegime::classify(m.density()), SparsityRegime::Dense);
    }

    #[test]
    fn imbalanced_rows_creates_imbalance() {
        let m = imbalanced_rows(100, 1000, 0.05, 200, 5, 4);
        let max_row = (0..100).map(|r| m.row_nnz(r)).max().unwrap();
        let avg = m.nnz() as f64 / 100.0;
        assert_eq!(max_row, 200);
        assert!(max_row as f64 / avg > 5.0);
    }

    #[test]
    fn zero_sized_generators_are_safe() {
        assert_eq!(uniform_random(0, 10, 0.5, 1).nnz(), 0);
        assert_eq!(power_law(0, 0, 3.0, 1.2, 1).nnz(), 0);
        assert_eq!(pruned_dnn(4, 0, 0.5, 1).nnz(), 0);
        assert_eq!(rmat_lazy(0, 8, 100, (0.25, 0.25, 0.25, 0.25), 1).nnz(), 0);
        assert_eq!(circuit(4, 0, 2.0, 1, 1).nnz(), 0);
        assert_eq!(regular_degree(4, 0, 3, 1).nnz(), 0);
    }

    #[test]
    fn binomial_mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 10_000;
        let total: usize = (0..200).map(|_| binomial(&mut rng, n, 0.3)).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 3000.0).abs() < 60.0, "binomial mean {mean} off");
    }

    #[test]
    fn binomial_fast_mean_is_reasonable_in_every_regime() {
        let mut rng = StdRng::seed_from_u64(78);
        // Bernoulli regime (n <= 16).
        let total: usize = (0..2000).map(|_| binomial_fast(&mut rng, 12, 0.25)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.2, "small-n mean {mean} off");
        // Geometric-skip regime (small expected count).
        let total: usize = (0..2000).map(|_| binomial_fast(&mut rng, 10_000, 0.002)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 20.0).abs() < 1.0, "geometric mean {mean} off");
        // Normal regime (large expected count).
        let total: usize = (0..2000).map(|_| binomial_fast(&mut rng, 10_000, 0.3)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 3000.0).abs() < 20.0, "normal mean {mean} off");
    }

    #[test]
    fn binomial_fast_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..500 {
            let k = binomial_fast(&mut rng, 50, 0.49);
            assert!(k <= 50);
        }
        assert_eq!(binomial_fast(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial_fast(&mut rng, 9, 0.0), 0);
        assert_eq!(binomial_fast(&mut rng, 9, 1.0), 9);
    }
}
