//! Storage-generic borrowed view of a CSR matrix.
//!
//! Every structural consumer in the workspace — the profile builder,
//! the feature extractor, the cycle-level schedulers — reads a CSR
//! matrix through exactly three slices (`row_ptr`, `col_idx`,
//! `values`) plus its shape. [`CsrRef`] is that access pattern made
//! explicit: a `Copy` bundle of borrowed slices that the owned
//! [`CsrMatrix`](crate::CsrMatrix) and the mmap-backed
//! [`SlabMatrix`](crate::slab::SlabMatrix) both produce, so one
//! view-based implementation serves resident and out-of-core storage
//! alike. The refactored consumers are proven bit-identical across the
//! two producers in `tests/slab_equivalence.rs`.

use crate::csr::RowView;
use crate::CsrMatrix;

/// Borrowed-slices view of a CSR matrix.
///
/// Mirrors the accessor surface of [`CsrMatrix`] (same invariants,
/// which the producers guarantee): `row_ptr` has `rows + 1`
/// non-decreasing entries ending at `nnz`, and `col_idx` / `values`
/// are parallel arrays with strictly increasing columns per row.
#[derive(Debug, Clone, Copy)]
pub struct CsrRef<'a> {
    rows: usize,
    cols: usize,
    row_ptr: &'a [usize],
    col_idx: &'a [u32],
    values: &'a [f32],
}

impl<'a> CsrRef<'a> {
    /// Assembles a view from raw borrowed arrays.
    ///
    /// Callers are the storage producers ([`CsrMatrix::as_ref`],
    /// [`SlabMatrix::as_ref`](crate::slab::SlabMatrix::as_ref)), which
    /// uphold the CSR invariants at construction / open time; only the
    /// array-length couplings are re-checked here.
    ///
    /// # Panics
    ///
    /// Panics if `row_ptr.len() != rows + 1` or the index/value arrays
    /// disagree in length with each other or with `row_ptr[rows]`.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: &'a [usize],
        col_idx: &'a [u32],
        values: &'a [f32],
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must hold rows + 1 entries");
        assert_eq!(col_idx.len(), values.len(), "col_idx and values must be parallel");
        assert_eq!(row_ptr[rows], values.len(), "row_ptr must end at nnz");
        CsrRef { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored; 0 for an empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &'a [usize] {
        self.row_ptr
    }

    /// The column index array, parallel to [`CsrRef::values`].
    pub fn col_idx(&self) -> &'a [u32] {
        self.col_idx
    }

    /// The stored values.
    pub fn values(&self) -> &'a [f32] {
        self.values
    }

    /// Returns the `(column, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> RowView<'a> {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        RowView::new(&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Looks up a single entry. O(log nnz(row)).
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        let seg = &self.col_idx[lo..hi];
        seg.binary_search(&(col as u32)).ok().map(|i| self.values[lo + i])
    }

    /// Iterates all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + 'a {
        let (rows, row_ptr, col_idx, values) = (self.rows, self.row_ptr, self.col_idx, self.values);
        (0..rows).flat_map(move |r| {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            (lo..hi).map(move |i| (r, col_idx[i] as usize, values[i]))
        })
    }

    /// Copies the viewed arrays into an owned [`CsrMatrix`].
    pub fn to_matrix(&self) -> CsrMatrix {
        CsrMatrix::from_raw_parts(
            self.rows,
            self.cols,
            self.row_ptr.to_vec(),
            self.col_idx.to_vec(),
            self.values.to_vec(),
        )
        .expect("a CsrRef upholds the CSR invariants by construction")
    }
}

impl CsrMatrix {
    /// The borrowed-slices view of this matrix — the storage-generic
    /// form every structural consumer takes.
    pub fn as_ref(&self) -> CsrRef<'_> {
        CsrRef {
            rows: self.rows(),
            cols: self.cols(),
            row_ptr: self.row_ptr(),
            col_idx: self.col_idx(),
            values: self.values(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn view_mirrors_owned_accessors() {
        let m = gen::power_law(64, 48, 4.0, 1.4, 3);
        let v = m.as_ref();
        assert_eq!(v.rows(), m.rows());
        assert_eq!(v.cols(), m.cols());
        assert_eq!(v.nnz(), m.nnz());
        assert_eq!(v.density(), m.density());
        assert_eq!(v.row_ptr(), m.row_ptr());
        assert_eq!(v.col_idx(), m.col_idx());
        assert_eq!(v.values(), m.values());
        for r in 0..m.rows() {
            assert_eq!(v.row_nnz(r), m.row_nnz(r));
            assert_eq!(v.row(r).iter().collect::<Vec<_>>(), m.row(r).iter().collect::<Vec<_>>());
        }
        assert_eq!(v.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
        assert_eq!(v.get(3, 7), m.get(3, 7));
        assert_eq!(v.get(999, 0), None);
    }

    #[test]
    fn to_matrix_roundtrips() {
        let m = gen::uniform_random(32, 32, 0.1, 9);
        assert_eq!(m.as_ref().to_matrix(), m);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn from_raw_parts_checks_couplings() {
        CsrRef::from_raw_parts(1, 2, &[0, 2], &[0], &[1.0]);
    }
}
