//! Precomputed structural profiles of a sparse matrix.
//!
//! Every consumer of a matrix's *structure* — the cycle-level scheduler,
//! the feature extractor, the execution oracle — used to re-walk the CSR
//! arrays on each query: one walk per design per pass width for
//! scheduling, one walk per call for column statistics. A
//! [`MatrixProfile`] folds all of that into a single pass over the
//! matrix, after which:
//!
//! - uniform-cost PE scheduling is a closed-form O(PEs) fold over the
//!   per-residue tallies (see `misam_sim::schedule`), because under a
//!   uniform element cost `w` a row's dependency span is
//!   `n·w + (n−1)·max(0, d−w)` — strictly increasing in `n` — so each
//!   PE's critical span is determined by the *largest* chunk assigned to
//!   it, not by the chunk contents;
//! - row/column mean, variance, maximum and load imbalance (the
//!   `misam_features` statistics) read straight from the stored
//!   distribution summaries;
//! - per-column cost tables for compressed-B scheduling derive from the
//!   row-length vector of the B-side profile without touching B again.
//!
//! Profiles are immutable once built, so they can sit behind an `Arc` in
//! a process-wide cache and be shared by every layer that fingerprints
//! the same matrix.

use crate::simd;
use crate::structure::{RowRuns, Structure};
use crate::view::CsrRef;
use crate::CsrMatrix;
use std::collections::BTreeMap;

/// Mean / population-variance / maximum summary of a count
/// distribution (rows-per-length or columns-per-occupancy).
///
/// Accumulated in the exact iteration order and float operations of the
/// historical feature extractor, so statistics derived from a profile
/// are bit-identical to a fresh CSR scan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistSummary {
    /// Number of observations (rows or columns).
    pub n: usize,
    /// Mean count.
    pub mean: f64,
    /// Population variance of the counts.
    pub var: f64,
    /// Largest count.
    pub max: usize,
}

impl DistSummary {
    fn of(counts: impl Iterator<Item = usize>) -> Self {
        let mut n = 0usize;
        let mut sum = 0f64;
        let mut sumsq = 0f64;
        let mut max = 0usize;
        for c in counts {
            n += 1;
            sum += c as f64;
            sumsq += (c * c) as f64;
            max = max.max(c);
        }
        if n == 0 {
            return DistSummary::default();
        }
        let mean = sum / n as f64;
        let var = (sumsq / n as f64 - mean * mean).max(0.0);
        DistSummary { n, mean, var, max }
    }

    /// Largest count over the mean (≥ 1 when any count is positive;
    /// 1 for an empty distribution) — the load-imbalance ratio.
    pub fn imbalance(&self) -> f64 {
        if self.mean > 0.0 {
            self.max as f64 / self.mean
        } else {
            1.0
        }
    }
}

/// Per-PE-residue aggregates for one PE count.
///
/// The two assignment policies of the paper's Table 1 are both residue
/// classes: the column scheduler sends whole row `r` to PE `r % pes`,
/// the row scheduler sends each element to PE `col % pes`. Under a
/// uniform element cost the schedule of a PE therefore depends only on
/// (a) how many elements land on it and (b) the largest
/// single-dependency-chain chunk it receives — both computed here once.
#[derive(Debug, Clone, PartialEq)]
pub struct PeResidueTally {
    pes: usize,
    row_side: bool,
    /// Column scheduler: total elements of rows `r ≡ p (mod pes)`.
    pub row_len_sum: Vec<u64>,
    /// Column scheduler: longest row assigned to PE `p`.
    pub row_len_max: Vec<u32>,
    /// Row scheduler: total elements with `col ≡ p (mod pes)`.
    pub col_count_sum: Vec<u64>,
    /// Row scheduler: largest per-row fragment landing on PE `p` (the
    /// longest same-row dependency chain it must serialize). Empty
    /// unless the tally was built with the row side (see
    /// [`PeResidueTally::has_row_side`]).
    pub row_frag_max: Vec<u32>,
}

impl PeResidueTally {
    /// The PE count these tallies are folded for.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// True when [`PeResidueTally::row_frag_max`] was computed. The
    /// fragment maxima need an O(nnz) element pass, so
    /// [`MatrixProfile::build_with_scheduler_pes`] only folds them for
    /// PE counts a row scheduler actually uses; consumers scheduling a
    /// row traversal must fall back to the element walk when this is
    /// false.
    pub fn has_row_side(&self) -> bool {
        self.row_side
    }
}

/// The precomputed structural profile of one CSR matrix.
///
/// Built in a single traversal of the CSR arrays; see the module docs
/// for what each consumer reads from it.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    rows: usize,
    cols: usize,
    nnz: usize,
    row_lens: Vec<u32>,
    col_counts: Vec<u32>,
    row_summary: DistSummary,
    col_summary: DistSummary,
    tallies: Vec<PeResidueTally>,
}

impl MatrixProfile {
    /// Profiles `m` without PE tallies (sufficient for feature
    /// extraction; scheduling falls back to the element walk).
    pub fn build(m: &CsrMatrix) -> Self {
        Self::build_with_pes(m, &[])
    }

    /// Profiles `m` and folds per-residue tallies for every PE count in
    /// `pe_counts` (zero and duplicate entries are ignored), with both
    /// scheduler sides computed for every count.
    pub fn build_with_pes(m: &CsrMatrix, pe_counts: &[usize]) -> Self {
        Self::build_with_scheduler_pes(m, pe_counts, pe_counts)
    }

    /// Profiles `m` with column-scheduler tallies for every PE count in
    /// `col_pes ∪ row_pes` but row-scheduler fragment maxima — the only
    /// aggregate needing an O(nnz) element pass per PE count — folded
    /// just for the counts in `row_pes`. Tallies without the row side
    /// report [`PeResidueTally::has_row_side`] `== false` and row-
    /// traversal consumers must fall back to the element walk for them.
    pub fn build_with_scheduler_pes(m: &CsrMatrix, col_pes: &[usize], row_pes: &[usize]) -> Self {
        Self::build_with_scheduler_pes_ref(m.as_ref(), col_pes, row_pes)
    }

    /// View-based form of [`MatrixProfile::build`], serving mmap-backed
    /// storage the same way as owned matrices.
    pub fn build_ref(m: CsrRef<'_>) -> Self {
        Self::build_with_scheduler_pes_ref(m, &[], &[])
    }

    /// View-based form of [`MatrixProfile::build_with_scheduler_pes`] —
    /// the implementation the owned entry points delegate to.
    pub fn build_with_scheduler_pes_ref(
        m: CsrRef<'_>,
        col_pes: &[usize],
        row_pes: &[usize],
    ) -> Self {
        Self::build_chunked(m, usize::MAX, col_pes, row_pes)
    }

    /// Profiles `m` by folding row ranges of at most `chunk_rows` rows
    /// at a time, **bit-identical** to
    /// [`MatrixProfile::build_with_scheduler_pes_ref`] of the same view
    /// at any chunk size (the equivalence proptests in
    /// `tests/slab_equivalence.rs` pin this). Over an mmap-backed slab
    /// this bounds the resident element window to one chunk of rows, so
    /// matrices far larger than memory profile within a fixed budget.
    pub fn build_streaming(
        m: CsrRef<'_>,
        chunk_rows: usize,
        col_pes: &[usize],
        row_pes: &[usize],
    ) -> Self {
        Self::build_chunked(m, chunk_rows.max(1), col_pes, row_pes)
    }

    fn build_chunked(
        m: CsrRef<'_>,
        chunk_rows: usize,
        col_pes: &[usize],
        row_pes: &[usize],
    ) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let nnz = m.nnz();

        let row_ptr = m.row_ptr();
        let mut row_lens: Vec<u32> = Vec::with_capacity(rows);
        let mut tallies = make_tallies(col_pes, row_pes);
        let mut col_counts = vec![0u32; cols];

        // Fold one row range at a time. Fragments never span rows, the
        // column occupancy is an order-independent integer sum, and the
        // residue folds below run over the assembled length vectors —
        // so the chunk boundaries cannot show up in any field.
        let mut r0 = 0usize;
        while r0 < rows {
            let r1 = rows.min(r0.saturating_add(chunk_rows));
            for r in r0..r1 {
                row_lens.push((row_ptr[r + 1] - row_ptr[r]) as u32);
            }
            // Row-scheduler fragment maxima need the per-row column
            // sets: one O(chunk nnz) element pass per row-side PE
            // count. The column occupancy ride-shares the first pass
            // (it visits exactly the same elements); without a
            // row-side tally it gets its own loop.
            let mut counted = false;
            if nnz > 0 {
                for t in tallies.iter_mut().filter(|t| t.row_side) {
                    let counts = if counted { None } else { Some(&mut col_counts[..]) };
                    simd::frag_fold(
                        r1 - r0,
                        cols,
                        &row_ptr[r0..=r1],
                        m.col_idx(),
                        t.pes,
                        &mut t.row_frag_max,
                        counts,
                    );
                    counted = true;
                }
            }
            if !counted {
                for &c in &m.col_idx()[row_ptr[r0]..row_ptr[r1]] {
                    col_counts[c as usize] += 1;
                }
            }
            r0 = r1;
        }

        let row_summary = DistSummary::of(row_lens.iter().map(|&l| l as usize));
        let col_summary = DistSummary::of(col_counts.iter().map(|&c| c as usize));

        fold_residues(&mut tallies, &row_lens, &col_counts);
        // The fragment fold only records fragments of length >= 2;
        // every populated residue trivially has a fragment of 1.
        for t in &mut tallies {
            if t.row_side {
                for p in 0..t.pes {
                    if t.row_frag_max[p] == 0 && t.col_count_sum[p] > 0 {
                        t.row_frag_max[p] = 1;
                    }
                }
            }
        }

        MatrixProfile { rows, cols, nnz, row_lens, col_counts, row_summary, col_summary, tallies }
    }

    /// Number of rows of the profiled matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the profiled matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros of the profiled matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Nonzeros per row, in row order.
    pub fn row_lens(&self) -> &[u32] {
        &self.row_lens
    }

    /// Nonzeros per column, in column order.
    pub fn col_counts(&self) -> &[u32] {
        &self.col_counts
    }

    /// Distribution summary of nonzeros per row.
    pub fn row_summary(&self) -> &DistSummary {
        &self.row_summary
    }

    /// Distribution summary of nonzeros per column.
    pub fn col_summary(&self) -> &DistSummary {
        &self.col_summary
    }

    /// The residue tally folded for `pes`, if one was requested at
    /// build time.
    pub fn tally(&self, pes: usize) -> Option<&PeResidueTally> {
        self.tallies.iter().find(|t| t.pes == pes)
    }

    /// PE counts this profile holds tallies for.
    pub fn tally_pes(&self) -> impl Iterator<Item = usize> + '_ {
        self.tallies.iter().map(|t| t.pes)
    }

    /// Cheap shape guard: true when `m` has the dimensions and nonzero
    /// count this profile was built from. Used by consumers to assert a
    /// profile is being applied to the matrix it describes.
    pub fn describes(&self, m: &CsrMatrix) -> bool {
        self.rows == m.rows() && self.cols == m.cols() && self.nnz == m.nnz()
    }

    /// Shape guard for a storage-generic view (see
    /// [`MatrixProfile::describes`]).
    pub fn describes_view(&self, m: CsrRef<'_>) -> bool {
        self.rows == m.rows() && self.cols == m.cols() && self.nnz == m.nnz()
    }

    /// Shape guard against a structural description (see
    /// [`MatrixProfile::synthesize`]).
    pub fn describes_structure(&self, s: &Structure) -> bool {
        self.rows == s.rows() && self.cols == s.cols() && self.nnz == s.nnz()
    }

    /// Synthesizes the profile of a [`Structure`] in O(rows + cols +
    /// PEs) without materializing any element arrays, **bit-identical**
    /// to [`MatrixProfile::build_with_scheduler_pes`] of the
    /// materialized matrix.
    ///
    /// Identity holds field by field: row lengths read straight off the
    /// run table (or stencil arity), column occupancies come from a
    /// cyclic difference array, the float summaries are accumulated in
    /// the same order with the same operations, and the residue tallies
    /// reuse the exact wrapping-counter folds of the build path. The
    /// only derivation that differs is `row_frag_max`: instead of the
    /// per-element fold (plus the populated-residue lift), synthesis
    /// computes the true per-residue fragment maximum directly — a run
    /// of `L` consecutive columns drops `⌊L/P⌋` elements on every
    /// residue plus one more on a cyclic window of `L mod P` residues,
    /// so the maximum over rows is the upper envelope of at most two
    /// such windows per row, swept in O(rows log rows + PEs). The two
    /// derivations are provably equal (the fold records every fragment
    /// of length ≥ 2 and the lift covers exactly the residues whose
    /// true maximum is 1), and the equivalence proptests in
    /// `tests/structure_equivalence.rs` pin it for every generator
    /// family.
    pub fn synthesize(s: &Structure, col_pes: &[usize], row_pes: &[usize]) -> Self {
        let rows = s.rows();
        let cols = s.cols();
        let nnz = s.nnz();

        let row_lens: Vec<u32> = match s {
            Structure::Runs(rr) => rr.lens().to_vec(),
            mesh => (0..rows).map(|r| mesh.row_len(r) as u32).collect(),
        };

        let mut col_counts = vec![0u32; cols];
        match s {
            Structure::Runs(rr) => {
                // Cyclic difference array over the ≤ 2 intervals per row.
                let mut diff = vec![0i64; cols + 1];
                for r in 0..rows {
                    for (a, b) in rr.row_intervals(r) {
                        if b > a {
                            diff[a] += 1;
                            diff[b] -= 1;
                        }
                    }
                }
                let mut acc = 0i64;
                for (c, d) in col_counts.iter_mut().zip(&diff) {
                    acc += d;
                    *c = acc as u32;
                }
            }
            // Stencils are structurally symmetric: column c is hit by
            // exactly the neighbors of point c, i.e. row c's length.
            Structure::Mesh2d { .. } | Structure::Mesh3d { .. } => {
                col_counts.copy_from_slice(&row_lens);
            }
        }

        let mut tallies = make_tallies(col_pes, row_pes);

        if nnz > 0 {
            for t in tallies.iter_mut().filter(|t| t.row_side) {
                match s {
                    Structure::Runs(rr) => frag_synth_runs(rr, t.pes, &mut t.row_frag_max),
                    mesh => frag_synth_mesh(mesh, rows, t.pes, &mut t.row_frag_max),
                }
            }
        }

        let row_summary = DistSummary::of(row_lens.iter().map(|&l| l as usize));
        let col_summary = DistSummary::of(col_counts.iter().map(|&c| c as usize));

        // Identical wrapping-counter folds to the build path. No
        // populated-residue lift is needed: the synthesized fragment
        // maxima above are already the true per-residue values.
        fold_residues(&mut tallies, &row_lens, &col_counts);

        MatrixProfile { rows, cols, nnz, row_lens, col_counts, row_summary, col_summary, tallies }
    }
}

/// Zeroed tallies for `col_pes ∪ row_pes` (zero and duplicate entries
/// ignored), with the row side enabled for counts in `row_pes`.
fn make_tallies(col_pes: &[usize], row_pes: &[usize]) -> Vec<PeResidueTally> {
    let mut pes_set: Vec<usize> =
        col_pes.iter().chain(row_pes).copied().filter(|&p| p > 0).collect();
    pes_set.sort_unstable();
    pes_set.dedup();
    pes_set
        .iter()
        .map(|&pes| {
            let row_side = row_pes.contains(&pes);
            PeResidueTally {
                pes,
                row_side,
                row_len_sum: vec![0u64; pes],
                row_len_max: vec![0u32; pes],
                col_count_sum: vec![0u64; pes],
                row_frag_max: if row_side { vec![0u32; pes] } else { Vec::new() },
            }
        })
        .collect()
}

/// Column-scheduler aggregates and row-scheduler totals from the length
/// vectors alone: residues cycle 0..pes in index order, so the fold is
/// a `pes`-wide independent-output tally — see
/// [`simd::residue_len_fold`] / [`simd::residue_count_fold`] for the
/// lane kernels and their scalar wrapping-counter reference.
fn fold_residues(tallies: &mut [PeResidueTally], row_lens: &[u32], col_counts: &[u32]) {
    for t in tallies {
        simd::residue_len_fold(t.pes, row_lens, &mut t.row_len_sum, &mut t.row_len_max);
        simd::residue_count_fold(t.pes, col_counts, &mut t.col_count_sum);
    }
}

/// True per-residue fragment maxima for a run structure: the upper
/// envelope over rows of `⌊L_i/P⌋ + [p ∈ W_i1] + [p ∈ W_i2]`, where the
/// `W` are the residue windows of the row's ≤ 2 column intervals.
fn frag_synth_runs(rr: &RowRuns, pes: usize, out: &mut [u32]) {
    let mut base = 0u64;
    // `arcs1` carries each row's floor value over the union of its
    // windows (+1 layer); `arcs2` carries it over their intersection
    // (+2 layer). A max-sweep tolerates overlapping arcs from one row,
    // so the union needs no explicit arc arithmetic.
    let mut arcs1: Vec<(usize, usize, u64)> = Vec::new();
    let mut arcs2: Vec<(usize, usize, u64)> = Vec::new();
    for r in 0..rr.rows() {
        let [i0, i1] = rr.row_intervals(r);
        let (l0, l1) = (i0.1 - i0.0, i1.1 - i1.0);
        if l0 + l1 == 0 {
            continue;
        }
        let q = (l0 / pes + l1 / pes) as u64;
        if q > base {
            base = q;
        }
        let w0 = (i0.0 % pes, l0 % pes);
        let w1 = (i1.0 % pes, l1 % pes);
        for &(ws, wl) in &[w0, w1] {
            if wl > 0 {
                arcs1.push((ws, wl, q));
            }
        }
        if w0.1 > 0 && w1.1 > 0 {
            cyclic_intersect(w0, w1, pes, |s, l| arcs2.push((s, l, q)));
        }
    }
    let g1 = arc_max(pes, &arcs1);
    let g2 = arc_max(pes, &arcs2);
    for p in 0..pes {
        let mut f = base;
        if let Some(v) = g1[p] {
            f = f.max(v + 1);
        }
        if let Some(v) = g2[p] {
            f = f.max(v + 2);
        }
        out[p] = f as u32;
    }
}

/// Intersection of two cyclic residue windows (`len < pes`), emitted as
/// up to two arcs via the unrolled line `[0, 2·pes)`.
fn cyclic_intersect(
    w1: (usize, usize),
    w2: (usize, usize),
    pes: usize,
    mut push: impl FnMut(usize, usize),
) {
    let (a1, b1) = (w1.0 as i64, (w1.0 + w1.1) as i64);
    let (a2, b2) = (w2.0 as i64, (w2.0 + w2.1) as i64);
    let p = pes as i64;
    for k in [-1i64, 0, 1] {
        let lo = a1.max(a2 + k * p);
        let hi = b1.min(b2 + k * p);
        if hi > lo {
            push((lo % p) as usize, (hi - lo) as usize);
        }
    }
}

/// Per-residue maximum value over a set of cyclic arcs (`None` where no
/// arc covers the residue).
///
/// For `pes <= 128` (every design in the paper) residues fit in a
/// `u128` coverage mask, so arcs are painted in descending value order:
/// the first arc to touch a residue fixes its maximum, and the whole
/// pass stops as soon as every residue is covered. Values cluster
/// heavily (sparse rows all carry floor value 0), so the descending
/// order comes from tiny per-value buckets — or a single direct pass
/// when only one value occurs. Wider arrays fall back to the event
/// sweep in [`arc_max_sweep`].
fn arc_max(pes: usize, arcs: &[(usize, usize, u64)]) -> Vec<Option<u64>> {
    if pes > 128 {
        return arc_max_sweep(pes, arcs);
    }
    let mut out = vec![None; pes];
    if arcs.is_empty() {
        return out;
    }
    let ones = |x: usize| -> u128 {
        if x >= 128 {
            !0
        } else {
            (1u128 << x) - 1
        }
    };
    let mut uncovered = ones(pes);
    let paint = |s: usize, l: usize, v: u64, uncovered: &mut u128, out: &mut [Option<u64>]| {
        debug_assert!(s < pes && l > 0 && l < pes);
        let e = s + l;
        let m = if e <= pes { ones(l) << s } else { ones(e - pes) | (ones(pes - s) << s) };
        let mut new = m & *uncovered;
        *uncovered &= !new;
        while new != 0 {
            out[new.trailing_zeros() as usize] = Some(v);
            new &= new - 1;
        }
    };
    let vmax = arcs.iter().map(|a| a.2).max().unwrap();
    let vmin = arcs.iter().map(|a| a.2).min().unwrap();
    if vmin == vmax {
        // Single value: any cover order works.
        for &(s, l, _) in arcs {
            paint(s, l, vmax, &mut uncovered, &mut out);
            if uncovered == 0 {
                break;
            }
        }
        return out;
    }
    if vmax - vmin >= 4096 {
        // Pathologically wide value range: bucketing would allocate
        // more than the sweep costs.
        return arc_max_sweep(pes, arcs);
    }
    // Bucket by value (s and l fit in a byte since pes <= 128), then
    // paint high to low.
    let mut buckets: Vec<Vec<u16>> = vec![Vec::new(); (vmax - vmin) as usize + 1];
    for &(s, l, v) in arcs {
        buckets[(v - vmin) as usize].push((s as u16) | ((l as u16) << 8));
    }
    'outer: for (i, bucket) in buckets.iter().enumerate().rev() {
        let v = vmin + i as u64;
        for &packed in bucket {
            paint((packed & 0xff) as usize, (packed >> 8) as usize, v, &mut uncovered, &mut out);
            if uncovered == 0 {
                break 'outer;
            }
        }
    }
    out
}

/// Event-sweep fallback for [`arc_max`] on arrays wider than 128 PEs:
/// add/remove events per residue against a value multiset.
fn arc_max_sweep(pes: usize, arcs: &[(usize, usize, u64)]) -> Vec<Option<u64>> {
    let mut add: Vec<Vec<u64>> = vec![Vec::new(); pes];
    let mut rem: Vec<Vec<u64>> = vec![Vec::new(); pes];
    for &(s, l, v) in arcs {
        debug_assert!(s < pes && l > 0 && l < pes);
        let e = s + l;
        if e <= pes {
            add[s].push(v);
            if e < pes {
                rem[e].push(v);
            }
        } else {
            // Wrapping arc: tail [s, pes) stays active to the end of
            // the sweep; head [0, e-pes) is active from the start.
            add[s].push(v);
            add[0].push(v);
            rem[e - pes].push(v);
        }
    }
    let mut ms: BTreeMap<u64, usize> = BTreeMap::new();
    let mut out = vec![None; pes];
    for p in 0..pes {
        for &v in &rem[p] {
            match ms.get_mut(&v) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    ms.remove(&v);
                }
            }
        }
        for &v in &add[p] {
            *ms.entry(v).or_insert(0) += 1;
        }
        out[p] = ms.keys().next_back().copied();
    }
    out
}

/// True per-residue fragment maxima for a mesh stencil: each row holds
/// at most 7 columns, counted into a tiny residue histogram.
fn frag_synth_mesh(s: &Structure, rows: usize, pes: usize, out: &mut [u32]) {
    let mut buf = [0u32; 7];
    for r in 0..rows {
        let n = s.mesh_row_cols(r, &mut buf);
        let mut res = [(0usize, 0u32); 7];
        let mut m = 0usize;
        for &c in &buf[..n] {
            let p = c as usize % pes;
            if let Some(e) = res[..m].iter_mut().find(|e| e.0 == p) {
                e.1 += 1;
            } else {
                res[m] = (p, 1);
                m += 1;
            }
        }
        for &(p, f) in &res[..m] {
            if f > out[p] {
                out[p] = f;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CooMatrix};

    #[test]
    fn lengths_and_counts_match_csr() {
        let m = gen::power_law(128, 96, 5.0, 1.4, 3);
        let p = MatrixProfile::build(&m);
        assert!(p.describes(&m));
        assert_eq!(p.row_lens().len(), 128);
        assert_eq!(p.col_counts().len(), 96);
        for r in 0..m.rows() {
            assert_eq!(p.row_lens()[r] as usize, m.row_nnz(r));
        }
        let total: u64 = p.col_counts().iter().map(|&c| c as u64).sum();
        assert_eq!(total, m.nnz() as u64);
    }

    #[test]
    fn summaries_match_direct_computation() {
        let m = gen::imbalanced_rows(200, 300, 0.05, 120, 2, 9);
        let p = MatrixProfile::build(&m);
        let rs = DistSummary::of((0..m.rows()).map(|r| m.row_nnz(r)));
        assert_eq!(*p.row_summary(), rs);
        assert!(p.row_summary().imbalance() > 1.0);
        assert_eq!(p.col_summary().n, 300);
    }

    #[test]
    fn residue_tallies_agree_with_explicit_fold() {
        let m = gen::uniform_random(97, 131, 0.08, 5);
        let pes = 8usize;
        let p = MatrixProfile::build_with_pes(&m, &[pes, pes, 0]);
        assert_eq!(p.tally_pes().collect::<Vec<_>>(), vec![pes]);
        let t = p.tally(pes).expect("tally built");

        let mut len_sum = vec![0u64; pes];
        let mut len_max = vec![0u32; pes];
        for r in 0..m.rows() {
            len_sum[r % pes] += m.row_nnz(r) as u64;
            len_max[r % pes] = len_max[r % pes].max(m.row_nnz(r) as u32);
        }
        assert_eq!(t.row_len_sum, len_sum);
        assert_eq!(t.row_len_max, len_max);

        let mut count = vec![0u64; pes];
        let mut frag_max = vec![0u32; pes];
        for r in 0..m.rows() {
            let mut frag = vec![0u32; pes];
            for (c, _) in m.row(r).iter() {
                frag[c % pes] += 1;
                count[c % pes] += 1;
            }
            for pe in 0..pes {
                frag_max[pe] = frag_max[pe].max(frag[pe]);
            }
        }
        assert_eq!(t.col_count_sum, count);
        assert_eq!(t.row_frag_max, frag_max);
    }

    #[test]
    fn scheduler_split_gates_the_row_side() {
        let m = gen::uniform_random(64, 64, 0.1, 11);
        let p = MatrixProfile::build_with_scheduler_pes(&m, &[4, 6], &[6]);
        assert_eq!(p.tally_pes().collect::<Vec<_>>(), vec![4, 6]);
        let col_only = p.tally(4).unwrap();
        assert!(!col_only.has_row_side());
        assert!(col_only.row_frag_max.is_empty());
        assert!(col_only.row_len_sum.iter().sum::<u64>() > 0);
        let both = p.tally(6).unwrap();
        assert!(both.has_row_side());
        // The row-side aggregates match a full build.
        let full = MatrixProfile::build_with_pes(&m, &[6]);
        assert_eq!(both.row_frag_max, full.tally(6).unwrap().row_frag_max);
        assert_eq!(both.col_count_sum, full.tally(6).unwrap().col_count_sum);
    }

    #[test]
    fn empty_matrix_profiles_cleanly() {
        let m = CsrMatrix::zeros(16, 16);
        let p = MatrixProfile::build_with_pes(&m, &[4]);
        assert_eq!(p.nnz(), 0);
        assert_eq!(p.row_summary().mean, 0.0);
        assert_eq!(p.row_summary().imbalance(), 1.0);
        let t = p.tally(4).unwrap();
        assert!(t.row_len_sum.iter().all(|&s| s == 0));
        assert!(t.row_frag_max.iter().all(|&s| s == 0));

        let zero = CsrMatrix::zeros(0, 0);
        let pz = MatrixProfile::build(&zero);
        assert_eq!(pz.row_summary().n, 0);
    }

    #[test]
    fn synthesized_profile_is_bit_identical_to_built() {
        // Hand-picked structures exercising wraps, full rows, empties,
        // and both mesh stencils, across awkward PE counts.
        let structures = vec![
            Structure::runs(5, 13, vec![0, 11, 6, 0, 12], vec![3, 5, 13, 0, 2]),
            Structure::runs(1, 7, vec![5], vec![6]),
            Structure::empty(4, 9),
            Structure::runs(0, 0, vec![], vec![]),
            Structure::Mesh2d { nx: 4, ny: 3 },
            Structure::Mesh3d { nx: 3, ny: 2, nz: 2 },
        ];
        for s in structures {
            let m = s.materialize(17);
            for (col_pes, row_pes) in
                [(vec![4, 7], vec![7]), (vec![64, 96], vec![96]), (vec![3], vec![3, 5])]
            {
                let built = MatrixProfile::build_with_scheduler_pes(&m, &col_pes, &row_pes);
                let synth = MatrixProfile::synthesize(&s, &col_pes, &row_pes);
                assert_eq!(built, synth, "{s:?} col={col_pes:?} row={row_pes:?}");
                assert!(synth.describes_structure(&s));
            }
        }
    }

    #[test]
    fn single_row_fragments_split_by_residue() {
        // Row 0 holds columns 0..6; with 4 PEs the fragments are
        // {0,4}, {1,5}, {2}, {3} -> frag_max = [2, 2, 1, 1].
        let mut coo = CooMatrix::new(2, 8);
        for c in 0..6 {
            coo.push(0, c, 1.0).unwrap();
        }
        let m = coo.to_csr();
        let p = MatrixProfile::build_with_pes(&m, &[4]);
        let t = p.tally(4).unwrap();
        assert_eq!(t.row_frag_max, vec![2, 2, 1, 1]);
        assert_eq!(t.col_count_sum, vec![2, 2, 1, 1]);
        assert_eq!(t.row_len_sum, vec![6, 0, 0, 0]);
        assert_eq!(t.row_len_max, vec![6, 0, 0, 0]);
    }
}
