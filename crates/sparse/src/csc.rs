use crate::{CooMatrix, CsrMatrix, Result, SparseError};

/// A sparse matrix in Compressed Sparse Column format.
///
/// The inner-product dataflow consumes matrix B in CSC to avoid irregular
/// column gathers (§2.1), and the feature extractor derives per-column
/// statistics of both operands from this layout (§3.1).
///
/// Invariants mirror [`CsrMatrix`], transposed: `col_ptr.len() == cols +
/// 1`, pointers non-decreasing and ending at `nnz`, row indices strictly
/// increasing within a column and `< rows`.
///
/// # Example
///
/// ```
/// use misam_sparse::CscMatrix;
///
/// let m = CscMatrix::from_raw_parts(3, 2, vec![0, 2, 3], vec![0, 2, 1],
///                                   vec![1.0, 2.0, 3.0])?;
/// assert_eq!(m.col(0).len(), 2);
/// assert_eq!(m.get(1, 1), Some(3.0));
/// # Ok::<(), misam_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix from its constituent arrays, validating every
    /// invariant listed on the type.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedPointers`] or
    /// [`SparseError::MalformedIndices`] describing the first violated
    /// invariant.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::MalformedPointers(format!(
                "col_ptr has length {} but cols + 1 = {}",
                col_ptr.len(),
                cols + 1
            )));
        }
        if col_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers("col_ptr[0] must be 0".into()));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::MalformedIndices(format!(
                "row_idx length {} differs from values length {}",
                row_idx.len(),
                values.len()
            )));
        }
        if *col_ptr.last().expect("non-empty by construction") != values.len() {
            return Err(SparseError::MalformedPointers(format!(
                "col_ptr ends at {} but there are {} values",
                col_ptr.last().unwrap(),
                values.len()
            )));
        }
        for c in 0..cols {
            let (lo, hi) = (col_ptr[c], col_ptr[c + 1]);
            if lo > hi {
                return Err(SparseError::MalformedPointers(format!(
                    "col_ptr decreases at column {c}"
                )));
            }
            let mut prev: Option<u32> = None;
            for &r in &row_idx[lo..hi] {
                if r as usize >= rows {
                    return Err(SparseError::MalformedIndices(format!(
                        "row {r} in column {c} exceeds rows {rows}"
                    )));
                }
                if let Some(p) = prev {
                    if r <= p {
                        return Err(SparseError::MalformedIndices(format!(
                            "rows not strictly increasing in column {c}"
                        )));
                    }
                }
                prev = Some(r);
            }
        }
        Ok(CscMatrix { rows, cols, col_ptr, row_idx, values })
    }

    /// Creates an empty matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CscMatrix {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored. Returns 0 for an empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The column pointer array (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array, parallel to [`CscMatrix::values`].
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Returns the `(row, value)` pairs of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> ColView<'_> {
        let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
        ColView { rows: &self.row_idx[lo..hi], values: &self.values[lo..hi] }
    }

    /// Number of nonzeros in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Looks up a single entry. O(log nnz(col)).
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        let (lo, hi) = (self.col_ptr[col], self.col_ptr[col + 1]);
        let seg = &self.row_idx[lo..hi];
        seg.binary_search(&(row as u32)).ok().map(|i| self.values[lo + i])
    }

    /// Iterates all `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
            (lo..hi).map(move |i| (self.row_idx[i] as usize, c, self.values[i]))
        })
    }

    /// Converts to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        CooMatrix::from_triplets(self.rows, self.cols, self.iter())
            .expect("CSC entries are in bounds")
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_coo().to_csr()
    }
}

/// Borrowed view of a single CSC column: parallel row/value slices.
#[derive(Debug, Clone, Copy)]
pub struct ColView<'a> {
    rows: &'a [u32],
    values: &'a [f32],
}

impl<'a> ColView<'a> {
    /// Number of nonzeros in the column.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the column holds no nonzeros.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row indices of the column.
    pub fn rows(&self) -> &'a [u32] {
        self.rows
    }

    /// The values of the column.
    pub fn values(&self) -> &'a [f32] {
        self.values
    }

    /// Iterates `(row, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f32)> + 'a {
        self.rows.iter().zip(self.values.iter()).map(|(&r, &v)| (r as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 ]
        // [ 0 3 ]
        // [ 2 0 ]
        CscMatrix::from_raw_parts(3, 2, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_pointers() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(2, 2, vec![1, 1, 1], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn validation_rejects_unsorted_rows() {
        let err = CscMatrix::from_raw_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(err, Err(SparseError::MalformedIndices(_))));
    }

    #[test]
    fn get_and_col_views() {
        let m = sample();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(2, 0), Some(2.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.col(1).iter().collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(m.col_nnz(0), 2);
    }

    #[test]
    fn csr_roundtrip() {
        let m = sample();
        let back = m.to_csr().to_csc();
        assert_eq!(back, m);
    }

    #[test]
    fn iter_is_column_major() {
        let m = sample();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 1.0), (2, 0, 2.0), (1, 1, 3.0)]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CscMatrix::zeros(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.col_ptr().len(), 6);
    }
}
