//! Software reference kernels for the three SpGEMM dataflows of §2.1.
//!
//! These functions are the functional ground truth of the reproduction:
//! every hardware design simulated by `misam-sim` and every baseline model
//! computes the same product these kernels produce, so tests cross-check
//! all three dataflows against each other and against dense multiplication.
//!
//! - [`spgemm_inner`] — inner product: row of A (CSR) x column of B (CSC),
//!   index-matched intersection per output element.
//! - [`spgemm_outer`] — outer product: column of A (CSC) x row of B (CSR),
//!   partial-product matrices merged into C.
//! - [`spgemm_rowwise`] — row-wise (Gustavson): each nonzero `a[i,k]`
//!   scales row `k` of B into row `i` of C. This is the dataflow Misam's
//!   FPGA designs implement.
//! - [`spmm`] — sparse x dense, the SpMM kernel of Designs 1–3.

use crate::{CooMatrix, CscMatrix, CsrMatrix, Result, SparseError};

fn check_dims(left_cols: usize, right_rows: usize) -> Result<()> {
    if left_cols != right_rows {
        return Err(SparseError::DimensionMismatch { left_cols, right_rows });
    }
    Ok(())
}

/// Multiplies `A x B` with the row-wise (Gustavson) dataflow.
///
/// Accumulates into a dense scratch row with a touched-column list, the
/// classic sparse accumulator ("SPA"), giving `O(flops + rows)` work.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`; use [`try_spgemm_rowwise`] for a
/// fallible variant.
pub fn spgemm_rowwise(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    try_spgemm_rowwise(a, b).expect("inner dimensions must agree")
}

/// Fallible variant of [`spgemm_rowwise`].
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn try_spgemm_rowwise(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if crate::simd::VECTORIZED {
        try_spgemm_rowwise_with(a, b, &mut SpaWorkspace::new())
    } else {
        try_spgemm_rowwise_scalar(a, b)
    }
}

/// Scalar reference for [`try_spgemm_rowwise`]: the original bool-array
/// SPA, preserved verbatim. Always compiled; the `force-scalar` build
/// and the kernel bench dispatch here. Bit-identical output.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
#[doc(hidden)]
pub fn try_spgemm_rowwise_scalar(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_dims(a.cols(), b.rows())?;
    let n = b.cols();
    let mut acc = vec![0f32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut occupied = vec![false; n];

    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    row_ptr.push(0);

    for i in 0..a.rows() {
        for (k, a_val) in a.row(i).iter() {
            for (j, b_val) in b.row(k).iter() {
                if !occupied[j] {
                    occupied[j] = true;
                    touched.push(j as u32);
                }
                acc[j] += a_val * b_val;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = acc[j as usize];
            if v != 0.0 {
                col_idx.push(j);
                values.push(v);
            }
            acc[j as usize] = 0.0;
            occupied[j as usize] = false;
        }
        touched.clear();
        row_ptr.push(values.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), b.cols(), row_ptr, col_idx, values)
}

/// Reusable scratch for the row-wise SPA: the dense accumulator row, a
/// u64-bitset occupancy map (`n/64` words instead of `n` bools, so the
/// whole map stays cache-resident alongside the accumulator), and the
/// touched-column list. Callers looping over many products allocate one
/// workspace and pass it to [`try_spgemm_rowwise_with`]; the one-shot
/// entry points build a fresh one per call.
#[derive(Debug, Default)]
pub struct SpaWorkspace {
    acc: Vec<f32>,
    occupied: Vec<u64>,
    touched: Vec<u32>,
}

impl SpaWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every buffer to the cleared state for `n` output columns.
    fn reset(&mut self, n: usize) {
        self.acc.clear();
        self.acc.resize(n, 0.0);
        self.occupied.clear();
        self.occupied.resize(n.div_ceil(64), 0);
        // One slot of slack: the branchless append stores before the
        // cursor advance, so a revisit with all `n` columns already
        // touched still writes (and discards) at index `n`.
        self.touched.clear();
        self.touched.resize(n + 1, 0);
    }
}

/// [`try_spgemm_rowwise`] with a caller-owned [`SpaWorkspace`], so
/// repeated products of the same width reuse the SPA buffers instead of
/// reallocating per call. The accumulation loop runs a branchless
/// touched-list append (unconditional store, cursor advanced by the
/// first-touch bit) over the bitset occupancy map, and the per-row sort
/// is skipped when the touched columns already came out ascending — the
/// common case when A's rows have few elements. Output is bit-identical
/// to [`try_spgemm_rowwise_scalar`]: per-element accumulation order is
/// unchanged, and sorting only reorders the emit scan.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn try_spgemm_rowwise_with(
    a: &CsrMatrix,
    b: &CsrMatrix,
    ws: &mut SpaWorkspace,
) -> Result<CsrMatrix> {
    if b.cols() >= SPA_WIDE_COLS {
        return try_spgemm_rowwise_tiled(a, b, ws, SPA_TILE_COLS);
    }
    check_dims(a.cols(), b.rows())?;
    let n = b.cols();
    ws.reset(n);
    let acc = &mut ws.acc[..];
    let occupied = &mut ws.occupied[..];
    let touched = &mut ws.touched[..];

    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    row_ptr.push(0);

    for i in 0..a.rows() {
        let mut nt = 0usize;
        for (k, a_val) in a.row(i).iter() {
            for (j, b_val) in b.row(k).iter() {
                let word = occupied[j >> 6];
                let bit = 1u64 << (j & 63);
                touched[nt] = j as u32;
                nt += usize::from(word & bit == 0);
                occupied[j >> 6] = word | bit;
                acc[j] += a_val * b_val;
            }
        }
        let row_touched = &mut touched[..nt];
        if !row_touched.is_sorted() {
            row_touched.sort_unstable();
        }
        for &j in row_touched.iter() {
            let v = acc[j as usize];
            if v != 0.0 {
                col_idx.push(j);
                values.push(v);
            }
            acc[j as usize] = 0.0;
            occupied[(j >> 6) as usize] &= !(1u64 << (j & 63));
        }
        row_ptr.push(values.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), b.cols(), row_ptr, col_idx, values)
}

/// Output width at which the SPA stops being cache-resident and
/// [`try_spgemm_rowwise_with`] switches to the column-tiled walk.
pub const SPA_WIDE_COLS: usize = 1 << 14;

/// Column-tile width of the tiled SPA: a 4096-column tile keeps the
/// f32 accumulator (16 KiB) plus its occupancy bitset (512 B) inside L1
/// no matter how wide B is.
pub const SPA_TILE_COLS: usize = 1 << 12;

/// Column-tiled SPA for wide B: output columns are processed in tiles
/// of `tile_cols`, so the accumulator and bitset stay cache-resident
/// instead of thrashing across a `b.cols()`-wide scratch row. Each
/// A-row element keeps a cursor into its B row (both sides walk columns
/// ascending), so the B traffic per output row is the same one pass the
/// untiled SPA makes.
///
/// Output is bit-identical to [`try_spgemm_rowwise_scalar`]: for any
/// output column `j` the accumulation still happens in A-row element
/// order (the tile loop only partitions *which* columns a pass
/// touches), and tiles emit in ascending column order exactly like the
/// sorted emit scan.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
///
/// # Panics
///
/// Panics if `tile_cols == 0`.
pub fn try_spgemm_rowwise_tiled(
    a: &CsrMatrix,
    b: &CsrMatrix,
    ws: &mut SpaWorkspace,
    tile_cols: usize,
) -> Result<CsrMatrix> {
    assert!(tile_cols > 0, "tile width must be positive");
    check_dims(a.cols(), b.rows())?;
    let n = b.cols();
    let t = tile_cols.min(n.max(1));
    ws.reset(t);
    let acc = &mut ws.acc[..];
    let occupied = &mut ws.occupied[..];
    let touched = &mut ws.touched[..];

    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    row_ptr.push(0);

    // One cursor per A-row element, advanced monotonically through its
    // B row as the tiles sweep left to right.
    let mut cursors: Vec<usize> = Vec::new();
    for i in 0..a.rows() {
        let arow = a.row(i);
        let (ks, vs) = (arow.cols(), arow.values());
        cursors.clear();
        cursors.resize(ks.len(), 0);
        let mut tile_lo = 0usize;
        while tile_lo < n {
            let tile_hi = (tile_lo + t).min(n);
            let mut nt = 0usize;
            for (e, (&k, &a_val)) in ks.iter().zip(vs).enumerate() {
                let brow = b.row(k as usize);
                let (bc, bv) = (brow.cols(), brow.values());
                let mut q = cursors[e];
                while q < bc.len() && (bc[q] as usize) < tile_hi {
                    let j = bc[q] as usize - tile_lo;
                    let word = occupied[j >> 6];
                    let bit = 1u64 << (j & 63);
                    touched[nt] = j as u32;
                    nt += usize::from(word & bit == 0);
                    occupied[j >> 6] = word | bit;
                    acc[j] += a_val * bv[q];
                    q += 1;
                }
                cursors[e] = q;
            }
            let tile_touched = &mut touched[..nt];
            if !tile_touched.is_sorted() {
                tile_touched.sort_unstable();
            }
            for &j in tile_touched.iter() {
                let v = acc[j as usize];
                if v != 0.0 {
                    col_idx.push(j + tile_lo as u32);
                    values.push(v);
                }
                acc[j as usize] = 0.0;
                occupied[(j >> 6) as usize] &= !(1u64 << (j & 63));
            }
            tile_lo = tile_hi;
        }
        row_ptr.push(values.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), b.cols(), row_ptr, col_idx, values)
}

/// Multiplies `A x B` with the inner-product dataflow: A in CSR, B in CSC,
/// one sorted-list intersection per candidate output element.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`; use [`try_spgemm_inner`] for a
/// fallible variant.
pub fn spgemm_inner(a: &CsrMatrix, b: &CscMatrix) -> CsrMatrix {
    try_spgemm_inner(a, b).expect("inner dimensions must agree")
}

/// Fallible variant of [`spgemm_inner`].
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn try_spgemm_inner(a: &CsrMatrix, b: &CscMatrix) -> Result<CsrMatrix> {
    check_dims(a.cols(), b.rows())?;
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    row_ptr.push(0);

    for i in 0..a.rows() {
        let arow = a.row(i);
        if arow.is_empty() {
            row_ptr.push(values.len());
            continue;
        }
        for j in 0..b.cols() {
            let bcol = b.col(j);
            if bcol.is_empty() {
                continue;
            }
            // Two-pointer intersection of sorted index lists.
            let (ac, av) = (arow.cols(), arow.values());
            let (br, bv) = (bcol.rows(), bcol.values());
            let mut p = 0;
            let mut q = 0;
            let mut sum = 0f32;
            let mut hit = false;
            while p < ac.len() && q < br.len() {
                match ac[p].cmp(&br[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        sum += av[p] * bv[q];
                        hit = true;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if hit && sum != 0.0 {
                col_idx.push(j as u32);
                values.push(sum);
            }
        }
        row_ptr.push(values.len());
    }
    CsrMatrix::from_raw_parts(a.rows(), b.cols(), row_ptr, col_idx, values)
}

/// Multiplies `A x B` with the outer-product dataflow: column k of A paired
/// with row k of B produces a rank-1 partial matrix; partials are merged
/// through a COO accumulation, mirroring the decoupled merge phase of
/// OuterSPACE/SpArch.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`; use [`try_spgemm_outer`] for a
/// fallible variant.
pub fn spgemm_outer(a: &CscMatrix, b: &CsrMatrix) -> CsrMatrix {
    try_spgemm_outer(a, b).expect("inner dimensions must agree")
}

/// Fallible variant of [`spgemm_outer`].
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b.rows()`.
pub fn try_spgemm_outer(a: &CscMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    check_dims(a.cols(), b.rows())?;
    let mut partial = CooMatrix::new(a.rows(), b.cols());
    for k in 0..a.cols() {
        let acol = a.col(k);
        if acol.is_empty() || b.row(k).is_empty() {
            continue;
        }
        for (i, a_val) in acol.iter() {
            for (j, b_val) in b.row(k).iter() {
                partial
                    .push(i, j, a_val * b_val)
                    .expect("outer-product indices bounded by operand shapes");
            }
        }
    }
    let mut csr = partial.to_csr();
    // Cancellations leave explicit zeros after merge; drop them so all
    // three dataflows agree structurally.
    let mut coo = csr.to_coo();
    coo.prune_zeros();
    csr = coo.to_csr();
    Ok(csr)
}

/// Multiplies sparse `A` by dense row-major `B` (`b_rows x b_cols`),
/// producing a dense row-major `a.rows() x b_cols` buffer. This is the
/// SpMM kernel executed by Designs 1–3.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b_rows`.
///
/// # Panics
///
/// Panics if `b.len() != b_rows * b_cols`.
pub fn spmm(a: &CsrMatrix, b: &[f32], b_rows: usize, b_cols: usize) -> Result<Vec<f32>> {
    if crate::simd::VECTORIZED {
        spmm_lanes(a, b, b_rows, b_cols)
    } else {
        spmm_scalar(a, b, b_rows, b_cols)
    }
}

/// Scalar reference for [`spmm`]: one axpy pass over the output row per
/// A element, preserved verbatim. Always compiled; the `force-scalar`
/// build and the kernel bench dispatch here. Bit-identical output.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b_rows`.
///
/// # Panics
///
/// Panics if `b.len() != b_rows * b_cols`.
#[doc(hidden)]
pub fn spmm_scalar(a: &CsrMatrix, b: &[f32], b_rows: usize, b_cols: usize) -> Result<Vec<f32>> {
    assert_eq!(b.len(), b_rows * b_cols, "dense B must be b_rows * b_cols");
    check_dims(a.cols(), b_rows)?;
    let mut c = vec![0f32; a.rows() * b_cols];
    for i in 0..a.rows() {
        let out = &mut c[i * b_cols..(i + 1) * b_cols];
        for (k, a_val) in a.row(i).iter() {
            let brow = &b[k * b_cols..(k + 1) * b_cols];
            for (o, &bv) in out.iter_mut().zip(brow.iter()) {
                *o += a_val * bv;
            }
        }
    }
    Ok(c)
}

/// Lane form of [`spmm`]: two A elements are folded per pass over the
/// output row, halving the `out` load/store traffic the one-element
/// axpy pays per element. Per output column `j` the operation sequence
/// is exactly that of two consecutive scalar passes —
/// `t = out[j] + a0*b0[j]; out[j] = t + a1*b1[j]` — so no float
/// accumulation is reassociated and the result is bit-identical to
/// [`spmm_scalar`]. The column loop itself carries no cross-iteration
/// dependency, which is what the autovectorizer lowers to f32 lanes.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != b_rows`.
///
/// # Panics
///
/// Panics if `b.len() != b_rows * b_cols`.
#[doc(hidden)]
pub fn spmm_lanes(a: &CsrMatrix, b: &[f32], b_rows: usize, b_cols: usize) -> Result<Vec<f32>> {
    assert_eq!(b.len(), b_rows * b_cols, "dense B must be b_rows * b_cols");
    check_dims(a.cols(), b_rows)?;
    let mut c = vec![0f32; a.rows() * b_cols];
    for i in 0..a.rows() {
        let out = &mut c[i * b_cols..(i + 1) * b_cols];
        let arow = a.row(i);
        let (ks, vs) = (arow.cols(), arow.values());
        let mut p = 0usize;
        while p + 2 <= ks.len() {
            let b0 = &b[ks[p] as usize * b_cols..][..b_cols];
            let b1 = &b[ks[p + 1] as usize * b_cols..][..b_cols];
            let (a0, a1) = (vs[p], vs[p + 1]);
            for j in 0..b_cols {
                out[j] = (out[j] + a0 * b0[j]) + a1 * b1[j];
            }
            p += 2;
        }
        if p < ks.len() {
            let brow = &b[ks[p] as usize * b_cols..][..b_cols];
            let a0 = vs[p];
            for (o, &bv) in out.iter_mut().zip(brow.iter()) {
                *o += a0 * bv;
            }
        }
    }
    Ok(c)
}

/// Multiplies sparse `A` by dense vector `x`, producing a dense vector of
/// length `a.rows()`. SpMV is the inner loop of the iterative solvers and
/// graph kernels that populate the paper's Figure 1 application map.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `a.cols() != x.len()`.
pub fn spmv(a: &CsrMatrix, x: &[f32]) -> Result<Vec<f32>> {
    check_dims(a.cols(), x.len())?;
    let mut y = vec![0f32; a.rows()];
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0f32;
        for (k, v) in a.row(i).iter() {
            acc += v * x[k];
        }
        *out = acc;
    }
    Ok(y)
}

/// Dense reference GEMM over row-major buffers, used only to validate the
/// sparse kernels in tests.
pub fn dense_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j];
            }
        }
    }
    c
}

/// Number of useful scalar multiplications in `A x B` — the paper's unit of
/// effectual work. Computed as `sum_k nnz(A[:,k]) * nnz(B[k,:])` without
/// forming the product.
pub fn spgemm_flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    spgemm_flops_ref(a.as_ref(), b.as_ref())
}

/// Storage-generic variant of [`spgemm_flops`] over borrowed CSR views.
pub fn spgemm_flops_ref(a: crate::CsrRef<'_>, b: crate::CsrRef<'_>) -> u64 {
    let mut a_col_counts = vec![0u64; a.cols()];
    for &c in a.col_idx() {
        a_col_counts[c as usize] += 1;
    }
    (0..b.rows().min(a.cols())).map(|k| a_col_counts[k] * b.row_nnz(k) as u64).sum()
}

/// Exact number of nonzeros in the product `A x B` (symbolic phase only).
pub fn spgemm_output_nnz(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let n = b.cols();
    let mut mark = vec![usize::MAX; n];
    let mut total = 0u64;
    for i in 0..a.rows() {
        for (k, _) in a.row(i).iter() {
            for (j, _) in b.row(k).iter() {
                if mark[j] != i {
                    mark[j] = i;
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn small_pair() -> (CsrMatrix, CsrMatrix) {
        let a = CsrMatrix::from_dense(
            3,
            4,
            &[1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4.0],
        );
        let b = CsrMatrix::from_dense(4, 2, &[1.0, 2.0, 0.0, 1.0, 3.0, 0.0, 0.0, 5.0]);
        (a, b)
    }

    #[test]
    fn rowwise_matches_dense() {
        let (a, b) = small_pair();
        let c = spgemm_rowwise(&a, &b);
        let expect = dense_gemm(&a.to_dense(), &b.to_dense(), 3, 4, 2);
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn inner_matches_dense() {
        let (a, b) = small_pair();
        let c = spgemm_inner(&a, &b.to_csc());
        let expect = dense_gemm(&a.to_dense(), &b.to_dense(), 3, 4, 2);
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn outer_matches_dense() {
        let (a, b) = small_pair();
        let c = spgemm_outer(&a.to_csc(), &b);
        let expect = dense_gemm(&a.to_dense(), &b.to_dense(), 3, 4, 2);
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn three_dataflows_agree_on_random_input() {
        let a = gen::uniform_random(40, 32, 0.12, 7);
        let b = gen::uniform_random(32, 24, 0.15, 8);
        let rw = spgemm_rowwise(&a, &b);
        let ip = spgemm_inner(&a, &b.to_csc());
        let op = spgemm_outer(&a.to_csc(), &b);
        let (d_rw, d_ip, d_op) = (rw.to_dense(), ip.to_dense(), op.to_dense());
        for idx in 0..d_rw.len() {
            assert!((d_rw[idx] - d_ip[idx]).abs() < 1e-4, "rowwise vs inner at {idx}");
            assert!((d_rw[idx] - d_op[idx]).abs() < 1e-4, "rowwise vs outer at {idx}");
        }
    }

    #[test]
    fn spmm_matches_rowwise_with_dense_b() {
        let a = gen::uniform_random(16, 12, 0.3, 3);
        let b_dense: Vec<f32> = (0..12 * 5).map(|i| (i % 7) as f32 - 3.0).collect();
        let c = spmm(&a, &b_dense, 12, 5).unwrap();
        let b_sparse = CsrMatrix::from_dense(12, 5, &b_dense);
        let expect = spgemm_rowwise(&a, &b_sparse).to_dense();
        for idx in 0..c.len() {
            assert!((c[idx] - expect[idx]).abs() < 1e-4);
        }
    }

    #[test]
    fn spmv_matches_spmm_with_one_column() {
        let a = gen::uniform_random(40, 30, 0.2, 21);
        let x: Vec<f32> = (0..30).map(|i| (i % 5) as f32 - 2.0).collect();
        let y = spmv(&a, &x).unwrap();
        let via_spmm = spmm(&a, &x, 30, 1).unwrap();
        for (a_val, b_val) in y.iter().zip(&via_spmm) {
            assert!((a_val - b_val).abs() < 1e-5);
        }
        assert!(spmv(&a, &x[..29]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(4, 2);
        assert!(matches!(
            try_spgemm_rowwise(&a, &b),
            Err(SparseError::DimensionMismatch { left_cols: 3, right_rows: 4 })
        ));
        assert!(try_spgemm_inner(&a, &b.to_csc()).is_err());
        assert!(try_spgemm_outer(&a.to_csc(), &b).is_err());
    }

    #[test]
    fn flops_counts_effectual_multiplications() {
        let (a, b) = small_pair();
        // Column counts of A: col0=1, col1=1, col2=1, col3=1.
        // Row nnz of B: r0=2, r1=1, r2=1, r3=1.
        assert_eq!(spgemm_flops(&a, &b), 2 + 1 + 1 + 1);
    }

    #[test]
    fn output_nnz_matches_actual_product() {
        let a = gen::uniform_random(30, 30, 0.1, 11);
        let b = gen::uniform_random(30, 30, 0.1, 12);
        let c = spgemm_rowwise(&a, &b);
        // spgemm_output_nnz counts structural nonzeros; numeric
        // cancellation can only make the actual count smaller.
        assert!(spgemm_output_nnz(&a, &b) >= c.nnz() as u64);
    }

    /// The workspace SPA (bitset occupancy, branchless touched append,
    /// skip-sort) must be bit-identical to the scalar bool-array SPA,
    /// including cancellation-induced explicit-zero drops, and must
    /// behave identically when one workspace is reused across products
    /// of different widths.
    #[test]
    fn workspace_spa_is_bit_identical_and_reusable() {
        let pairs = [
            (gen::uniform_random(40, 32, 0.12, 7), gen::uniform_random(32, 24, 0.15, 8)),
            (gen::power_law(50, 33, 4.0, 1.3, 9), gen::uniform_random(33, 65, 0.2, 10)),
            (CsrMatrix::zeros(5, 4), CsrMatrix::zeros(4, 3)),
        ];
        let mut ws = SpaWorkspace::new();
        for (a, b) in &pairs {
            let reference = try_spgemm_rowwise_scalar(a, b).unwrap();
            let with_ws = try_spgemm_rowwise_with(a, b, &mut ws).unwrap();
            assert_eq!(reference.row_ptr(), with_ws.row_ptr());
            assert_eq!(reference.col_idx(), with_ws.col_idx());
            let (rv, wv) = (reference.values(), with_ws.values());
            assert_eq!(rv.len(), wv.len());
            assert!(rv.iter().zip(wv).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    /// The two-element register-blocked SpMM must be bit-identical to
    /// the one-element axpy reference, across odd/even row lengths and
    /// empty rows.
    #[test]
    fn spmm_lanes_is_bit_identical_to_scalar() {
        for (rows, cols, bc, density, seed) in
            [(16, 12, 5, 0.3, 3), (33, 17, 1, 0.5, 4), (7, 9, 13, 0.05, 5)]
        {
            let a = gen::uniform_random(rows, cols, density, seed);
            let b_dense: Vec<f32> = (0..cols * bc).map(|i| (i % 7) as f32 - 3.0).collect();
            let s = spmm_scalar(&a, &b_dense, cols, bc).unwrap();
            let l = spmm_lanes(&a, &b_dense, cols, bc).unwrap();
            assert_eq!(s.len(), l.len());
            assert!(s.iter().zip(&l).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn empty_operands_produce_empty_product() {
        let a = CsrMatrix::zeros(5, 4);
        let b = CsrMatrix::zeros(4, 3);
        assert_eq!(spgemm_rowwise(&a, &b).nnz(), 0);
        assert_eq!(spgemm_inner(&a, &b.to_csc()).nnz(), 0);
        assert_eq!(spgemm_outer(&a.to_csc(), &b).nnz(), 0);
        assert_eq!(spgemm_flops(&a, &b), 0);
    }
}
