use std::fmt;

/// Errors produced when constructing, converting or multiplying sparse
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// A coordinate was outside the declared matrix bounds.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// Inner dimensions of a multiplication did not agree.
    DimensionMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A CSR/CSC pointer array was malformed (wrong length, not
    /// monotonically non-decreasing, or final entry disagreeing with the
    /// number of stored values).
    MalformedPointers(String),
    /// Column (CSR) or row (CSC) indices within a segment were not strictly
    /// increasing, or exceeded the matrix bounds.
    MalformedIndices(String),
    /// A Matrix Market stream could not be parsed.
    Parse(String),
    /// An I/O failure while reading or writing a matrix file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, rows, cols } => write!(
                f,
                "entry ({row}, {col}) is outside a {rows}x{cols} matrix"
            ),
            SparseError::DimensionMismatch { left_cols, right_rows } => write!(
                f,
                "inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            SparseError::MalformedPointers(msg) => write!(f, "malformed pointer array: {msg}"),
            SparseError::MalformedIndices(msg) => write!(f, "malformed index array: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = SparseError::DimensionMismatch { left_cols: 3, right_rows: 4 };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('4'));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: SparseError = io.into();
        assert!(matches!(err, SparseError::Io(_)));
    }
}
