//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! Supports the subset of the format the SuiteSparse collection uses:
//! `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! Pattern entries read as value `1.0`; symmetric files are expanded to
//! their full (general) form on load.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{CooMatrix, CsrMatrix, Result, SparseError};

/// Parses a Matrix Market stream into a CSR matrix.
///
/// A mutable reference is a valid `Read`, so callers can pass `&mut file`
/// to keep using the file afterwards.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed headers or entries and
/// [`SparseError::Io`] for stream failures.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();

    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::Parse("empty stream".into())),
        }
    };
    let header = header.trim().to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header line: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "unsupported storage '{}', only coordinate is supported",
            fields[2]
        )));
    }
    let value_type = fields[3];
    if !matches!(value_type, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!("unsupported value type '{value_type}'")));
    }
    let symmetry = fields.get(4).copied().unwrap_or("general");
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(SparseError::Parse(format!("unsupported symmetry '{symmetry}'")));
    }

    // Size line: first non-comment line.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim().to_string();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break t;
            }
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| SparseError::Parse(format!("bad size token '{t}'"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("size line needs 3 fields: {size_line}")));
    }
    let (rows, cols, declared_nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::new(rows, cols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("truncated entry: {t}")))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad row in entry: {t}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("truncated entry: {t}")))?
            .parse()
            .map_err(|_| SparseError::Parse(format!("bad col in entry: {t}")))?;
        let v: f32 = if value_type == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| SparseError::Parse(format!("missing value in entry: {t}")))?
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad value in entry: {t}")))?
        };
        if r == 0 || c == 0 {
            return Err(SparseError::Parse("matrix market indices are 1-based".into()));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == "symmetric" && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse(format!(
            "header declares {declared_nnz} entries but stream holds {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Reads a `.mtx` file from disk.
///
/// # Errors
///
/// Propagates parse and I/O failures as [`SparseError`].
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Writes a matrix as `matrix coordinate real general`.
///
/// A mutable reference is a valid `Write`, so callers can pass
/// `&mut buffer`.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(mut writer: W, m: &CsrMatrix) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by misam-sparse")?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Writes a matrix to a `.mtx` file on disk.
///
/// # Errors
///
/// Propagates I/O failures as [`SparseError`].
pub fn write_matrix_market_file(path: impl AsRef<Path>, m: &CsrMatrix) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(std::io::BufWriter::new(file), m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = gen::uniform_random(20, 30, 0.1, 5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), m.rows());
        assert_eq!(back.cols(), m.cols());
        assert_eq!(back.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            let got = back.get(r, c).unwrap();
            assert!((got - v).abs() < 1e-5);
        }
    }

    #[test]
    fn pattern_entries_read_as_one() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn symmetric_expands_mirror_entries() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(2, 2), Some(7.0));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "\n%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n% more\n2 2 4.5\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 1), Some(4.5));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("misam_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let m = gen::banded(16, 16, 2, 0.9, 7);
        write_matrix_market_file(&path, &m).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        assert_eq!(back.nnz(), m.nnz());
        std::fs::remove_dir_all(&dir).ok();
    }
}
