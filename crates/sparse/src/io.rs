//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! Supports the subset of the format the SuiteSparse collection uses:
//! `matrix coordinate {real|integer|pattern|complex}
//! {general|symmetric|skew-symmetric}`. Pattern entries read as value
//! `1.0`; complex entries read as their magnitude; symmetric and
//! skew-symmetric files are expanded to their full (general) form on
//! load (the skew mirror negates the value).
//!
//! Parsing is factored into the streaming [`MtxScanner`] so the
//! in-memory reader here and the out-of-core slab ingester
//! ([`crate::slab::ingest_matrix_market`]) share one header/entry
//! grammar — any format extension lands in both paths at once.

use std::io::{BufRead, BufReader, Lines, Read, Write};
use std::path::Path;

use crate::{CooMatrix, CsrMatrix, Result, SparseError};

/// Value field grammar of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MtxValueType {
    /// One real token per entry.
    Real,
    /// One integer token per entry.
    Integer,
    /// No value token; entries read as `1.0`.
    Pattern,
    /// Two tokens (re, im) per entry; read as the magnitude.
    Complex,
}

/// Symmetry declaration of a Matrix Market file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MtxSymmetry {
    /// Entries are stored verbatim.
    General,
    /// Off-diagonal entries mirror as `(c, r, v)`.
    Symmetric,
    /// Off-diagonal entries mirror as `(c, r, -v)`.
    SkewSymmetric,
}

/// Parsed header + size line of a Matrix Market stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MtxMeta {
    pub rows: usize,
    pub cols: usize,
    /// Entry count declared by the size line (pre-expansion).
    pub declared_entries: usize,
    pub value_type: MtxValueType,
    pub symmetry: MtxSymmetry,
}

impl MtxMeta {
    /// The mirrored entry implied by the symmetry declaration, if any.
    pub fn mirror(&self, r: usize, c: usize, v: f32) -> Option<(usize, usize, f32)> {
        match self.symmetry {
            MtxSymmetry::General => None,
            MtxSymmetry::Symmetric if r != c => Some((c, r, v)),
            MtxSymmetry::SkewSymmetric if r != c => Some((c, r, -v)),
            _ => None,
        }
    }
}

/// Streaming Matrix Market reader: parses the header eagerly, then
/// yields stored entries one at a time (0-based, mirrors *not*
/// applied — callers expand via [`MtxMeta::mirror`]). Holds O(1)
/// state, so the slab ingester can re-scan a file per chunk pass
/// without ever owning the entry list.
pub(crate) struct MtxScanner<R: Read> {
    lines: Lines<BufReader<R>>,
    meta: MtxMeta,
    seen: usize,
}

impl<R: Read> MtxScanner<R> {
    /// Parses the header and size line, leaving the scanner at the
    /// first entry.
    pub fn new(reader: R) -> Result<Self> {
        let mut lines = BufReader::new(reader).lines();

        let header = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        break line;
                    }
                }
                None => return Err(SparseError::Parse("empty stream".into())),
            }
        };
        let header = header.trim().to_ascii_lowercase();
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
            return Err(SparseError::Parse(format!("bad header line: {header}")));
        }
        if fields[2] != "coordinate" {
            return Err(SparseError::Parse(format!(
                "unsupported storage '{}', only coordinate is supported",
                fields[2]
            )));
        }
        let value_type = match fields[3] {
            "real" => MtxValueType::Real,
            "integer" => MtxValueType::Integer,
            "pattern" => MtxValueType::Pattern,
            "complex" => MtxValueType::Complex,
            other => return Err(SparseError::Parse(format!("unsupported value type '{other}'"))),
        };
        let symmetry = match fields.get(4).copied().unwrap_or("general") {
            "general" => MtxSymmetry::General,
            "symmetric" => MtxSymmetry::Symmetric,
            "skew-symmetric" => MtxSymmetry::SkewSymmetric,
            other => return Err(SparseError::Parse(format!("unsupported symmetry '{other}'"))),
        };
        if value_type == MtxValueType::Pattern && symmetry == MtxSymmetry::SkewSymmetric {
            return Err(SparseError::Parse("pattern matrices cannot be skew-symmetric".into()));
        }

        // Size line: first non-comment line.
        let size_line = loop {
            match lines.next() {
                Some(line) => {
                    let line = line?;
                    let t = line.trim().to_string();
                    if t.is_empty() || t.starts_with('%') {
                        continue;
                    }
                    break t;
                }
                None => return Err(SparseError::Parse("missing size line".into())),
            }
        };
        let dims: Vec<usize> = size_line
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| SparseError::Parse(format!("bad size token '{t}'"))))
            .collect::<Result<_>>()?;
        if dims.len() != 3 {
            return Err(SparseError::Parse(format!("size line needs 3 fields: {size_line}")));
        }
        let meta = MtxMeta {
            rows: dims[0],
            cols: dims[1],
            declared_entries: dims[2],
            value_type,
            symmetry,
        };
        Ok(MtxScanner { lines, meta, seen: 0 })
    }

    /// The parsed header.
    pub fn meta(&self) -> &MtxMeta {
        &self.meta
    }

    /// The next stored entry as `(row, col, value)` — 0-based, mirror
    /// not applied — or `None` at a well-formed end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Parse`] for a malformed entry, or at end
    /// of stream when the entry count disagrees with the size line.
    pub fn next_entry(&mut self) -> Result<Option<(usize, usize, f32)>> {
        for line in self.lines.by_ref() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let r: usize = it
                .next()
                .ok_or_else(|| SparseError::Parse(format!("truncated entry: {t}")))?
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad row in entry: {t}")))?;
            let c: usize = it
                .next()
                .ok_or_else(|| SparseError::Parse(format!("truncated entry: {t}")))?
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad col in entry: {t}")))?;
            let v: f32 = match self.meta.value_type {
                MtxValueType::Pattern => 1.0,
                MtxValueType::Real | MtxValueType::Integer => it
                    .next()
                    .ok_or_else(|| SparseError::Parse(format!("missing value in entry: {t}")))?
                    .parse()
                    .map_err(|_| SparseError::Parse(format!("bad value in entry: {t}")))?,
                MtxValueType::Complex => {
                    let mut part = || -> Result<f64> {
                        it.next()
                            .ok_or_else(|| {
                                SparseError::Parse(format!("missing complex part in entry: {t}"))
                            })?
                            .parse()
                            .map_err(|_| {
                                SparseError::Parse(format!("bad complex part in entry: {t}"))
                            })
                    };
                    let (re, im) = (part()?, part()?);
                    (re * re + im * im).sqrt() as f32
                }
            };
            if r == 0 || c == 0 {
                return Err(SparseError::Parse("matrix market indices are 1-based".into()));
            }
            self.seen += 1;
            return Ok(Some((r - 1, c - 1, v)));
        }
        if self.seen != self.meta.declared_entries {
            return Err(SparseError::Parse(format!(
                "header declares {} entries but stream holds {}",
                self.meta.declared_entries, self.seen
            )));
        }
        Ok(None)
    }
}

/// Parses a Matrix Market stream into a CSR matrix.
///
/// A mutable reference is a valid `Read`, so callers can pass `&mut file`
/// to keep using the file afterwards.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed headers or entries and
/// [`SparseError::Io`] for stream failures.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut scanner = MtxScanner::new(reader)?;
    let meta = *scanner.meta();
    let mut coo = CooMatrix::new(meta.rows, meta.cols);
    while let Some((r, c, v)) = scanner.next_entry()? {
        coo.push(r, c, v)?;
        if let Some((mr, mc, mv)) = meta.mirror(r, c, v) {
            coo.push(mr, mc, mv)?;
        }
    }
    Ok(coo.to_csr())
}

/// Reads a `.mtx` file from disk.
///
/// # Errors
///
/// Propagates parse and I/O failures as [`SparseError`].
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Writes a matrix as `matrix coordinate real general`.
///
/// A mutable reference is a valid `Write`, so callers can pass
/// `&mut buffer`.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(mut writer: W, m: &CsrMatrix) -> Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by misam-sparse")?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Writes a matrix to a `.mtx` file on disk.
///
/// # Errors
///
/// Propagates I/O failures as [`SparseError`].
pub fn write_matrix_market_file(path: impl AsRef<Path>, m: &CsrMatrix) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(std::io::BufWriter::new(file), m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = gen::uniform_random(20, 30, 0.1, 5);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &m).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), m.rows());
        assert_eq!(back.cols(), m.cols());
        assert_eq!(back.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            let got = back.get(r, c).unwrap();
            assert!((got - v).abs() < 1e-5);
        }
    }

    #[test]
    fn pattern_entries_read_as_one() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn symmetric_expands_mirror_entries() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(2, 2), Some(7.0));
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn skew_symmetric_mirrors_negated() {
        let src =
            "%%MatrixMarket matrix coordinate real skew-symmetric\n3 3 2\n2 1 5.0\n3 1 -2.5\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(-5.0));
        assert_eq!(m.get(2, 0), Some(-2.5));
        assert_eq!(m.get(0, 2), Some(2.5));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn complex_entries_read_as_magnitude() {
        let src =
            "%%MatrixMarket matrix coordinate complex general\n2 2 2\n1 1 3.0 4.0\n2 2 0 -2\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(5.0));
        assert_eq!(m.get(1, 1), Some(2.0));
    }

    #[test]
    fn complex_symmetric_expands_magnitudes() {
        let src = "%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n2 1 3.0 -4.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(0, 1), Some(5.0));
    }

    #[test]
    fn complex_entries_require_both_parts() {
        let src = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 3.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn pattern_skew_symmetric_is_rejected() {
        let src = "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes())
            .is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "\n%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n% more\n2 2 4.5\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 1), Some(4.5));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("misam_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        let m = gen::banded(16, 16, 2, 0.9, 7);
        write_matrix_market_file(&path, &m).unwrap();
        let back = read_matrix_market_file(&path).unwrap();
        assert_eq!(back.nnz(), m.nnz());
        std::fs::remove_dir_all(&dir).ok();
    }
}
