//! Structural descriptions of generated matrices — the output of the
//! generators' *structure stage*.
//!
//! Every synthetic family in [`crate::gen`] decides **where** its
//! nonzeros go before it decides what values they carry. This module
//! captures that placement in O(rows) storage instead of O(nnz)
//! element arrays:
//!
//! - [`RowRuns`] — one contiguous (possibly cyclically wrapping) run of
//!   columns per row, described by a start and a length. Every random
//!   family (uniform, power-law, R-MAT, banded, circuit, regular,
//!   pruned-DNN, dense, imbalanced) places its rows this way, which is
//!   what makes profile synthesis and compressed-B cost scheduling
//!   closed-form.
//! - Mesh stencils ([`Structure::Mesh2d`] / [`Structure::Mesh3d`]) —
//!   fully determined by their grid dimensions; rows are enumerated
//!   on demand with no per-element state at all.
//!
//! A [`Structure`] can be materialized into a [`CsrMatrix`] (the *fill
//! stage* — see [`crate::lazy::LazyMatrix`]), and profiled without
//! materialization via [`crate::MatrixProfile::synthesize`], which is
//! guaranteed bit-identical to building the profile from the
//! materialized CSR.

use crate::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a fill value: uniform in `[-1, 1]` excluding exact zero, so
/// materialized nnz counts always match the structure's nnz.
pub(crate) fn fill_value(rng: &mut StdRng) -> f32 {
    loop {
        let v: f32 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Per-row contiguous column runs: row `r` holds the `lens[r]` columns
/// `(starts[r] + j) % cols` for `j in 0..lens[r]`, i.e. one run that may
/// wrap cyclically past the last column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRuns {
    rows: usize,
    cols: usize,
    nnz: usize,
    starts: Vec<u32>,
    lens: Vec<u32>,
}

impl RowRuns {
    /// Builds a run table.
    ///
    /// # Panics
    ///
    /// Panics if the vectors are not `rows` long, a length exceeds
    /// `cols`, or a start of a non-empty row is out of bounds.
    pub fn new(rows: usize, cols: usize, starts: Vec<u32>, lens: Vec<u32>) -> Self {
        assert_eq!(starts.len(), rows, "one start per row");
        assert_eq!(lens.len(), rows, "one length per row");
        let mut nnz = 0usize;
        for (r, (&s, &l)) in starts.iter().zip(&lens).enumerate() {
            assert!(l as usize <= cols, "row {r} run length {l} exceeds cols {cols}");
            assert!(l == 0 || (s as usize) < cols, "row {r} run start {s} out of bounds");
            nnz += l as usize;
        }
        RowRuns { rows, cols, nnz, starts, lens }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total run length (the nnz of the materialized matrix).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Run starts, one per row.
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Run lengths, one per row (the materialized row-length vector).
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Row `r` as at most two ascending half-open column intervals:
    /// the wrapped prefix `[0, wrap)` (empty unless the run crosses the
    /// last column) and the body `[start, end)`.
    #[inline]
    pub fn row_intervals(&self, r: usize) -> [(usize, usize); 2] {
        let s = self.starts[r] as usize;
        let l = self.lens[r] as usize;
        if l == 0 {
            return [(0, 0), (0, 0)];
        }
        let end = s + l;
        if end <= self.cols {
            [(0, 0), (s, end)]
        } else {
            [(0, end - self.cols), (s, self.cols)]
        }
    }
}

/// The structural description of one generated matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Structure {
    /// One cyclic column run per row.
    Runs(RowRuns),
    /// The 5-point stencil over an `nx x ny` grid (see
    /// [`crate::gen::mesh2d`]).
    Mesh2d {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// The 7-point stencil over an `nx x ny x nz` grid (see
    /// [`crate::gen::mesh3d`]).
    Mesh3d {
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
        /// Grid depth.
        nz: usize,
    },
}

impl Structure {
    /// A run structure (the common case for the random families).
    pub fn runs(rows: usize, cols: usize, starts: Vec<u32>, lens: Vec<u32>) -> Self {
        Structure::Runs(RowRuns::new(rows, cols, starts, lens))
    }

    /// A run structure with every row empty.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Structure::runs(rows, cols, vec![0; rows], vec![0; rows])
    }

    /// Number of rows of the described matrix.
    pub fn rows(&self) -> usize {
        match self {
            Structure::Runs(rr) => rr.rows(),
            Structure::Mesh2d { nx, ny } => nx * ny,
            Structure::Mesh3d { nx, ny, nz } => nx * ny * nz,
        }
    }

    /// Number of columns (meshes are square).
    pub fn cols(&self) -> usize {
        match self {
            Structure::Runs(rr) => rr.cols(),
            _ => self.rows(),
        }
    }

    /// Nonzeros of the described matrix, in O(1).
    pub fn nnz(&self) -> usize {
        match self {
            Structure::Runs(rr) => rr.nnz(),
            Structure::Mesh2d { nx, ny } => {
                let n = nx * ny;
                if n == 0 {
                    0
                } else {
                    5 * n - 2 * nx - 2 * ny
                }
            }
            Structure::Mesh3d { nx, ny, nz } => {
                let n = nx * ny * nz;
                if n == 0 {
                    0
                } else {
                    7 * n - 2 * (nx * ny) - 2 * (ny * nz) - 2 * (nx * nz)
                }
            }
        }
    }

    /// The run table, when this is a run structure.
    pub fn as_runs(&self) -> Option<&RowRuns> {
        match self {
            Structure::Runs(rr) => Some(rr),
            _ => None,
        }
    }

    /// Length of row `r` without enumerating its columns.
    pub fn row_len(&self, r: usize) -> usize {
        match self {
            Structure::Runs(rr) => rr.lens()[r] as usize,
            Structure::Mesh2d { .. } | Structure::Mesh3d { .. } => {
                let mut buf = [0u32; 7];
                self.mesh_row_cols(r, &mut buf)
            }
        }
    }

    /// Writes the ascending column indices of mesh row `r` into `buf`,
    /// returning how many there are (≤ 5 for 2-D, ≤ 7 for 3-D).
    ///
    /// # Panics
    ///
    /// Panics if called on a [`Structure::Runs`] value.
    #[inline]
    pub fn mesh_row_cols(&self, r: usize, buf: &mut [u32; 7]) -> usize {
        match *self {
            Structure::Mesh2d { nx, ny } => {
                let (x, y) = (r % nx, r / nx);
                let mut n = 0;
                if y > 0 {
                    buf[n] = (r - nx) as u32;
                    n += 1;
                }
                if x > 0 {
                    buf[n] = (r - 1) as u32;
                    n += 1;
                }
                buf[n] = r as u32;
                n += 1;
                if x + 1 < nx {
                    buf[n] = (r + 1) as u32;
                    n += 1;
                }
                if y + 1 < ny {
                    buf[n] = (r + nx) as u32;
                    n += 1;
                }
                n
            }
            Structure::Mesh3d { nx, ny, nz } => {
                let plane = nx * ny;
                let z = r / plane;
                let rem = r % plane;
                let (x, y) = (rem % nx, rem / nx);
                let mut n = 0;
                if z > 0 {
                    buf[n] = (r - plane) as u32;
                    n += 1;
                }
                if y > 0 {
                    buf[n] = (r - nx) as u32;
                    n += 1;
                }
                if x > 0 {
                    buf[n] = (r - 1) as u32;
                    n += 1;
                }
                buf[n] = r as u32;
                n += 1;
                if x + 1 < nx {
                    buf[n] = (r + 1) as u32;
                    n += 1;
                }
                if y + 1 < ny {
                    buf[n] = (r + nx) as u32;
                    n += 1;
                }
                if z + 1 < nz {
                    buf[n] = (r + plane) as u32;
                    n += 1;
                }
                n
            }
            Structure::Runs(_) => panic!("mesh_row_cols called on a run structure"),
        }
    }

    /// Materializes the structure into a CSR matrix (the *fill stage*).
    ///
    /// Values for run structures are drawn from
    /// `StdRng::seed_from_u64(value_seed)` row by row in ascending
    /// column order; mesh stencils carry their fixed Poisson values
    /// (`4`/`6` on the diagonal, `-1` off it) and ignore the seed. The
    /// fill is a pure function of `(self, value_seed)`, which is what
    /// lets fingerprints and caches key on the structure alone.
    pub fn materialize(&self, value_seed: u64) -> CsrMatrix {
        let rows = self.rows();
        let nnz = self.nnz();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(nnz);
        let mut values: Vec<f32> = Vec::with_capacity(nnz);
        row_ptr.push(0);
        match self {
            Structure::Runs(rr) => {
                let mut rng = StdRng::seed_from_u64(value_seed);
                for r in 0..rows {
                    for (a, b) in rr.row_intervals(r) {
                        for c in a..b {
                            col_idx.push(c as u32);
                            values.push(fill_value(&mut rng));
                        }
                    }
                    row_ptr.push(col_idx.len());
                }
            }
            Structure::Mesh2d { .. } | Structure::Mesh3d { .. } => {
                let diag = if matches!(self, Structure::Mesh2d { .. }) { 4.0 } else { 6.0 };
                let mut buf = [0u32; 7];
                for r in 0..rows {
                    let n = self.mesh_row_cols(r, &mut buf);
                    for &c in &buf[..n] {
                        col_idx.push(c);
                        values.push(if c as usize == r { diag } else { -1.0 });
                    }
                    row_ptr.push(col_idx.len());
                }
            }
        }
        CsrMatrix::from_raw_parts(rows, self.cols(), row_ptr, col_idx, values)
            .expect("structure materializes to sorted in-bounds columns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_intervals_split_wrapping_runs() {
        let rr = RowRuns::new(3, 10, vec![2, 8, 0], vec![4, 5, 0]);
        assert_eq!(rr.row_intervals(0), [(0, 0), (2, 6)]);
        assert_eq!(rr.row_intervals(1), [(0, 3), (8, 10)]);
        assert_eq!(rr.row_intervals(2), [(0, 0), (0, 0)]);
        assert_eq!(rr.nnz(), 9);
    }

    #[test]
    fn materialized_runs_are_sorted_and_counted() {
        let s = Structure::runs(3, 10, vec![2, 8, 0], vec![4, 5, 10]);
        let m = s.materialize(42);
        assert_eq!(m.nnz(), s.nnz());
        assert_eq!(m.row_nnz(0), 4);
        assert_eq!(m.row_nnz(1), 5);
        let cols: Vec<usize> = m.row(1).iter().map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 2, 8, 9]);
        // Deterministic in the value seed, distinct across seeds.
        assert_eq!(m, s.materialize(42));
        assert_ne!(m, s.materialize(43));
    }

    #[test]
    fn mesh_nnz_matches_materialization() {
        for s in [
            Structure::Mesh2d { nx: 4, ny: 3 },
            Structure::Mesh2d { nx: 1, ny: 5 },
            Structure::Mesh3d { nx: 3, ny: 3, nz: 3 },
            Structure::Mesh3d { nx: 1, ny: 1, nz: 1 },
        ] {
            let m = s.materialize(0);
            assert_eq!(m.nnz(), s.nnz(), "{s:?}");
            assert_eq!(m.rows(), s.rows());
            for r in 0..s.rows() {
                assert_eq!(m.row_nnz(r), s.row_len(r), "{s:?} row {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds cols")]
    fn oversized_run_is_rejected() {
        RowRuns::new(1, 4, vec![0], vec![5]);
    }
}
