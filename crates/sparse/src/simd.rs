//! Lane-oriented integer kernels behind the structural profile fold.
//!
//! The hot loops of [`MatrixProfile`](crate::MatrixProfile) construction
//! — the stamp-packed fragment fold and the per-residue length/count
//! tallies — live here in two forms each:
//!
//! - a **vectorized** form (`*_lanes`): fixed-width lane loops written
//!   so the autovectorizer lowers them to SIMD on any target (residue
//!   computation over u32 lanes, residue tallies over `pes`-wide
//!   chunks), with the inherently-scatter stamp update kept as a tight
//!   scalar loop over precomputed residues;
//! - a **scalar reference** form (`*_scalar`): the straightforward
//!   per-row histogram / wrapping-counter implementation, always
//!   compiled, used as the equivalence oracle by the lane-remainder
//!   proptests and as the only path when the `force-scalar` feature is
//!   enabled.
//!
//! Both forms are pure integer kernels, so "equal" means **bit-equal**:
//! the dispatch wrappers ([`frag_fold`], [`residue_len_fold`],
//! [`residue_count_fold`]) may pick either side without any consumer
//! noticing. Floating-point summaries
//! ([`DistSummary`](crate::profile::DistSummary)) are deliberately NOT
//! vectorized: reassociating a float accumulation changes its bits, and
//! the house rule is to vectorize across independent outputs only.

/// True when the vectorized lane paths are compiled in; the
/// `force-scalar` feature turns every dispatch wrapper in this crate
/// into its scalar reference form so the portable fallback stays
/// tested and shippable on its own.
pub const VECTORIZED: bool = cfg!(not(feature = "force-scalar"));

/// Stack-buffer width (elements) for precomputed residues: one L1-
/// resident tile per inner loop, big enough to amortize the loop
/// overhead and small enough (1 KiB) to never spill.
pub const RESIDUE_TILE: usize = 256;

/// Fills `out[i] = cols[i] % pes` for the paper's PE counts with
/// specialized constant-divisor forms (bitmask for 64, multiply-shift
/// for 96) that the autovectorizer lowers to u32 lanes; other divisors
/// take the generic constant-propagation path.
///
/// # Panics
///
/// Panics if `out.len() < cols.len()` or `pes == 0`.
#[inline]
pub fn fill_residues(cols: &[u32], pes: usize, out: &mut [u32]) {
    let out = &mut out[..cols.len()];
    match pes {
        // The PE totals of the paper's designs (Table 1).
        64 => {
            for (d, &c) in out.iter_mut().zip(cols) {
                *d = c & 63;
            }
        }
        96 => {
            for (d, &c) in out.iter_mut().zip(cols) {
                *d = c % 96;
            }
        }
        p if p.is_power_of_two() => {
            let mask = (p - 1) as u32;
            for (d, &c) in out.iter_mut().zip(cols) {
                *d = c & mask;
            }
        }
        p => {
            let p = p as u32;
            for (d, &c) in out.iter_mut().zip(cols) {
                *d = c % p;
            }
        }
    }
}

/// Per-residue sum and maximum of a length vector (`lens[i]` belongs to
/// residue `i % pes`): `sum[p] += Σ lens`, `max[p] = max(max[p], lens)`.
/// Dispatches to the lane kernel unless `force-scalar` is on.
#[inline]
pub fn residue_len_fold(pes: usize, lens: &[u32], sum: &mut [u64], max: &mut [u32]) {
    if VECTORIZED {
        residue_len_fold_lanes(pes, lens, sum, max);
    } else {
        residue_len_fold_scalar(pes, lens, sum, max);
    }
}

/// Scalar reference for [`residue_len_fold`]: a wrapping residue
/// counter over one sequential pass. Always compiled.
pub fn residue_len_fold_scalar(pes: usize, lens: &[u32], sum: &mut [u64], max: &mut [u32]) {
    let mut p = 0usize;
    for &len in lens {
        sum[p] += len as u64;
        if len > max[p] {
            max[p] = len;
        }
        p += 1;
        if p == pes {
            p = 0;
        }
    }
}

/// Lane form of [`residue_len_fold`]: the length vector is cut into
/// `pes`-wide chunks whose lane `j` always lands on residue `j`, so the
/// inner loop is an independent-output add/max the autovectorizer
/// lowers to SIMD. Integer sums and maxima are order-free, so the
/// result is bit-identical to the scalar counter.
pub fn residue_len_fold_lanes(pes: usize, lens: &[u32], sum: &mut [u64], max: &mut [u32]) {
    let sum = &mut sum[..pes];
    let max = &mut max[..pes];
    let mut chunks = lens.chunks_exact(pes);
    for chunk in &mut chunks {
        for j in 0..pes {
            sum[j] += chunk[j] as u64;
            if chunk[j] > max[j] {
                max[j] = chunk[j];
            }
        }
    }
    for (j, &len) in chunks.remainder().iter().enumerate() {
        sum[j] += len as u64;
        if len > max[j] {
            max[j] = len;
        }
    }
}

/// Per-residue sum of a count vector (`counts[i]` belongs to residue
/// `i % pes`). Dispatches to the lane kernel unless `force-scalar` is
/// on.
#[inline]
pub fn residue_count_fold(pes: usize, counts: &[u32], sum: &mut [u64]) {
    if VECTORIZED {
        residue_count_fold_lanes(pes, counts, sum);
    } else {
        residue_count_fold_scalar(pes, counts, sum);
    }
}

/// Scalar reference for [`residue_count_fold`]. Always compiled.
pub fn residue_count_fold_scalar(pes: usize, counts: &[u32], sum: &mut [u64]) {
    let mut p = 0usize;
    for &cnt in counts {
        sum[p] += cnt as u64;
        p += 1;
        if p == pes {
            p = 0;
        }
    }
}

/// Lane form of [`residue_count_fold`]: `pes`-wide chunks with an
/// independent-output widening add per lane.
pub fn residue_count_fold_lanes(pes: usize, counts: &[u32], sum: &mut [u64]) {
    let sum = &mut sum[..pes];
    let mut chunks = counts.chunks_exact(pes);
    for chunk in &mut chunks {
        for j in 0..pes {
            sum[j] += chunk[j] as u64;
        }
    }
    for (j, &cnt) in chunks.remainder().iter().enumerate() {
        sum[j] += cnt as u64;
    }
}

/// Folds the largest per-row fragment per PE residue: for each row, how
/// many of its columns land on PE `c % pes`, maxed over rows — the hot
/// path of profile construction. Only rows of length ≥ 2 are folded
/// (shorter rows can only produce fragments of 1, which the caller
/// derives from the column occupancies), and only fragments their rows
/// actually produce are recorded. The matrix-wide column occupancy is
/// optionally accumulated in the same traversal (`counts`).
///
/// `row_ptr` carries **absolute** offsets into `col_idx` (the chunked
/// profile builder passes a window of the full pointer array), and
/// `rows` is the number of rows in that window.
///
/// Dispatches to the stamp-packed lane kernel unless `force-scalar` is
/// on; both sides are bit-identical (pinned by the lane-remainder
/// proptests in `tests/simd_equivalence.rs`).
#[inline]
pub fn frag_fold(
    rows: usize,
    cols: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    pes: usize,
    out: &mut [u32],
    counts: Option<&mut [u32]>,
) {
    if VECTORIZED {
        frag_fold_lanes(rows, cols, row_ptr, col_idx, pes, out, counts);
    } else {
        frag_fold_scalar(rows, row_ptr, col_idx, pes, out, counts);
    }
}

/// Scalar reference for [`frag_fold`]: a per-row residue histogram with
/// a touched list, merged and reset after every row. Always compiled —
/// this is the portable fallback and the oracle the vectorized kernel
/// is property-tested against.
pub fn frag_fold_scalar(
    rows: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    pes: usize,
    out: &mut [u32],
    counts: Option<&mut [u32]>,
) {
    let mut hist = vec![0u32; pes];
    let mut touched: Vec<u32> = Vec::with_capacity(pes);
    let mut counts = counts;
    for r in 0..rows {
        let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
        if let Some(cc) = counts.as_deref_mut() {
            for &c in row {
                cc[c as usize] += 1;
            }
        }
        if row.len() < 2 {
            continue;
        }
        for &c in row {
            let p = c as usize % pes;
            if hist[p] == 0 {
                touched.push(p as u32);
            }
            hist[p] += 1;
        }
        for &p in &touched {
            let p = p as usize;
            if hist[p] > out[p] {
                out[p] = hist[p];
            }
            hist[p] = 0;
        }
        touched.clear();
    }
}

/// Per-residue scratch packs the row of the last visit in the high 32
/// bits and the running in-row count in the low 32: one u64 load/store
/// per element, with no per-row histogram reset or fold.
const FRESH: u64 = u64::MAX << 32;

/// Vectorized [`frag_fold`]: residues for a tile of columns are
/// computed first in an independent-output u32 lane loop
/// ([`fill_residues`], SIMD-lowered), then the inherently-scatter
/// stamp-packed update runs as a tight scalar loop over the tile. The
/// column-occupancy accumulation runs as its own plain loop per row so
/// it cannot serialize the residue lanes. Compile-time PE counts for
/// the paper's designs (64/96) keep the stamp scratch on the stack.
pub fn frag_fold_lanes(
    rows: usize,
    cols: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
    pes: usize,
    out: &mut [u32],
    counts: Option<&mut [u32]>,
) {
    // Compile-time PE count: fixed-size stack scratch (bounds checks
    // vanish) and the residue map strength-reduces per lane.
    #[inline(always)]
    fn fold_const<const PES: usize, const COUNT: bool>(
        rows: usize,
        row_ptr: &[usize],
        col_idx: &[u32],
        out: &mut [u32],
        counts: &mut [u32],
    ) {
        let out = &mut out[..PES];
        let mut scratch = [FRESH; PES];
        let mut pbuf = [0u32; RESIDUE_TILE];
        for r in 0..rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            if COUNT {
                for &c in row {
                    counts[c as usize] += 1;
                }
            }
            if row.len() < 2 {
                continue;
            }
            let rr = (r as u64) << 32;
            for tile in row.chunks(RESIDUE_TILE) {
                fill_residues(tile, PES, &mut pbuf);
                for &p in &pbuf[..tile.len()] {
                    // Residues are < PES by construction; the clamp is
                    // an identity that removes the bounds checks.
                    let p = (p as usize).min(PES - 1);
                    let v = scratch[p];
                    let f = (v & FRESH == rr) as u32 * v as u32 + 1;
                    scratch[p] = rr | f as u64;
                    if f > out[p] {
                        out[p] = f;
                    }
                }
            }
        }
    }

    // Runtime PE count: residue via a precomputed per-column table
    // (one gather per element, L1-resident for realistic widths).
    #[inline(always)]
    fn fold_dyn<const COUNT: bool>(
        rows: usize,
        row_ptr: &[usize],
        col_idx: &[u32],
        pes: usize,
        table: &[u32],
        out: &mut [u32],
        counts: &mut [u32],
    ) {
        let mut scratch = vec![FRESH; pes];
        for r in 0..rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            if COUNT {
                for &c in row {
                    counts[c as usize] += 1;
                }
            }
            if row.len() < 2 {
                continue;
            }
            let rr = (r as u64) << 32;
            for &c in row {
                let p = table[c as usize] as usize;
                let v = scratch[p];
                let f = (v & FRESH == rr) as u32 * v as u32 + 1;
                scratch[p] = rr | f as u64;
                if f > out[p] {
                    out[p] = f;
                }
            }
        }
    }

    match (pes, counts) {
        // The PE totals of the paper's designs (Table 1).
        (64, Some(cc)) => fold_const::<64, true>(rows, row_ptr, col_idx, out, cc),
        (64, None) => fold_const::<64, false>(rows, row_ptr, col_idx, out, &mut []),
        (96, Some(cc)) => fold_const::<96, true>(rows, row_ptr, col_idx, out, cc),
        (96, None) => fold_const::<96, false>(rows, row_ptr, col_idx, out, &mut []),
        (_, counts) => {
            let table: Vec<u32> = (0..cols).map(|c| (c % pes) as u32).collect();
            match counts {
                Some(cc) => fold_dyn::<true>(rows, row_ptr, col_idx, pes, &table, out, cc),
                None => fold_dyn::<false>(rows, row_ptr, col_idx, pes, &table, out, &mut []),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_of(rows: &[Vec<u32>]) -> (Vec<usize>, Vec<u32>) {
        let mut ptr = vec![0usize];
        let mut idx = Vec::new();
        for r in rows {
            idx.extend_from_slice(r);
            ptr.push(idx.len());
        }
        (ptr, idx)
    }

    #[test]
    fn residue_folds_agree_across_forms() {
        for pes in [1usize, 3, 4, 7, 64, 96, 97] {
            for n in [0usize, 1, pes.saturating_sub(1), pes, pes + 1, 3 * pes + 2] {
                let lens: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % 23) as u32).collect();
                let mut s1 = vec![0u64; pes];
                let mut m1 = vec![0u32; pes];
                let mut s2 = vec![0u64; pes];
                let mut m2 = vec![0u32; pes];
                residue_len_fold_scalar(pes, &lens, &mut s1, &mut m1);
                residue_len_fold_lanes(pes, &lens, &mut s2, &mut m2);
                assert_eq!(s1, s2, "sum pes={pes} n={n}");
                assert_eq!(m1, m2, "max pes={pes} n={n}");

                let mut c1 = vec![0u64; pes];
                let mut c2 = vec![0u64; pes];
                residue_count_fold_scalar(pes, &lens, &mut c1);
                residue_count_fold_lanes(pes, &lens, &mut c2);
                assert_eq!(c1, c2, "count pes={pes} n={n}");
            }
        }
    }

    #[test]
    fn fill_residues_matches_modulo() {
        let cols: Vec<u32> = (0..300).map(|i| (i * 37 + 11) % 1000).collect();
        for pes in [1usize, 2, 63, 64, 65, 96, 100] {
            let mut out = vec![0u32; cols.len()];
            fill_residues(&cols, pes, &mut out);
            for (i, &c) in cols.iter().enumerate() {
                assert_eq!(out[i], c % pes as u32, "pes={pes} i={i}");
            }
        }
    }

    #[test]
    fn frag_fold_forms_agree_on_remainder_heavy_rows() {
        // Rows of length 0, 1, tile-1, tile, tile+1 and a duplicate-
        // residue row, across const and dyn PE counts.
        let t = RESIDUE_TILE as u32;
        let rows: Vec<Vec<u32>> = vec![
            vec![],
            vec![5],
            (0..t - 1).collect(),
            (0..t).collect(),
            (0..t + 1).collect(),
            (0..40).map(|i| i * 96).collect(), // all residue 0 under 96 PEs
        ];
        let (ptr, idx) = csr_of(&rows);
        let cols = 96 * 40;
        for pes in [4usize, 64, 96, 100] {
            let mut o1 = vec![0u32; pes];
            let mut o2 = vec![0u32; pes];
            let mut c1 = vec![0u32; cols];
            let mut c2 = vec![0u32; cols];
            frag_fold_scalar(rows.len(), &ptr, &idx, pes, &mut o1, Some(&mut c1));
            frag_fold_lanes(rows.len(), cols, &ptr, &idx, pes, &mut o2, Some(&mut c2));
            assert_eq!(o1, o2, "frag pes={pes}");
            assert_eq!(c1, c2, "counts pes={pes}");
        }
    }
}
