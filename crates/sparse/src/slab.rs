//! Out-of-core CSR storage: the `.msab` slab format.
//!
//! A slab is a versioned on-disk CSR image designed to be mapped, not
//! parsed: after a 64-byte checksummed header come the three CSR
//! arrays in their in-memory layout (little-endian, 8-byte aligned
//! sections), so [`SlabMatrix::open`] memory-maps the file and serves
//! [`CsrRef`] views straight from the page cache — no allocation
//! proportional to the matrix. The header carries a content digest
//! computed with the oracle's fingerprint recipe, letting file-backed
//! matrices join the profile/label caches in O(1) without re-hashing
//! their nonzeros.
//!
//! Slabs are produced two ways:
//!
//! - [`write_slab`] serialises an owned, already-resident
//!   [`CsrMatrix`] — the path tests use to build slab twins.
//! - [`ingest_matrix_market`] streams a `.mtx` file into a slab
//!   without ever holding the matrix in memory: pass 1 counts row
//!   lengths, then bounded row-range chunks are re-scanned, sorted,
//!   and appended, keeping peak residency at
//!   `O(rows + chunk_budget)` entries.
//!
//! # Layout (version 1, all little-endian)
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 4     | magic `"MSAB"` |
//! | 4      | 4     | version (`1`) |
//! | 8      | 8     | rows |
//! | 16     | 8     | cols |
//! | 24     | 8     | nnz |
//! | 32     | 8     | content digest (fingerprint recipe) |
//! | 40     | 8     | FNV-1a checksum of bytes `[0, 40)` |
//! | 48     | 16    | reserved (zero) |
//! | 64     | 8·(rows+1) | `row_ptr` as `u64` |
//! | —      | 4·nnz, zero-padded to 8 | `col_idx` as `u32` |
//! | —      | 4·nnz | `values` as `f32` bit patterns |

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::io::MtxScanner;
use crate::view::CsrRef;
use crate::{CsrMatrix, Result, SparseError};

const MAGIC: [u8; 4] = *b"MSAB";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 64;

/// Default per-chunk residency budget for [`ingest_matrix_market`],
/// in matrix entries (8 bytes each while chunk-resident).
pub const DEFAULT_INGEST_BUDGET: usize = 8 << 20;

// The content digest reproduces `misam_oracle`'s `Fingerprint::of_matrix`
// byte-for-byte (pinned by a cross-crate test there) so a slab header
// digest and an owned-matrix fingerprint share one cache key space.
// The recipe lives here too because oracle depends on sparse, not the
// reverse.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            self.0 = (self.0 ^ ((v >> shift) & 0xff)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn pad8(n: usize) -> usize {
    (n + 7) & !7
}

/// Byte offsets of the slab sections for a given shape.
#[derive(Debug, Clone, Copy)]
struct Layout {
    row_ptr_off: usize,
    col_off: usize,
    val_off: usize,
    file_len: usize,
}

impl Layout {
    fn of(rows: usize, nnz: usize) -> Layout {
        let row_ptr_off = HEADER_LEN;
        let col_off = row_ptr_off + 8 * (rows + 1);
        let val_off = col_off + pad8(4 * nnz);
        Layout { row_ptr_off, col_off, val_off, file_len: val_off + 4 * nnz }
    }
}

fn encode_header(rows: usize, cols: usize, nnz: usize, digest: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&(rows as u64).to_le_bytes());
    h[16..24].copy_from_slice(&(cols as u64).to_le_bytes());
    h[24..32].copy_from_slice(&(nnz as u64).to_le_bytes());
    h[32..40].copy_from_slice(&digest.to_le_bytes());
    let mut sum = Fnv::new();
    sum.write_bytes(&h[0..40]);
    h[40..48].copy_from_slice(&sum.finish().to_le_bytes());
    h
}

fn read_u64_le(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte window"))
}

fn parse_header(bytes: &[u8]) -> Result<(usize, usize, usize, u64)> {
    if bytes.len() < HEADER_LEN {
        return Err(SparseError::Parse("slab: file shorter than header".into()));
    }
    if bytes[0..4] != MAGIC {
        return Err(SparseError::Parse("slab: bad magic (not an .msab file)".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte window"));
    if version != VERSION {
        return Err(SparseError::Parse(format!("slab: unsupported version {version}")));
    }
    let mut sum = Fnv::new();
    sum.write_bytes(&bytes[0..40]);
    if sum.finish() != read_u64_le(bytes, 40) {
        return Err(SparseError::Parse("slab: header checksum mismatch".into()));
    }
    let to_usize = |v: u64, what: &str| -> Result<usize> {
        usize::try_from(v).map_err(|_| SparseError::Parse(format!("slab: {what} exceeds usize")))
    };
    let rows = to_usize(read_u64_le(bytes, 8), "rows")?;
    let cols = to_usize(read_u64_le(bytes, 16), "cols")?;
    let nnz = to_usize(read_u64_le(bytes, 24), "nnz")?;
    Ok((rows, cols, nnz, read_u64_le(bytes, 32)))
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod mm {
    //! Minimal read-only `mmap` wrapper against the libc that `std`
    //! already links (same pattern as the `signal` binding in
    //! `misam-serve`), so no new dependency is needed.

    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // Read-only private mapping: shared references to its bytes are
    // safe from any thread.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        pub fn map(file: &File, len: usize) -> std::io::Result<Self> {
            assert!(len > 0, "cannot map an empty file");
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(MmapRegion { ptr, len })
            }
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut u8, self.len);
            }
        }
    }
}

/// File bytes, mapped when the platform allows it and read into an
/// 8-aligned buffer otherwise, so section slices stay aligned either
/// way.
#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
enum Backing {
    #[cfg(unix)]
    Mapped(mm::MmapRegion),
    Owned(Vec<u64>, usize),
}

#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Mapped(region) => region.bytes(),
            Backing::Owned(words, len) => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, *len)
            },
        }
    }
}

#[cfg(all(target_endian = "little", target_pointer_width = "64"))]
fn read_aligned(file: &mut File, len: usize) -> std::io::Result<Backing> {
    let mut words = vec![0u64; len.div_ceil(8)];
    let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(buf)?;
    Ok(Backing::Owned(words, len))
}

enum Store {
    /// Zero-copy: views reinterpret the file bytes in place. Only
    /// valid where the on-disk layout matches the in-memory one.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    Raw(Backing),
    /// Portable fallback: arrays decoded at open time.
    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    Decoded { row_ptr: Vec<usize>, col_idx: Vec<u32>, values: Vec<f32> },
}

/// A matrix backed by an on-disk `.msab` slab.
///
/// Opening validates the header, the exact file length, and the
/// `row_ptr` invariants (O(rows)); the O(nnz) column-index check is
/// available separately via [`SlabMatrix::verify`]. The nonzero
/// arrays are not copied on platforms where the slab layout matches
/// memory — [`SlabMatrix::as_ref`] hands out [`CsrRef`] views
/// directly over the mapping.
pub struct SlabMatrix {
    rows: usize,
    cols: usize,
    nnz: usize,
    digest: u64,
    store: Store,
}

impl std::fmt::Debug for SlabMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz)
            .field("content_digest", &self.digest)
            .finish()
    }
}

impl SlabMatrix {
    /// Opens and validates a slab file.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Parse`] for a malformed or truncated
    /// slab, [`SparseError::MalformedPointers`] for an inconsistent
    /// `row_ptr` section, and [`SparseError::Io`] for filesystem
    /// failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| SparseError::Parse("slab: file too large for this platform".into()))?;
        if len < HEADER_LEN {
            return Err(SparseError::Parse("slab: file shorter than header".into()));
        }

        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        let store = {
            #[cfg(unix)]
            let backing = match mm::MmapRegion::map(&file, len) {
                Ok(region) => Backing::Mapped(region),
                // Some filesystems refuse mmap; fall back to reading.
                Err(_) => read_aligned(&mut file, len)?,
            };
            #[cfg(not(unix))]
            let backing = read_aligned(&mut file, len)?;
            Store::Raw(backing)
        };
        #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
        let store = {
            let mut bytes = vec![0u8; len];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut bytes)?;
            decode_store(&bytes)?
        };

        let slab = {
            let bytes = store_bytes_for_header(&store);
            let (rows, cols, nnz, digest) = parse_header(bytes)?;
            let layout = Layout::of(rows, nnz);
            if len != layout.file_len {
                return Err(SparseError::Parse(format!(
                    "slab: file is {len} bytes, layout for {rows}x{cols} nnz={nnz} needs {}",
                    layout.file_len
                )));
            }
            SlabMatrix { rows, cols, nnz, digest, store }
        };

        let row_ptr = slab.as_ref().row_ptr();
        if row_ptr[0] != 0 {
            return Err(SparseError::MalformedPointers("slab: row_ptr must start at 0".into()));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedPointers(
                "slab: row_ptr must be non-decreasing".into(),
            ));
        }
        if row_ptr[slab.rows] != slab.nnz {
            return Err(SparseError::MalformedPointers(format!(
                "slab: row_ptr ends at {} but header declares nnz={}",
                row_ptr[slab.rows], slab.nnz
            )));
        }
        Ok(slab)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Fraction of entries that are stored; 0 for an empty shape.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The header's content digest — equal to the oracle's
    /// `Fingerprint::of_matrix` of the owned twin, read in O(1).
    pub fn content_digest(&self) -> u64 {
        self.digest
    }

    /// The storage-generic view over the slab's arrays (zero-copy on
    /// little-endian 64-bit platforms).
    pub fn as_ref(&self) -> CsrRef<'_> {
        match &self.store {
            #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
            Store::Raw(backing) => {
                let layout = Layout::of(self.rows, self.nnz);
                let bytes = backing.bytes();
                // Alignment: the mapping is page-aligned (the owned
                // fallback is u64-aligned) and every section offset is
                // a multiple of 8, so these reinterpretations hold.
                let row_ptr = unsafe {
                    std::slice::from_raw_parts(
                        bytes[layout.row_ptr_off..].as_ptr() as *const usize,
                        self.rows + 1,
                    )
                };
                let col_idx = unsafe {
                    std::slice::from_raw_parts(
                        bytes[layout.col_off..].as_ptr() as *const u32,
                        self.nnz,
                    )
                };
                let values = unsafe {
                    std::slice::from_raw_parts(
                        bytes[layout.val_off..].as_ptr() as *const f32,
                        self.nnz,
                    )
                };
                CsrRef::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            }
            #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
            Store::Decoded { row_ptr, col_idx, values } => {
                CsrRef::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
            }
        }
    }

    /// Deep-validates the column indices (strictly increasing within
    /// each row, in bounds) and recomputes the content digest. O(nnz).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedIndices`] for invalid columns
    /// and [`SparseError::Parse`] if the recomputed digest disagrees
    /// with the header.
    pub fn verify(&self) -> Result<()> {
        let view = self.as_ref();
        let (row_ptr, col_idx) = (view.row_ptr(), view.col_idx());
        for r in 0..self.rows {
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            if seg.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SparseError::MalformedIndices(format!(
                    "slab: columns of row {r} are not strictly increasing"
                )));
            }
            if let Some(&last) = seg.last() {
                if last as usize >= self.cols {
                    return Err(SparseError::MalformedIndices(format!(
                        "slab: row {r} holds column {last} >= cols {}",
                        self.cols
                    )));
                }
            }
        }
        let recomputed = digest_of_view(view);
        if recomputed != self.digest {
            return Err(SparseError::Parse(format!(
                "slab: content digest mismatch (header {:#x}, data {:#x})",
                self.digest, recomputed
            )));
        }
        Ok(())
    }

    /// Copies the slab into an owned [`CsrMatrix`].
    pub fn to_matrix(&self) -> CsrMatrix {
        self.as_ref().to_matrix()
    }
}

fn store_bytes_for_header(store: &Store) -> &[u8] {
    match store {
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        Store::Raw(backing) => backing.bytes(),
        #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
        Store::Decoded { .. } => unreachable!("decoded stores are built after header parsing"),
    }
}

#[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
fn decode_store(bytes: &[u8]) -> Result<Store> {
    let (rows, _cols, nnz, _digest) = parse_header(bytes)?;
    let layout = Layout::of(rows, nnz);
    if bytes.len() != layout.file_len {
        return Err(SparseError::Parse("slab: truncated file".into()));
    }
    let mut row_ptr = Vec::with_capacity(rows + 1);
    for i in 0..=rows {
        let v = read_u64_le(bytes, layout.row_ptr_off + 8 * i);
        row_ptr.push(
            usize::try_from(v)
                .map_err(|_| SparseError::Parse("slab: row_ptr exceeds usize".into()))?,
        );
    }
    let mut col_idx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for i in 0..nnz {
        let c = layout.col_off + 4 * i;
        col_idx.push(u32::from_le_bytes(bytes[c..c + 4].try_into().expect("4-byte window")));
        let v = layout.val_off + 4 * i;
        values.push(f32::from_bits(u32::from_le_bytes(
            bytes[v..v + 4].try_into().expect("4-byte window"),
        )));
    }
    Ok(Store::Decoded { row_ptr, col_idx, values })
}

/// The content digest of a CSR view, computed with the oracle's
/// fingerprint recipe (rows, cols, nnz, row pointers, column indices,
/// value bit patterns — in that order).
pub fn digest_of_view(view: CsrRef<'_>) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(view.rows() as u64);
    h.write_u64(view.cols() as u64);
    h.write_u64(view.nnz() as u64);
    for &p in view.row_ptr() {
        h.write_u64(p as u64);
    }
    for &c in view.col_idx() {
        h.write_u64(u64::from(c));
    }
    for &v in view.values() {
        h.write_u64(u64::from(v.to_bits()));
    }
    h.finish()
}

/// Serialises an owned matrix as a slab file.
///
/// # Errors
///
/// Returns [`SparseError::Io`] on filesystem failure.
pub fn write_slab(path: impl AsRef<Path>, m: &CsrMatrix) -> Result<()> {
    let digest = digest_of_view(m.as_ref());
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_header(m.rows(), m.cols(), m.nnz(), digest))?;
    for &p in m.row_ptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &c in m.col_idx() {
        w.write_all(&c.to_le_bytes())?;
    }
    w.write_all(&vec![0u8; pad8(4 * m.nnz()) - 4 * m.nnz()])?;
    for &v in m.values() {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// What [`ingest_matrix_market`] did, for logs and benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// Matrix rows after symmetry expansion.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Stored nonzeros after symmetry expansion.
    pub nnz: usize,
    /// Row-range chunks the entry stream was split into.
    pub chunks: usize,
    /// Size of the source `.mtx` file in bytes.
    pub mtx_bytes: u64,
    /// Size of the produced slab in bytes.
    pub slab_bytes: u64,
    /// Content digest recorded in the slab header.
    pub content_digest: u64,
}

/// Streams a `.mtx` file into a slab with the default residency
/// budget ([`DEFAULT_INGEST_BUDGET`] entries per chunk).
///
/// # Errors
///
/// See [`ingest_matrix_market_with_budget`].
pub fn ingest_matrix_market(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> Result<IngestReport> {
    ingest_matrix_market_with_budget(src, dst, DEFAULT_INGEST_BUDGET)
}

/// Streams a `.mtx` file into a slab without ever holding the whole
/// matrix in memory.
///
/// Pass 1 scans the file once to count per-row entries (O(rows)
/// resident). The row range is then split into chunks of at most
/// `max_resident_entries` nonzeros (always at least one row), and each
/// chunk re-scans the source, gathers its rows, sorts them by column,
/// and appends the column/value sections sequentially. Peak residency
/// is `O(rows + max_resident_entries)` regardless of matrix size. The
/// content digest is finalised by re-reading the written values
/// section, then the header is stamped last — a crashed ingest leaves
/// a file that fails [`SlabMatrix::open`]'s checksum.
///
/// Unlike [`read_matrix_market`](crate::io::read_matrix_market),
/// which sums duplicate coordinates, ingest rejects them: streaming
/// cannot re-count rows after merging, and well-formed SuiteSparse
/// files never contain duplicates.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed input or duplicate
/// coordinates, [`SparseError::IndexOutOfBounds`] for entries outside
/// the declared shape, and [`SparseError::Io`] for stream failures.
pub fn ingest_matrix_market_with_budget(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    max_resident_entries: usize,
) -> Result<IngestReport> {
    let src = src.as_ref();
    let dst = dst.as_ref();
    let budget = max_resident_entries.max(1);

    // Pass 1: per-row entry counts after symmetry expansion.
    let mut scanner = MtxScanner::new(File::open(src)?)?;
    let meta = *scanner.meta();
    let (rows, cols) = (meta.rows, meta.cols);
    let mut row_lens = vec![0u64; rows];
    while let Some((r, c, v)) = scanner.next_entry()? {
        if r >= rows || c >= cols {
            return Err(SparseError::IndexOutOfBounds { row: r, col: c, rows, cols });
        }
        row_lens[r] += 1;
        if let Some((mr, _, _)) = meta.mirror(r, c, v) {
            row_lens[mr] += 1;
        }
    }
    let mut row_ptr = vec![0u64; rows + 1];
    for r in 0..rows {
        row_ptr[r + 1] = row_ptr[r] + row_lens[r];
    }
    drop(row_lens);
    let nnz = usize::try_from(row_ptr[rows]).expect("entry count fits usize by construction");
    let layout = Layout::of(rows, nnz);

    // Lay the file out up front, then write the row_ptr section; the
    // header is stamped only once the digest is complete.
    let out = File::create(dst)?;
    out.set_len(layout.file_len as u64)?;
    drop(out);
    let mut digest = Fnv::new();
    digest.write_u64(rows as u64);
    digest.write_u64(cols as u64);
    digest.write_u64(nnz as u64);
    {
        let mut f = File::options().write(true).open(dst)?;
        f.seek(SeekFrom::Start(layout.row_ptr_off as u64))?;
        let mut w = BufWriter::new(f);
        for &p in &row_ptr {
            digest.write_u64(p);
            w.write_all(&p.to_le_bytes())?;
        }
        w.flush()?;
    }

    // Greedy row-range chunks bounded by the residency budget.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut r0 = 0;
    while r0 < rows {
        let mut r1 = r0;
        let mut resident = 0usize;
        while r1 < rows {
            let len = (row_ptr[r1 + 1] - row_ptr[r1]) as usize;
            if r1 > r0 && resident + len > budget {
                break;
            }
            resident += len;
            r1 += 1;
        }
        ranges.push((r0, r1));
        r0 = r1;
    }

    // Independent handles so the column and value sections both
    // advance sequentially.
    let mut col_w = {
        let mut f = File::options().write(true).open(dst)?;
        f.seek(SeekFrom::Start(layout.col_off as u64))?;
        BufWriter::new(f)
    };
    let mut val_w = {
        let mut f = File::options().write(true).open(dst)?;
        f.seek(SeekFrom::Start(layout.val_off as u64))?;
        BufWriter::new(f)
    };

    for &(r0, r1) in &ranges {
        let base = row_ptr[r0] as usize;
        let count = row_ptr[r1] as usize - base;
        let mut chunk: Vec<(u32, f32)> = vec![(0, 0.0); count];
        let mut cursor: Vec<usize> = (r0..r1).map(|r| row_ptr[r] as usize - base).collect();

        let mut place = |r: usize, c: usize, v: f32| -> Result<()> {
            let end = row_ptr[r + 1] as usize - base;
            let slot = &mut cursor[r - r0];
            if *slot >= end {
                return Err(SparseError::Parse(
                    "slab ingest: source changed between scan passes".into(),
                ));
            }
            chunk[*slot] = (c as u32, v);
            *slot += 1;
            Ok(())
        };
        let mut scanner = MtxScanner::new(File::open(src)?)?;
        while let Some((r, c, v)) = scanner.next_entry()? {
            if (r0..r1).contains(&r) {
                place(r, c, v)?;
            }
            if let Some((mr, mc, mv)) = meta.mirror(r, c, v) {
                if (r0..r1).contains(&mr) {
                    place(mr, mc, mv)?;
                }
            }
        }

        for r in r0..r1 {
            let (lo, hi) = (row_ptr[r] as usize - base, row_ptr[r + 1] as usize - base);
            let seg = &mut chunk[lo..hi];
            seg.sort_unstable_by_key(|&(c, _)| c);
            if let Some(w) = seg.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(SparseError::Parse(format!(
                    "slab ingest: duplicate entry at ({r}, {}); \
                     read_matrix_market + write_slab handles duplicate-summing files",
                    w[0].0
                )));
            }
        }

        for &(c, v) in &chunk {
            digest.write_u64(u64::from(c));
            col_w.write_all(&c.to_le_bytes())?;
            val_w.write_all(&v.to_bits().to_le_bytes())?;
        }
    }
    col_w.write_all(&vec![0u8; pad8(4 * nnz) - 4 * nnz])?;
    col_w.flush()?;
    val_w.flush()?;
    drop((col_w, val_w));

    // FNV is sequential and values hash after all columns, so finish
    // the digest by re-reading the values section we just wrote.
    {
        let mut f = File::open(dst)?;
        f.seek(SeekFrom::Start(layout.val_off as u64))?;
        let mut r = BufReader::new(f);
        let mut buf = [0u8; 4];
        for _ in 0..nnz {
            r.read_exact(&mut buf)?;
            digest.write_u64(u64::from(u32::from_le_bytes(buf)));
        }
    }
    let content_digest = digest.finish();
    {
        let mut f = File::options().write(true).open(dst)?;
        f.write_all(&encode_header(rows, cols, nnz, content_digest))?;
        f.sync_all()?;
    }

    Ok(IngestReport {
        rows,
        cols,
        nnz,
        chunks: ranges.len(),
        mtx_bytes: std::fs::metadata(src)?.len(),
        slab_bytes: layout.file_len as u64,
        content_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, io};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("misam_slab_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_view_eq(slab: &SlabMatrix, owned: &CsrMatrix) {
        let v = slab.as_ref();
        assert_eq!(v.rows(), owned.rows());
        assert_eq!(v.cols(), owned.cols());
        assert_eq!(v.row_ptr(), owned.row_ptr());
        assert_eq!(v.col_idx(), owned.col_idx());
        // Bit-level equality, not approximate.
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(v.values()), bits(owned.values()));
    }

    #[test]
    fn write_open_roundtrip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let m = gen::power_law(200, 150, 6.0, 1.3, 11);
        let path = dir.join("m.msab");
        write_slab(&path, &m).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();
        assert_view_eq(&slab, &m);
        assert_eq!(slab.content_digest(), digest_of_view(m.as_ref()));
        slab.verify().unwrap();
        assert_eq!(slab.to_matrix(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let dir = tmp_dir("empty");
        let m = CsrMatrix::zeros(0, 0);
        let path = dir.join("empty.msab");
        write_slab(&path, &m).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();
        assert_eq!(slab.rows(), 0);
        assert_eq!(slab.nnz(), 0);
        assert_eq!(slab.density(), 0.0);
        slab.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_matches_in_memory_reader() {
        let dir = tmp_dir("ingest");
        let m = gen::uniform_random(64, 48, 0.08, 3);
        let mtx = dir.join("m.mtx");
        io::write_matrix_market_file(&mtx, &m).unwrap();
        let slab_path = dir.join("m.msab");
        let report = ingest_matrix_market(&mtx, &slab_path).unwrap();
        assert_eq!(report.nnz, m.nnz());
        assert_eq!(report.chunks, 1);
        let slab = SlabMatrix::open(&slab_path).unwrap();
        let owned = io::read_matrix_market_file(&mtx).unwrap();
        assert_view_eq(&slab, &owned);
        assert_eq!(report.content_digest, digest_of_view(owned.as_ref()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunked_ingest_is_identical_to_single_pass() {
        let dir = tmp_dir("chunks");
        let m = gen::power_law(120, 90, 5.0, 1.5, 7);
        let mtx = dir.join("m.mtx");
        io::write_matrix_market_file(&mtx, &m).unwrap();
        let owned = io::read_matrix_market_file(&mtx).unwrap();
        for budget in [1, 7, 64, usize::MAX] {
            let slab_path = dir.join(format!("m_{budget}.msab"));
            let report = ingest_matrix_market_with_budget(&mtx, &slab_path, budget).unwrap();
            if budget == 1 {
                // One row per chunk once any row exceeds the budget.
                assert!(report.chunks >= m.rows() / 2);
            }
            let slab = SlabMatrix::open(&slab_path).unwrap();
            assert_view_eq(&slab, &owned);
            slab.verify().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_expands_symmetry_like_the_reader() {
        let dir = tmp_dir("sym");
        for (tag, body) in [
            ("sym", "%%MatrixMarket matrix coordinate real symmetric\n4 4 3\n2 1 5.0\n3 3 7.0\n4 2 -1.5\n"),
            ("skew", "%%MatrixMarket matrix coordinate real skew-symmetric\n4 4 2\n2 1 5.0\n4 3 2.0\n"),
            ("cplx", "%%MatrixMarket matrix coordinate complex general\n3 3 2\n1 1 3.0 4.0\n2 3 0.0 1.0\n"),
        ] {
            let mtx = dir.join(format!("{tag}.mtx"));
            std::fs::write(&mtx, body).unwrap();
            let slab_path = dir.join(format!("{tag}.msab"));
            ingest_matrix_market_with_budget(&mtx, &slab_path, 2).unwrap();
            let slab = SlabMatrix::open(&slab_path).unwrap();
            let owned = io::read_matrix_market_file(&mtx).unwrap();
            assert_view_eq(&slab, &owned);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_rejects_duplicates() {
        let dir = tmp_dir("dup");
        let mtx = dir.join("dup.mtx");
        std::fs::write(
            &mtx,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n1 1 2.0\n",
        )
        .unwrap();
        let err = ingest_matrix_market(&mtx, dir.join("dup.msab")).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_corruption() {
        let dir = tmp_dir("corrupt");
        let m = gen::uniform_random(10, 10, 0.3, 1);
        let path = dir.join("m.msab");
        write_slab(&path, &m).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(SlabMatrix::open(&path).is_err());

        // Flipped header byte breaks the checksum.
        let mut bad = good.clone();
        bad[9] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(SlabMatrix::open(&path).is_err());

        // Truncation breaks the exact-length check.
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        assert!(SlabMatrix::open(&path).is_err());

        // A flipped value byte passes open (cheap checks) but fails
        // verify's digest recomputation.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();
        assert!(slab.verify().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
