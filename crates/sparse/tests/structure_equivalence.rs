//! Bit-identity between the two generator stages: for every family and
//! any seed, the profile synthesized from the structure stage must equal
//! `MatrixProfile::build_with_scheduler_pes` of the materialized matrix
//! — field for field, including the float summaries and every
//! per-residue tally.

use misam_sparse::gen;
use misam_sparse::{LazyMatrix, MatrixProfile};
use proptest::prelude::*;

/// The paper's design PE counts plus awkward small/odd counts that
/// stress the residue-window synthesis.
const COL_PES: &[usize] = &[3, 7, 64, 96];
const ROW_PES: &[usize] = &[7, 96];

fn assert_stage_equivalence(lazy: &LazyMatrix, ctx: &str) {
    let synthesized = MatrixProfile::synthesize(lazy.structure(), COL_PES, ROW_PES);
    let materialized = lazy.materialize();
    let built = MatrixProfile::build_with_scheduler_pes(materialized, COL_PES, ROW_PES);
    assert_eq!(synthesized, built, "synthesized != built for {ctx}");
    assert!(synthesized.describes(materialized), "shape guard for {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_random_profiles_synthesize_exactly(
        rows in 0usize..300,
        cols in 0usize..300,
        density in 0.0f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::uniform_random_lazy(rows, cols, density, seed);
        assert_stage_equivalence(&lazy, "uniform_random");
    }

    #[test]
    fn power_law_profiles_synthesize_exactly(
        rows in 1usize..300,
        cols in 1usize..300,
        avg in 0.5f64..12.0,
        alpha in 1.1f64..1.9,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::power_law_lazy(rows, cols, avg, alpha, seed);
        assert_stage_equivalence(&lazy, "power_law");
    }

    #[test]
    fn rmat_profiles_synthesize_exactly(
        rows in 1usize..300,
        cols in 1usize..300,
        nnz in 0usize..4000,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::rmat_lazy(rows, cols, nnz, (0.57, 0.19, 0.19, 0.05), seed);
        assert_stage_equivalence(&lazy, "rmat");
    }

    #[test]
    fn banded_profiles_synthesize_exactly(
        rows in 0usize..300,
        cols in 0usize..300,
        bw in 0usize..20,
        fill in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::banded_lazy(rows, cols, bw, fill, seed);
        assert_stage_equivalence(&lazy, "banded");
    }

    #[test]
    fn mesh_profiles_synthesize_exactly(
        nx in 1usize..12,
        ny in 1usize..12,
        nz in 1usize..6,
    ) {
        assert_stage_equivalence(&gen::mesh2d_lazy(nx, ny), "mesh2d");
        assert_stage_equivalence(&gen::mesh3d_lazy(nx, ny, nz), "mesh3d");
    }

    #[test]
    fn circuit_profiles_synthesize_exactly(
        rows in 0usize..300,
        cols in 0usize..300,
        avg in 0.0f64..6.0,
        rails in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::circuit_lazy(rows, cols, avg, rails, seed);
        assert_stage_equivalence(&lazy, "circuit");
    }

    #[test]
    fn regular_degree_profiles_synthesize_exactly(
        rows in 0usize..300,
        cols in 0usize..300,
        deg in 0usize..24,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::regular_degree_lazy(rows, cols, deg, seed);
        assert_stage_equivalence(&lazy, "regular_degree");
    }

    #[test]
    fn pruned_dnn_profiles_synthesize_exactly(
        rows in 0usize..200,
        cols in 0usize..300,
        density in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::pruned_dnn_lazy(rows, cols, density, seed);
        assert_stage_equivalence(&lazy, "pruned_dnn");
    }

    #[test]
    fn dense_profiles_synthesize_exactly(
        rows in 0usize..64,
        cols in 0usize..64,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::dense_lazy(rows, cols, seed);
        assert_stage_equivalence(&lazy, "dense");
    }

    #[test]
    fn imbalanced_rows_profiles_synthesize_exactly(
        rows in 1usize..200,
        cols in 1usize..400,
        frac in 0.0f64..0.3,
        heavy in 0usize..200,
        light in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let lazy = gen::imbalanced_rows_lazy(rows, cols, frac, heavy, light, seed);
        assert_stage_equivalence(&lazy, "imbalanced_rows");
    }
}

/// Materializing twice (fresh lazy instances) yields byte-identical
/// matrices: the fill stage is a pure function of (structure, seed).
#[test]
fn fill_stage_is_deterministic() {
    let a = gen::power_law_lazy(120, 90, 6.0, 1.4, 5);
    let b = gen::power_law_lazy(120, 90, 6.0, 1.4, 5);
    assert_eq!(a.structure(), b.structure());
    assert_eq!(*a.materialize(), *b.materialize());
    assert_eq!(*a.materialize(), gen::power_law(120, 90, 6.0, 1.4, 5));
}
