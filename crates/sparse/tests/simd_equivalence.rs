//! Bit-identity between the lane kernels and their always-compiled
//! scalar references, with shapes chosen to stress lane remainders:
//! lengths 0, 1, lane−1, lane, lane+1, and row/column counts that are
//! not a multiple of any lane or PE width. Both forms are compiled in
//! every build, so these tests hold under `--features force-scalar`
//! too (where they compare the scalar form against itself — the
//! dispatchers must still agree).

use misam_sparse::kernels::{
    spmm, spmm_lanes, spmm_scalar, try_spgemm_rowwise, try_spgemm_rowwise_scalar,
    try_spgemm_rowwise_tiled, try_spgemm_rowwise_with, SpaWorkspace, SPA_WIDE_COLS,
};
use misam_sparse::{gen, simd, CsrMatrix};
use proptest::prelude::*;

/// The paper's PE counts plus odd widths that exercise the generic
/// residue path and every remainder branch.
const PES: &[usize] = &[1, 3, 63, 64, 65, 96, 97];

fn assert_bits_eq(a: &[f32], b: &[f32], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()), "{ctx}: values");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Residue length/count folds: chunked lane sweep vs the wrapping
    /// scalar counter, over vector lengths straddling every PE width.
    #[test]
    fn residue_folds_agree(
        len in 0usize..260,
        seed in 0u64..1_000_000,
    ) {
        let vals: Vec<u32> = (0..len as u64)
            .map(|i| ((i * 2654435761 + seed) % 97) as u32)
            .collect();
        for &pes in PES {
            let mut sum_s = vec![0u64; pes];
            let mut max_s = vec![0u32; pes];
            let mut sum_l = vec![0u64; pes];
            let mut max_l = vec![0u32; pes];
            simd::residue_len_fold_scalar(pes, &vals, &mut sum_s, &mut max_s);
            simd::residue_len_fold_lanes(pes, &vals, &mut sum_l, &mut max_l);
            prop_assert_eq!(&sum_s, &sum_l);
            prop_assert_eq!(&max_s, &max_l);

            let mut cs = vec![0u64; pes];
            let mut cl = vec![0u64; pes];
            simd::residue_count_fold_scalar(pes, &vals, &mut cs);
            simd::residue_count_fold_lanes(pes, &vals, &mut cl);
            prop_assert_eq!(&cs, &cl);
        }
    }

    /// Stamp-packed fragment fold vs the per-row histogram reference,
    /// with and without the fused column-occupancy accumulation.
    #[test]
    fn frag_fold_forms_agree(
        rows in 0usize..130,
        cols in 1usize..200,
        density in 0.0f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::uniform_random(rows, cols, density, seed);
        for &pes in PES {
            for with_counts in [false, true] {
                let mut out_s = vec![0u32; pes];
                let mut out_l = vec![0u32; pes];
                let mut cnt_s = vec![0u32; cols];
                let mut cnt_l = vec![0u32; cols];
                simd::frag_fold_scalar(
                    rows, m.row_ptr(), m.col_idx(), pes, &mut out_s,
                    with_counts.then_some(&mut cnt_s[..]),
                );
                simd::frag_fold_lanes(
                    rows, cols, m.row_ptr(), m.col_idx(), pes, &mut out_l,
                    with_counts.then_some(&mut cnt_l[..]),
                );
                prop_assert_eq!(&out_s, &out_l);
                prop_assert_eq!(&cnt_s, &cnt_l);
            }
        }
    }

    /// Row-wise SPA: workspace form (bitset, branchless append,
    /// skip-sort) vs the bool-array reference, and the public dispatcher
    /// vs both — structure and value bits.
    #[test]
    fn spgemm_rowwise_forms_agree(
        m in 1usize..60,
        k in 1usize..50,
        n in 1usize..70,
        da in 0.0f64..0.4,
        db in 0.0f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let a = gen::uniform_random(m, k, da, seed);
        let b = gen::uniform_random(k, n, db, seed ^ 0x9e37);
        let reference = try_spgemm_rowwise_scalar(&a, &b).unwrap();
        let mut ws = SpaWorkspace::new();
        let with_ws = try_spgemm_rowwise_with(&a, &b, &mut ws).unwrap();
        let dispatched = try_spgemm_rowwise(&a, &b).unwrap();
        for (got, ctx) in [(&with_ws, "workspace"), (&dispatched, "dispatch")] {
            prop_assert_eq!(reference.row_ptr(), got.row_ptr());
            prop_assert_eq!(reference.col_idx(), got.col_idx());
            assert_bits_eq(reference.values(), got.values(), ctx);
        }
    }

    /// Column-tiled SPA vs the bool-array reference: the tile loop only
    /// partitions which output columns a pass touches, so structure and
    /// value bits must match at every tile width — including widths of
    /// 1 (one pass per column) and widths larger than B.
    #[test]
    fn spgemm_tiled_forms_agree(
        m in 1usize..50,
        k in 1usize..40,
        n in 1usize..90,
        da in 0.0f64..0.4,
        db in 0.0f64..0.4,
        tile in 1usize..100,
        seed in 0u64..1_000_000,
    ) {
        let a = gen::uniform_random(m, k, da, seed);
        let b = gen::uniform_random(k, n, db, seed ^ 0x51ed);
        let reference = try_spgemm_rowwise_scalar(&a, &b).unwrap();
        let mut ws = SpaWorkspace::new();
        let tiled = try_spgemm_rowwise_tiled(&a, &b, &mut ws, tile).unwrap();
        prop_assert_eq!(reference.row_ptr(), tiled.row_ptr());
        prop_assert_eq!(reference.col_idx(), tiled.col_idx());
        assert_bits_eq(reference.values(), tiled.values(), "tiled");
    }

    /// SpMM: two-element register blocking vs the one-element axpy,
    /// across odd/even A-row lengths and B widths 0–33 (covering f32
    /// lane remainders on every vector width).
    #[test]
    fn spmm_forms_agree(
        rows in 1usize..50,
        k in 1usize..40,
        b_cols in 0usize..34,
        density in 0.0f64..0.6,
        seed in 0u64..1_000_000,
    ) {
        let a = gen::uniform_random(rows, k, density, seed);
        let b: Vec<f32> = (0..k * b_cols).map(|i| ((i * 13 + 5) % 17) as f32 - 8.0).collect();
        let s = spmm_scalar(&a, &b, k, b_cols).unwrap();
        let l = spmm_lanes(&a, &b, k, b_cols).unwrap();
        let d = spmm(&a, &b, k, b_cols).unwrap();
        assert_bits_eq(&s, &l, "spmm lanes");
        assert_bits_eq(&s, &d, "spmm dispatch");
    }
}

/// Deterministic edge lengths the proptest generators only hit by
/// chance: exactly 0, 1, lane−1, lane, lane+1 elements per row around
/// each PE width.
#[test]
fn residue_fold_exact_boundary_lengths() {
    for &pes in PES {
        for extra in [0usize, 1, pes.saturating_sub(1), pes, pes + 1] {
            let vals: Vec<u32> = (0..extra as u32).map(|i| i * 7 % 41).collect();
            let mut sum_s = vec![0u64; pes];
            let mut max_s = vec![0u32; pes];
            let mut sum_l = vec![0u64; pes];
            let mut max_l = vec![0u32; pes];
            simd::residue_len_fold_scalar(pes, &vals, &mut sum_s, &mut max_s);
            simd::residue_len_fold_lanes(pes, &vals, &mut sum_l, &mut max_l);
            assert_eq!(sum_s, sum_l, "pes={pes} len={extra}");
            assert_eq!(max_s, max_l, "pes={pes} len={extra}");
        }
    }
}

/// B wide enough to cross `SPA_WIDE_COLS` routes the workspace form
/// through the column-tiled SPA; the product must still be bit-identical
/// to the bool-array reference and the public dispatcher.
#[test]
fn wide_b_dispatch_is_bit_identical() {
    let a = gen::uniform_random(40, 64, 0.1, 11);
    let b = gen::uniform_random(64, SPA_WIDE_COLS + 257, 0.002, 13);
    assert!(b.cols() >= SPA_WIDE_COLS);
    let reference = try_spgemm_rowwise_scalar(&a, &b).unwrap();
    let mut ws = SpaWorkspace::new();
    let with_ws = try_spgemm_rowwise_with(&a, &b, &mut ws).unwrap();
    let dispatched = try_spgemm_rowwise(&a, &b).unwrap();
    for (got, ctx) in [(&with_ws, "workspace"), (&dispatched, "dispatch")] {
        assert_eq!(reference.row_ptr(), got.row_ptr(), "{ctx}: row_ptr");
        assert_eq!(reference.col_idx(), got.col_idx(), "{ctx}: col_idx");
        assert_bits_eq(reference.values(), got.values(), ctx);
    }
}

/// A single row whose columns all share one residue maximizes the
/// stamp-chain length; a CSR with one-element rows never enters the
/// fragment scratch at all. Both extremes must agree across forms.
#[test]
fn frag_fold_extremes_agree() {
    let mats = [
        CsrMatrix::from_dense(1, 8, &[1.0; 8]),
        gen::uniform_random(65, 97, 0.02, 5),
        CsrMatrix::zeros(7, 7),
    ];
    for m in &mats {
        for &pes in PES {
            let mut out_s = vec![0u32; pes];
            let mut out_l = vec![0u32; pes];
            simd::frag_fold_scalar(m.rows(), m.row_ptr(), m.col_idx(), pes, &mut out_s, None);
            simd::frag_fold_lanes(
                m.rows(),
                m.cols(),
                m.row_ptr(),
                m.col_idx(),
                pes,
                &mut out_l,
                None,
            );
            assert_eq!(out_s, out_l, "pes={pes}");
        }
    }
}
