//! Bit-identity between owned CSR storage and its mmap-backed slab
//! twin: for any generated matrix, the slab written by `write_slab`
//! and reopened through `SlabMatrix::open` must expose the exact same
//! sections, and `MatrixProfile` built from either view — one-shot or
//! through the chunked `build_streaming` fold at any chunk size — must
//! be equal field for field.

use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::{gen, CooMatrix, CsrMatrix, MatrixProfile};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's design PE counts plus awkward small/odd counts that
/// stress the residue-window folds.
const COL_PES: &[usize] = &[3, 7, 64, 96];
const ROW_PES: &[usize] = &[7, 96];

/// Writes `m` as a slab under a collision-free temp name and reopens
/// it through the mmap path.
fn slab_twin(m: &CsrMatrix) -> (std::path::PathBuf, SlabMatrix) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "misam_slab_eq_{}_{}.msab",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    slab::write_slab(&path, m).expect("write slab");
    let s = SlabMatrix::open(&path).expect("open slab");
    (path, s)
}

fn assert_slab_equivalence(m: &CsrMatrix, ctx: &str) {
    let (path, s) = slab_twin(m);
    let (owned, mapped) = (m.as_ref(), s.as_ref());

    // The raw sections round-trip exactly (values compared by bits —
    // NaNs and signed zeros included).
    assert_eq!(owned.row_ptr(), mapped.row_ptr(), "row_ptr differs for {ctx}");
    assert_eq!(owned.col_idx(), mapped.col_idx(), "col_idx differs for {ctx}");
    assert!(
        owned.values().iter().zip(mapped.values()).all(|(a, b)| a.to_bits() == b.to_bits())
            && owned.values().len() == mapped.values().len(),
        "values differ for {ctx}"
    );

    // One profile per storage producer, equal field for field.
    let from_owned = MatrixProfile::build_with_scheduler_pes(m, COL_PES, ROW_PES);
    let from_mapped = MatrixProfile::build_with_scheduler_pes_ref(mapped, COL_PES, ROW_PES);
    assert_eq!(from_owned, from_mapped, "profile owned != mmap for {ctx}");
    assert!(from_mapped.describes_view(owned), "shape guard for {ctx}");

    // The chunked fold is invisible at every chunk size: single rows,
    // awkward primes, one chunk covering everything, and past-the-end.
    for chunk_rows in [1usize, 3, 17, m.rows().max(1), m.rows() + 7] {
        let streamed = MatrixProfile::build_streaming(mapped, chunk_rows, COL_PES, ROW_PES);
        assert_eq!(from_owned, streamed, "chunk {chunk_rows} fold differs for {ctx}");
    }

    // Digest recorded at write time matches a fresh walk of the view.
    assert_eq!(s.content_digest(), slab::digest_of_view(owned), "digest differs for {ctx}");
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn uniform_random_slabs_are_bit_identical(
        rows in 1usize..200,
        cols in 1usize..200,
        density in 0.0f64..0.4,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::uniform_random(rows, cols, density, seed);
        assert_slab_equivalence(&m, "uniform_random");
    }

    #[test]
    fn power_law_slabs_are_bit_identical(
        rows in 1usize..200,
        cols in 1usize..200,
        avg in 0.5f64..12.0,
        alpha in 1.1f64..1.9,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::power_law(rows, cols, avg, alpha, seed);
        assert_slab_equivalence(&m, "power_law");
    }

    #[test]
    fn banded_slabs_are_bit_identical(
        rows in 1usize..200,
        cols in 1usize..200,
        bw in 0usize..20,
        fill in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::banded(rows, cols, bw, fill, seed);
        assert_slab_equivalence(&m, "banded");
    }

    #[test]
    fn circuit_slabs_are_bit_identical(
        rows in 1usize..200,
        cols in 1usize..200,
        avg in 0.0f64..6.0,
        rails in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::circuit(rows, cols, avg, rails, seed);
        assert_slab_equivalence(&m, "circuit");
    }
}

/// The degenerate shapes the strategies above can't reach.
#[test]
fn empty_and_single_row_slabs_round_trip() {
    let empty = CooMatrix::from_triplets(1, 1, []).expect("in bounds").to_csr();
    assert_slab_equivalence(&empty, "empty 1x1");
    let single = CooMatrix::from_triplets(1, 7, [(0, 3, 2.5)]).expect("in bounds").to_csr();
    assert_slab_equivalence(&single, "single entry");
    assert_slab_equivalence(&gen::dense(1, 64, 9), "single dense row");
}
