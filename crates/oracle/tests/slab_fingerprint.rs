//! Cache-key unification across storage producers: for any generated
//! matrix, the fingerprint computed by hashing owned nonzeros, by
//! hashing a borrowed view, and by reading the slab header digest in
//! O(1) must all be equal — and the pair keys built from them must
//! agree too. This is what lets a matrix simulated from memory be a
//! cache hit when later reopened from disk (and vice versa).

use misam_oracle::Fingerprint;
use misam_sim::Operand;
use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::{gen, CsrMatrix};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn slab_twin(m: &CsrMatrix) -> (std::path::PathBuf, SlabMatrix) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "misam_fp_eq_{}_{}.msab",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    slab::write_slab(&path, m).expect("write slab");
    let s = SlabMatrix::open(&path).expect("open slab");
    (path, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fingerprints_match_across_storage_producers(
        rows in 1usize..160,
        cols in 1usize..160,
        avg in 0.5f64..10.0,
        alpha in 1.1f64..1.9,
        seed in 0u64..1_000_000,
    ) {
        let m = gen::power_law(rows, cols, avg, alpha, seed);
        let (path, s) = slab_twin(&m);
        let owned = Fingerprint::of_matrix(&m);
        prop_assert_eq!(owned, Fingerprint::of_ref(m.as_ref()));
        prop_assert_eq!(owned, Fingerprint::of_ref(s.as_ref()));
        // The O(1) header read, not a rehash — still the same key.
        prop_assert_eq!(owned, Fingerprint::of_slab(&s));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pair_keys_match_across_storage_producers(
        rows in 1usize..120,
        inner in 1usize..120,
        b_cols in 1usize..96,
        density in 0.0f64..0.3,
        seed in 0u64..1_000_000,
    ) {
        let a = gen::uniform_random(rows, inner, density, seed);
        let bm = gen::uniform_random(inner, b_cols, density, seed ^ 0x5A5A);
        let (path, s) = slab_twin(&a);
        let dense = Operand::Dense { rows: inner, cols: b_cols };
        prop_assert_eq!(
            Fingerprint::of_pair(&a, dense),
            Fingerprint::of_slab_pair(&s, dense)
        );
        prop_assert_eq!(
            Fingerprint::of_pair(&a, Operand::Sparse(&bm)),
            Fingerprint::of_slab_pair(&s, Operand::Sparse(&bm))
        );
        // Different operands must not collide onto one key.
        prop_assert_ne!(
            Fingerprint::of_slab_pair(&s, dense),
            Fingerprint::of_slab_pair(&s, Operand::Sparse(&bm))
        );
        std::fs::remove_file(&path).ok();
    }
}
