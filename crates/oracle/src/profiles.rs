//! Shared, memoized [`MatrixProfile`] store.
//!
//! Every executor that wants a profile asks this store by the matrix's
//! structural [`Fingerprint`]; the O(nnz) profiling pass then runs
//! **exactly once per distinct matrix per process**, no matter how many
//! experiment layers, designs, or threads revisit it. The store rides
//! on the same exactly-once [`MemoCache`] as the oracle's report cache,
//! so concurrent fan-out workers block on a single in-flight build
//! instead of duplicating it.
//!
//! Profiles are built with residue tallies for the standard design PE
//! counts ([`misam_sim::design_pe_counts`]), which is what lets the
//! simulation engine schedule every uniform-cost pass as an O(PEs)
//! fold (see `misam_sim::schedule::schedule_uniform_profiled`).

use crate::cache::{CacheStats, MemoCache};
use crate::Fingerprint;
use misam_features::{PairFeatures, TileConfig};
use misam_sim::{design_pe_counts, design_row_pe_counts, Operand};
use misam_sparse::slab::SlabMatrix;
use misam_sparse::{CsrMatrix, CsrRef, LazyMatrix, LazyOperand, MatrixProfile, Structure};
use std::sync::{Arc, OnceLock};

/// A memoized profile store keyed by [`Fingerprint::of_matrix`].
#[derive(Debug, Default)]
pub struct ProfileStore {
    cache: MemoCache<Arc<MatrixProfile>>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile of `m`, built (with standard-design PE tallies) on
    /// first sight of this fingerprint and shared thereafter.
    pub fn of_matrix(&self, m: &CsrMatrix) -> Arc<MatrixProfile> {
        self.keyed_build(Fingerprint::of_matrix(m), m.as_ref())
    }

    /// The profile of a borrowed CSR view, keyed by [`Fingerprint::of_ref`]
    /// — the same key an owned copy of the matrix would use, so owned and
    /// file-backed views of one matrix share a single cached build.
    pub fn of_ref(&self, m: CsrRef<'_>) -> Arc<MatrixProfile> {
        self.keyed_build(Fingerprint::of_ref(m), m)
    }

    /// The profile of an on-disk slab matrix. The cache key is the slab
    /// header's content digest — **O(1)**, no pass over the nonzeros —
    /// and equals [`Fingerprint::of_matrix`] of the owned twin, so a
    /// matrix profiled from memory is a cache hit when later opened from
    /// disk (and vice versa).
    pub fn of_slab(&self, m: &SlabMatrix) -> Arc<MatrixProfile> {
        self.keyed_build(Fingerprint::of_slab(m), m.as_ref())
    }

    fn keyed_build(&self, fp: Fingerprint, m: CsrRef<'_>) -> Arc<MatrixProfile> {
        self.cache.get_or_compute(fp, 0, || {
            Arc::new(MatrixProfile::build_with_scheduler_pes_ref(
                m,
                &design_pe_counts(),
                &design_row_pe_counts(),
            ))
        })
    }

    /// The profile of a sparse operand; `None` for dense operands,
    /// whose structure is fully described by their shape.
    pub fn of_operand(&self, b: Operand<'_>) -> Option<Arc<MatrixProfile>> {
        match b {
            Operand::Sparse(m) => Some(self.of_matrix(m)),
            Operand::Dense { .. } => None,
        }
    }

    /// The profile of a [`Structure`], **synthesized** in O(rows + cols)
    /// — no element arrays are ever built — on first sight of this
    /// structural fingerprint and shared thereafter. Bit-identical to
    /// [`ProfileStore::of_matrix`] on the materialized matrix (the
    /// two-stage generator contract), but keyed value-blind, so every
    /// fill of the same pattern shares one entry.
    pub fn of_structure(&self, s: &Structure) -> Arc<MatrixProfile> {
        let fp = Fingerprint::of_structure(s);
        self.cache.get_or_compute(fp, 0, || {
            Arc::new(MatrixProfile::synthesize(s, &design_pe_counts(), &design_row_pe_counts()))
        })
    }

    /// The profile of a lazy matrix — profiles are value-blind, so this
    /// is [`ProfileStore::of_structure`] of its structure stage and
    /// never triggers materialization.
    pub fn of_lazy(&self, m: &LazyMatrix) -> Arc<MatrixProfile> {
        self.of_structure(m.structure())
    }

    /// Pair features of a lazy operand pair, computed entirely from
    /// synthesized profiles and B's structure: no CSR is materialized.
    /// Bit-identical to [`ProfileStore::pair_features`] on the
    /// materialized pair.
    pub fn pair_features_lazy(
        &self,
        a: &LazyMatrix,
        b: LazyOperand<'_>,
        cfg: &TileConfig,
    ) -> PairFeatures {
        let ap = self.of_lazy(a);
        match b {
            LazyOperand::Sparse(bm) => {
                let bp = self.of_lazy(bm);
                PairFeatures::from_profiles_structural(&ap, &bp, bm.structure(), cfg)
            }
            LazyOperand::Dense { rows, cols } => {
                PairFeatures::from_profile_dense_b(&ap, rows, cols, cfg)
            }
        }
    }

    /// Pair features computed from cached profiles: the structural pass
    /// over each operand is shared with simulation instead of redone.
    pub fn pair_features(&self, a: &CsrMatrix, b: Operand<'_>, cfg: &TileConfig) -> PairFeatures {
        let ap = self.of_matrix(a);
        match b {
            Operand::Sparse(bm) => {
                let bp = self.of_matrix(bm);
                PairFeatures::from_profiles(&ap, &bp, bm, cfg)
            }
            Operand::Dense { rows, cols } => {
                PairFeatures::from_profile_dense_b(&ap, rows, cols, cfg)
            }
        }
    }

    /// Hit/miss counters; `misses` equals the number of profiling
    /// passes actually executed.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached profile and zeroes the counters.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

/// The process-wide profile store every executor shares.
pub fn global() -> &'static ProfileStore {
    static GLOBAL: OnceLock<ProfileStore> = OnceLock::new();
    GLOBAL.get_or_init(ProfileStore::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;
    use misam_sparse::gen;

    #[test]
    fn one_build_per_distinct_matrix() {
        let store = ProfileStore::new();
        let a = gen::power_law(128, 128, 4.0, 1.4, 1);
        let same = gen::power_law(128, 128, 4.0, 1.4, 1);
        let other = gen::power_law(128, 128, 4.0, 1.4, 2);

        let p1 = store.of_matrix(&a);
        let p2 = store.of_matrix(&same);
        let p3 = store.of_matrix(&other);
        assert!(Arc::ptr_eq(&p1, &p2), "identical matrices share one profile");
        assert!(!Arc::ptr_eq(&p1, &p3));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
    }

    #[test]
    fn slab_and_owned_views_share_one_cache_entry() {
        let store = ProfileStore::new();
        let a = gen::power_law(160, 120, 4.0, 1.4, 13);
        let dir =
            std::env::temp_dir().join(format!("misam_oracle_profiles_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.msab");
        misam_sparse::slab::write_slab(&path, &a).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();

        let from_owned = store.of_matrix(&a);
        let from_slab = store.of_slab(&slab);
        let from_ref = store.of_ref(slab.as_ref());
        assert!(Arc::ptr_eq(&from_owned, &from_slab), "slab digest hits the owned entry");
        assert!(Arc::ptr_eq(&from_owned, &from_ref));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profiles_carry_standard_design_tallies() {
        let store = ProfileStore::new();
        let a = gen::uniform_random(64, 64, 0.1, 3);
        let p = store.of_matrix(&a);
        for pes in design_pe_counts() {
            assert!(p.tally(pes).is_some(), "missing tally for {pes} PEs");
        }
        for pes in design_row_pe_counts() {
            assert!(
                p.tally(pes).unwrap().has_row_side(),
                "row-scheduler designs need fragment maxima for {pes} PEs"
            );
        }
    }

    #[test]
    fn dense_operands_need_no_profile() {
        let store = ProfileStore::new();
        assert!(store.of_operand(Operand::Dense { rows: 8, cols: 8 }).is_none());
        assert_eq!(store.stats().lookups(), 0);
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        let store = ProfileStore::new();
        let a = gen::power_law(256, 256, 6.0, 1.4, 9);
        let profiles: Vec<_> = pool::par_map_with(&[(); 8], 8, |_| store.of_matrix(&a));
        for p in &profiles {
            assert!(Arc::ptr_eq(p, &profiles[0]));
        }
        let s = store.stats();
        assert_eq!(s.misses, 1, "profiling pass ran exactly once");
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn pair_features_match_direct_extraction() {
        let store = ProfileStore::new();
        let a = gen::power_law(200, 150, 5.0, 1.4, 4);
        let bm = gen::uniform_random(150, 90, 0.2, 5);
        let cfg = TileConfig::default();
        assert_eq!(
            store.pair_features(&a, Operand::Sparse(&bm), &cfg),
            PairFeatures::extract(&a, &bm, &cfg)
        );
        assert_eq!(
            store.pair_features(&a, Operand::Dense { rows: 150, cols: 64 }, &cfg),
            PairFeatures::extract_dense_b(&a, 150, 64, &cfg)
        );
    }
}
