//! [`Executor`] implementations for every cost model in the workspace.

use crate::{profiles, Executor};
use misam_baselines::cpu::CpuModel;
use misam_baselines::gpu::GpuModel;
use misam_baselines::trapezoid::{Dataflow, TrapezoidSim};
use misam_baselines::BaselineReport;
use misam_features::TileConfig;
use misam_sim::{
    simulate_profiled, simulate_profiled_ref, simulate_structural, simulate_with_config_profiled,
    DesignConfig, DesignId, Operand, SimReport, StructuralOperand,
};
use misam_sparse::slab::SlabMatrix;
use misam_sparse::{CsrMatrix, LazyMatrix, LazyOperand};

/// The FPGA cycle-level simulator over the four paper designs.
/// Target `i` is `DesignId::ALL[i]`.
///
/// Evaluation goes through the shared [`profiles`] store: each operand
/// is structurally profiled once per process, after which every design
/// and pass width schedules as a closed-form fold (bit-identical to
/// `misam_sim::simulate`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FpgaSim;

impl Executor for FpgaSim {
    type Report = SimReport;

    fn targets(&self) -> usize {
        DesignId::ALL.len()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> SimReport {
        let store = profiles::global();
        let ap = store.of_matrix(a);
        let bp = store.of_operand(b);
        simulate_profiled(a, &ap, b, bp.as_deref(), DesignId::ALL[target])
    }
}

impl FpgaSim {
    /// Evaluates a lazy operand pair on `DesignId::ALL[target]` through
    /// the **structural** simulation path: profiles are synthesized in
    /// O(rows + cols) from the structure stage and, for the standard
    /// designs, no CSR is ever materialized. When a pass has no closed
    /// form (custom tallies, gapped cost tables) the operands fall back
    /// to materialization — counted by
    /// `misam_sparse::lazy::materialization_stats` — so the report is
    /// always produced, bit-identical to [`Executor::execute`] on the
    /// materialized pair.
    ///
    /// # Panics
    ///
    /// Panics if `target >= 4` or operand shapes disagree.
    pub fn execute_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>, target: usize) -> SimReport {
        let id = DesignId::ALL[target];
        let store = profiles::global();
        let ap = store.of_lazy(a);
        match b {
            LazyOperand::Dense { rows, cols } => {
                simulate_structural(a.structure(), &ap, StructuralOperand::Dense { rows, cols }, id)
                    .unwrap_or_else(|| {
                        simulate_profiled(
                            a.materialize(),
                            &ap,
                            Operand::Dense { rows, cols },
                            None,
                            id,
                        )
                    })
            }
            LazyOperand::Sparse(bm) => {
                let bp = store.of_lazy(bm);
                simulate_structural(a.structure(), &ap, StructuralOperand::Sparse(&bp), id)
                    .unwrap_or_else(|| {
                        simulate_profiled(
                            a.materialize(),
                            &ap,
                            Operand::Sparse(bm.materialize()),
                            Some(&bp),
                            id,
                        )
                    })
            }
        }
    }

    /// [`FpgaSim::execute_lazy`] across all four designs, in order.
    pub fn execute_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        (0..self.targets()).map(|t| self.execute_lazy(a, b, t)).collect()
    }

    /// Evaluates an mmap-backed slab matrix on `DesignId::ALL[target]`
    /// without ever copying it into an owned [`CsrMatrix`]: the profile
    /// comes from the store keyed by the slab's O(1) header digest, and
    /// the simulation walks the mapped view directly. Bit-identical to
    /// [`Executor::execute`] on the owned twin.
    ///
    /// # Panics
    ///
    /// Panics if `target >= 4` or operand shapes disagree.
    pub fn execute_slab(&self, a: &SlabMatrix, b: Operand<'_>, target: usize) -> SimReport {
        let store = profiles::global();
        let ap = store.of_slab(a);
        let bp = store.of_operand(b);
        simulate_profiled_ref(a.as_ref(), &ap, b, bp.as_deref(), DesignId::ALL[target])
    }
}

/// The closed-form analytic latency estimator (`misam_sim::analytic`)
/// over the four paper designs; reports estimated seconds.
#[derive(Debug, Clone, Default)]
pub struct AnalyticFpga {
    /// Tiling geometry used for feature extraction.
    pub tile: TileConfig,
}

impl Executor for AnalyticFpga {
    type Report = f64;

    fn targets(&self) -> usize {
        DesignId::ALL.len()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> f64 {
        let features = profiles::global().pair_features(a, b, &self.tile);
        misam_sim::analytic::estimate_time_s(&features, DesignId::ALL[target])
    }
}

/// The cycle-level simulator over an explicit set of design
/// configurations — the ablation harness's mechanism-knockout sweeps.
#[derive(Debug, Clone)]
pub struct CustomFpga {
    /// One target per configuration, in order.
    pub configs: Vec<DesignConfig>,
}

impl CustomFpga {
    /// An executor over the given configurations.
    pub fn new(configs: Vec<DesignConfig>) -> Self {
        CustomFpga { configs }
    }
}

impl Executor for CustomFpga {
    type Report = SimReport;

    fn targets(&self) -> usize {
        self.configs.len()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> SimReport {
        let store = profiles::global();
        let ap = store.of_matrix(a);
        let bp = store.of_operand(b);
        simulate_with_config_profiled(a, &ap, b, bp.as_deref(), &self.configs[target])
    }
}

/// The MKL-class CPU baseline (single target).
#[derive(Debug, Clone, Default)]
pub struct CpuExecutor {
    /// Roofline parameters of the modeled CPU.
    pub model: CpuModel,
}

impl Executor for CpuExecutor {
    type Report = BaselineReport;

    fn targets(&self) -> usize {
        1
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> BaselineReport {
        assert_eq!(target, 0, "CPU baseline has a single target");
        match b {
            Operand::Sparse(bm) => self.model.spgemm(a, bm),
            Operand::Dense { rows, cols } => self.model.spmm(a, rows, cols),
        }
    }
}

/// The cuSPARSE-class GPU baseline (single target).
#[derive(Debug, Clone, Default)]
pub struct GpuExecutor {
    /// Roofline parameters of the modeled GPU.
    pub model: GpuModel,
}

impl Executor for GpuExecutor {
    type Report = BaselineReport;

    fn targets(&self) -> usize {
        1
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> BaselineReport {
        assert_eq!(target, 0, "GPU baseline has a single target");
        match b {
            Operand::Sparse(bm) => self.model.spgemm(a, bm),
            Operand::Dense { rows, cols } => self.model.spmm(a, rows, cols),
        }
    }
}

/// The Trapezoid ASIC's three fixed dataflows.
/// Target `i` is `Dataflow::ALL[i]`.
#[derive(Debug, Clone, Default)]
pub struct TrapezoidExecutor {
    /// The modeled ASIC.
    pub sim: TrapezoidSim,
}

impl Executor for TrapezoidExecutor {
    type Report = BaselineReport;

    fn targets(&self) -> usize {
        Dataflow::ALL.len()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> BaselineReport {
        let dataflow = Dataflow::ALL[target];
        match b {
            Operand::Sparse(bm) => self.sim.run(a, bm, dataflow),
            Operand::Dense { rows, cols } => self.sim.run_dense_b(a, rows, cols, dataflow),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sim::simulate;
    use misam_sparse::gen;

    fn pair() -> (CsrMatrix, CsrMatrix) {
        (gen::power_law(256, 256, 4.0, 1.4, 1), gen::power_law(256, 128, 4.0, 1.4, 2))
    }

    #[test]
    fn fpga_executor_matches_direct_simulate() {
        let (a, b) = pair();
        let ex = FpgaSim;
        for (i, id) in DesignId::ALL.iter().enumerate() {
            let via_trait = ex.execute(&a, Operand::Sparse(&b), i);
            let direct = simulate(&a, Operand::Sparse(&b), *id);
            assert_eq!(via_trait, direct);
        }
        assert_eq!(ex.execute_all(&a, Operand::Sparse(&b)).len(), 4);
    }

    #[test]
    fn analytic_executor_estimates_all_designs() {
        let (a, b) = pair();
        let ex = AnalyticFpga::default();
        for t in 0..ex.targets() {
            let est = ex.execute(&a, Operand::Sparse(&b), t);
            assert!(est > 0.0 && est.is_finite());
        }
    }

    #[test]
    fn custom_fpga_follows_its_config_list() {
        let (a, b) = pair();
        let ex = CustomFpga::new(vec![DesignConfig::of(DesignId::D2)]);
        assert_eq!(ex.targets(), 1);
        let got = ex.execute(&a, Operand::Sparse(&b), 0);
        assert_eq!(got, simulate(&a, Operand::Sparse(&b), DesignId::D2));
    }

    #[test]
    fn baselines_handle_both_operand_kinds() {
        let (a, b) = pair();
        for report in [
            CpuExecutor::default().execute(&a, Operand::Sparse(&b), 0),
            CpuExecutor::default().execute(&a, Operand::Dense { rows: 256, cols: 64 }, 0),
            GpuExecutor::default().execute(&a, Operand::Sparse(&b), 0),
            GpuExecutor::default().execute(&a, Operand::Dense { rows: 256, cols: 64 }, 0),
        ] {
            assert!(report.time_s > 0.0 && report.energy_j > 0.0);
        }
    }

    #[test]
    fn trapezoid_covers_its_three_dataflows() {
        let (a, b) = pair();
        let ex = TrapezoidExecutor::default();
        let all = ex.execute_all(&a, Operand::Sparse(&b));
        assert_eq!(all.len(), 3);
        for (i, df) in Dataflow::ALL.iter().enumerate() {
            assert_eq!(all[i], ex.sim.run(&a, &b, *df));
        }
    }
}
