//! The memoizing oracle service: any [`Executor`] fronted by a
//! [`MemoCache`], plus the process-global FPGA oracle every fan-out
//! site shares.

use crate::cache::{CacheStats, MemoCache};
use crate::executors::FpgaSim;
use crate::{Executor, Fingerprint};
use misam_sim::{Operand, SimReport};
use misam_sparse::slab::SlabMatrix;
use misam_sparse::{CsrMatrix, LazyMatrix, LazyOperand};
use std::sync::OnceLock;

/// A memoizing front for any [`Executor`].
///
/// `SimOracle` is itself an `Executor`, so call sites written against
/// the trait work identically with or without caching. Results are
/// keyed by ([`Fingerprint::of_pair`], target), so a given (operand
/// pair, target) is evaluated by the inner executor at most once per
/// oracle — and, through [`global`], at most once per process.
#[derive(Debug, Default)]
pub struct SimOracle<E: Executor> {
    inner: E,
    cache: MemoCache<E::Report>,
}

impl<E: Executor> SimOracle<E> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: E) -> Self {
        SimOracle { inner, cache: MemoCache::new() }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Hit/miss counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached report and zeroes the counters.
    pub fn clear(&self) {
        self.cache.clear();
    }
}

impl<E: Executor> Executor for SimOracle<E> {
    type Report = E::Report;

    fn targets(&self) -> usize {
        self.inner.targets()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> Self::Report {
        let fp = Fingerprint::of_pair(a, b);
        self.cache.get_or_compute(fp, target, || self.inner.execute(a, b, target))
    }

    fn execute_all(&self, a: &CsrMatrix, b: Operand<'_>) -> Vec<Self::Report> {
        // Fingerprint once for the whole target sweep.
        let fp = Fingerprint::of_pair(a, b);
        (0..self.targets())
            .map(|t| self.cache.get_or_compute(fp, t, || self.inner.execute(a, b, t)))
            .collect()
    }
}

impl SimOracle<FpgaSim> {
    /// Memoized [`FpgaSim::execute_lazy`]: the structure-first oracle
    /// entry of the streaming corpus pipeline. Keys are lazy pair
    /// fingerprints ([`Fingerprint::of_lazy_pair`]), computed from
    /// structure stages alone, so cache lookups never materialize.
    pub fn execute_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>, target: usize) -> SimReport {
        let fp = Fingerprint::of_lazy_pair(a, b);
        self.cache.get_or_compute(fp, target, || self.inner.execute_lazy(a, b, target))
    }

    /// [`SimOracle::execute_lazy`] across all four designs, in order,
    /// fingerprinting once for the whole sweep.
    pub fn execute_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        let fp = Fingerprint::of_lazy_pair(a, b);
        (0..self.targets())
            .map(|t| self.cache.get_or_compute(fp, t, || self.inner.execute_lazy(a, b, t)))
            .collect()
    }

    /// Memoized [`FpgaSim::execute_slab`]: the out-of-core oracle entry.
    /// The cache key ([`Fingerprint::of_slab_pair`]) reads A's digest
    /// from the slab header in O(1) and equals the owned pair's key, so
    /// a matrix simulated from memory is a cache hit when later opened
    /// from disk — and vice versa.
    pub fn execute_slab(&self, a: &SlabMatrix, b: Operand<'_>, target: usize) -> SimReport {
        let fp = Fingerprint::of_slab_pair(a, b);
        self.cache.get_or_compute(fp, target, || self.inner.execute_slab(a, b, target))
    }

    /// [`SimOracle::execute_slab`] across all four designs, in order,
    /// fingerprinting once for the whole sweep.
    pub fn execute_all_slab(&self, a: &SlabMatrix, b: Operand<'_>) -> Vec<SimReport> {
        let fp = Fingerprint::of_slab_pair(a, b);
        (0..self.targets())
            .map(|t| self.cache.get_or_compute(fp, t, || self.inner.execute_slab(a, b, t)))
            .collect()
    }
}

/// The process-wide FPGA simulation oracle.
///
/// Every fan-out site (corpus labeling, workload sweeps, routing,
/// streaming) routes through this instance, so a (matrix, design) pair
/// is cycle-simulated exactly once per process no matter how many
/// layers revisit it.
pub fn global() -> &'static SimOracle<FpgaSim> {
    static GLOBAL: OnceLock<SimOracle<FpgaSim>> = OnceLock::new();
    GLOBAL.get_or_init(|| SimOracle::new(FpgaSim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;
    use misam_sim::{simulate, DesignId};
    use misam_sparse::{gen, CsrMatrix};

    #[test]
    fn oracle_matches_inner_and_caches() {
        let a = gen::power_law(128, 128, 4.0, 1.4, 11);
        let b = gen::power_law(128, 96, 4.0, 1.4, 12);
        let oracle = SimOracle::new(FpgaSim);

        let first = oracle.execute_all(&a, Operand::Sparse(&b));
        for (i, id) in DesignId::ALL.iter().enumerate() {
            assert_eq!(first[i], simulate(&a, Operand::Sparse(&b), *id));
        }
        let s = oracle.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 4, 4));

        let second = oracle.execute_all(&a, Operand::Sparse(&b));
        assert_eq!(first, second);
        let s = oracle.stats();
        assert_eq!((s.hits, s.misses, s.entries), (4, 4, 4));
    }

    #[test]
    fn clear_forgets_reports() {
        let a = gen::uniform_random(64, 64, 0.1, 5);
        let oracle = SimOracle::new(FpgaSim);
        oracle.execute(&a, Operand::Dense { rows: 64, cols: 32 }, 0);
        oracle.clear();
        assert_eq!(oracle.stats(), CacheStats::default());
        oracle.execute(&a, Operand::Dense { rows: 64, cols: 32 }, 0);
        assert_eq!(oracle.stats().misses, 1);
    }

    #[test]
    fn parallel_sweep_simulates_each_pair_once() {
        // The tentpole invariant: fan the same suite out across threads
        // twice; every (fingerprint, design) still computes only once.
        let suite: Vec<(CsrMatrix, CsrMatrix)> = (0..6)
            .map(|s| {
                (gen::power_law(96, 96, 3.0, 1.4, s), gen::power_law(96, 64, 3.0, 1.4, 100 + s))
            })
            .collect();
        let oracle = SimOracle::new(FpgaSim);

        let round1 =
            pool::par_map_with(&suite, 4, |(a, b)| oracle.execute_all(a, Operand::Sparse(b)));
        let round2 =
            pool::par_map_with(&suite, 4, |(a, b)| oracle.execute_all(a, Operand::Sparse(b)));

        assert_eq!(round1, round2);
        let s = oracle.stats();
        assert_eq!(s.misses, 6 * 4, "each (pair, design) simulated exactly once");
        assert_eq!(s.entries, 6 * 4);
        assert_eq!(s.hits, 6 * 4, "second round fully cached");
    }

    #[test]
    fn lazy_oracle_matches_eager_and_never_materializes() {
        use misam_sparse::gen;
        let a = gen::power_law_lazy(200, 200, 4.0, 1.4, 31);
        let bm = gen::power_law_lazy(200, 150, 4.0, 1.4, 32);
        let oracle = SimOracle::new(FpgaSim);

        let before = misam_sparse::lazy::materialization_stats();
        let lazy_sparse = oracle.execute_all_lazy(&a, LazyOperand::Sparse(&bm));
        let lazy_dense = oracle.execute_all_lazy(&a, LazyOperand::Dense { rows: 200, cols: 64 });
        let after = misam_sparse::lazy::materialization_stats();
        assert_eq!(
            before.materialized, after.materialized,
            "structural labeling must not materialize CSRs"
        );

        // Bit-identical to the eager element-walk path on the
        // materialized pair (and to a fresh oracle's eager answers).
        let eager = SimOracle::new(FpgaSim);
        assert_eq!(
            lazy_sparse,
            eager.execute_all(a.materialize(), Operand::Sparse(bm.materialize()))
        );
        assert_eq!(
            lazy_dense,
            eager.execute_all(a.materialize(), Operand::Dense { rows: 200, cols: 64 })
        );

        // Second lazy sweep is fully cached.
        let hits_before = oracle.stats().hits;
        let again = oracle.execute_all_lazy(&a, LazyOperand::Sparse(&bm));
        assert_eq!(again, lazy_sparse);
        assert_eq!(oracle.stats().hits, hits_before + 4);
    }

    #[test]
    fn slab_oracle_matches_owned_and_shares_cache_entries() {
        let a = gen::power_law(144, 144, 4.0, 1.4, 21);
        let dir = std::env::temp_dir().join(format!("misam_oracle_service_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.msab");
        misam_sparse::slab::write_slab(&path, &a).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();

        let oracle = SimOracle::new(FpgaSim);
        let b = Operand::Dense { rows: 144, cols: 64 };
        let from_slab = oracle.execute_all_slab(&slab, b);
        // Bit-identical to the owned path, and the owned sweep is a
        // full cache hit: slab and owned keys coincide.
        let from_owned = oracle.execute_all(&a, b);
        assert_eq!(from_slab, from_owned);
        let s = oracle.stats();
        assert_eq!((s.hits, s.misses, s.entries), (4, 4, 4));
        assert_eq!(oracle.execute_slab(&slab, b, 2), from_slab[2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn global_oracle_is_one_instance() {
        let p1: *const _ = global();
        let p2: *const _ = global();
        assert_eq!(p1, p2);
        assert_eq!(global().targets(), DesignId::ALL.len());
    }
}
