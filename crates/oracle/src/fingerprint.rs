//! Cheap structural identity for operand pairs.
//!
//! A corpus run touches the same (matrix, design) pairs from several
//! experiment layers; re-simulating is seconds, fingerprinting is an
//! `O(nnz)` hash. The fingerprint covers dimensions, the sparsity
//! pattern, and value bits, so two operands collide only if they would
//! simulate identically anyway (modulo a 2⁻⁶⁴ hash collision, which at
//! corpus scale — tens of thousands of matrices — is negligible).

use misam_sim::Operand;
use misam_sparse::slab::SlabMatrix;
use misam_sparse::{CsrMatrix, CsrRef, LazyMatrix, LazyOperand, Structure};

/// A 64-bit structural digest of an `(A, B)` operand pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // FNV-1a over the 8 bytes, unrolled by word for speed.
        let mut h = self.0;
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h = (h ^ ((v >> shift) & 0xff)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

impl Fingerprint {
    /// Digest of a single CSR matrix.
    pub fn of_matrix(m: &CsrMatrix) -> Fingerprint {
        Fingerprint::of_ref(m.as_ref())
    }

    /// Digest of a borrowed CSR view — identical to
    /// [`Fingerprint::of_matrix`] on the owning matrix, whatever storage
    /// backs the view.
    pub fn of_ref(m: CsrRef<'_>) -> Fingerprint {
        let mut h = Fnv::new();
        h.write_u64(m.rows() as u64);
        h.write_u64(m.cols() as u64);
        h.write_u64(m.nnz() as u64);
        for &p in m.row_ptr() {
            h.write_u64(p as u64);
        }
        for &c in m.col_idx() {
            h.write_u64(c as u64);
        }
        for &v in m.values() {
            h.write_u64(v.to_bits() as u64);
        }
        Fingerprint(h.0)
    }

    /// Digest of an on-disk slab matrix — **O(1)**: the slab header
    /// stores the content digest computed by the same FNV recipe during
    /// ingest, so this equals [`Fingerprint::of_matrix`] of the owned
    /// twin without touching the element arrays. The shared key space
    /// is what lets file-backed and in-memory copies of one matrix hit
    /// the same cache entries.
    pub fn of_slab(m: &SlabMatrix) -> Fingerprint {
        Fingerprint(m.content_digest())
    }

    /// Digest of one operand (dense operands hash by shape alone — the
    /// simulators model dense B as all-nonzero, so shape is identity).
    pub fn of_operand(b: Operand<'_>) -> Fingerprint {
        match b {
            Operand::Dense { rows, cols } => {
                let mut h = Fnv::new();
                h.write_u64(0xdeb5_e000_0000_0001);
                h.write_u64(rows as u64);
                h.write_u64(cols as u64);
                Fingerprint(h.0)
            }
            Operand::Sparse(m) => Fingerprint::of_matrix(m),
        }
    }

    /// Digest of an `(A, B)` pair — the cache key component.
    pub fn of_pair(a: &CsrMatrix, b: Operand<'_>) -> Fingerprint {
        let fa = Fingerprint::of_matrix(a);
        let fb = Fingerprint::of_operand(b);
        let mut h = Fnv::new();
        h.write_u64(fa.0);
        h.write_u64(fb.0);
        Fingerprint(h.0)
    }

    /// Digest of a `(slab A, B)` pair: equals [`Fingerprint::of_pair`]
    /// with A's owned twin, but A's half costs O(1) (the slab header
    /// digest) instead of a hash over the nonzeros.
    pub fn of_slab_pair(a: &SlabMatrix, b: Operand<'_>) -> Fingerprint {
        let fa = Fingerprint::of_slab(a);
        let fb = Fingerprint::of_operand(b);
        let mut h = Fnv::new();
        h.write_u64(fa.0);
        h.write_u64(fb.0);
        Fingerprint(h.0)
    }

    /// Digest of a matrix [`Structure`] — value-blind, `O(rows)`.
    ///
    /// This keys the *profile* store: profiles depend only on the
    /// sparsity pattern, so lazily generated matrices that share a
    /// structure share one synthesized profile. The key space is
    /// disjoint from [`Fingerprint::of_matrix`] by a variant sentinel.
    pub fn of_structure(s: &Structure) -> Fingerprint {
        let mut h = Fnv::new();
        h.write_u64(0x57a6_c000_0000_0001);
        h.write_u64(s.rows() as u64);
        h.write_u64(s.cols() as u64);
        match s {
            Structure::Runs(rr) => {
                h.write_u64(1);
                for r in 0..rr.rows() {
                    h.write_u64(rr.starts()[r] as u64);
                    h.write_u64(rr.lens()[r] as u64);
                }
            }
            Structure::Mesh2d { nx, ny } => {
                h.write_u64(2);
                h.write_u64(*nx as u64);
                h.write_u64(*ny as u64);
            }
            Structure::Mesh3d { nx, ny, nz } => {
                h.write_u64(3);
                h.write_u64(*nx as u64);
                h.write_u64(*ny as u64);
                h.write_u64(*nz as u64);
            }
        }
        Fingerprint(h.0)
    }

    /// Digest of a [`LazyMatrix`]: its structure plus the fill-stage
    /// value seed, so matrices with equal patterns but different values
    /// keep distinct identities — matching the value sensitivity of
    /// [`Fingerprint::of_matrix`] without materializing anything.
    pub fn of_lazy(m: &LazyMatrix) -> Fingerprint {
        let fs = Fingerprint::of_structure(m.structure());
        let mut h = Fnv::new();
        h.write_u64(fs.0);
        h.write_u64(m.value_seed());
        Fingerprint(h.0)
    }

    /// Digest of a lazy operand (dense operands hash by shape, same as
    /// [`Fingerprint::of_operand`]).
    pub fn of_lazy_operand(b: LazyOperand<'_>) -> Fingerprint {
        match b {
            LazyOperand::Dense { rows, cols } => {
                let mut h = Fnv::new();
                h.write_u64(0xdeb5_e000_0000_0001);
                h.write_u64(rows as u64);
                h.write_u64(cols as u64);
                Fingerprint(h.0)
            }
            LazyOperand::Sparse(m) => Fingerprint::of_lazy(m),
        }
    }

    /// Digest of a lazy `(A, B)` pair — the cache key of the
    /// structure-first oracle path.
    pub fn of_lazy_pair(a: &LazyMatrix, b: LazyOperand<'_>) -> Fingerprint {
        let fa = Fingerprint::of_lazy(a);
        let fb = Fingerprint::of_lazy_operand(b);
        let mut h = Fnv::new();
        h.write_u64(fa.0);
        h.write_u64(fb.0);
        Fingerprint(h.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sparse::gen;

    #[test]
    fn slab_and_view_fingerprints_match_the_owned_matrix() {
        let a = gen::power_law(96, 80, 4.0, 1.4, 11);
        let owned = Fingerprint::of_matrix(&a);
        assert_eq!(Fingerprint::of_ref(a.as_ref()), owned);
        assert_eq!(Fingerprint(misam_sparse::slab::digest_of_view(a.as_ref())), owned);

        let dir = std::env::temp_dir().join(format!("misam_oracle_fp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.msab");
        misam_sparse::slab::write_slab(&path, &a).unwrap();
        let slab = SlabMatrix::open(&path).unwrap();
        assert_eq!(Fingerprint::of_slab(&slab), owned, "O(1) header digest shares key space");
        assert_eq!(Fingerprint::of_ref(slab.as_ref()), owned);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_matrices_share_a_fingerprint() {
        let a = gen::uniform_random(64, 64, 0.1, 7);
        let b = gen::uniform_random(64, 64, 0.1, 7);
        assert_eq!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&b));
    }

    #[test]
    fn different_seeds_or_shapes_differ() {
        let a = gen::uniform_random(64, 64, 0.1, 7);
        let b = gen::uniform_random(64, 64, 0.1, 8);
        let c = gen::uniform_random(64, 48, 0.1, 7);
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&b));
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&c));
    }

    #[test]
    fn values_matter_not_just_structure() {
        let a = gen::uniform_random(32, 32, 0.2, 3);
        let scaled = CsrMatrix::from_raw_parts(
            a.rows(),
            a.cols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().iter().map(|v| v * 2.0).collect(),
        )
        .unwrap();
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&scaled));
    }

    #[test]
    fn structure_fingerprints_are_value_blind_and_seed_sensitive() {
        let a = gen::uniform_random_lazy(64, 64, 0.1, 7);
        let same = gen::uniform_random_lazy(64, 64, 0.1, 7);
        let other = gen::uniform_random_lazy(64, 64, 0.1, 8);
        assert_eq!(
            Fingerprint::of_structure(a.structure()),
            Fingerprint::of_structure(same.structure())
        );
        assert_ne!(
            Fingerprint::of_structure(a.structure()),
            Fingerprint::of_structure(other.structure())
        );
        assert_eq!(Fingerprint::of_lazy(&a), Fingerprint::of_lazy(&same));
        assert_ne!(Fingerprint::of_lazy(&a), Fingerprint::of_lazy(&other));
        // Mesh variants with equal element counts stay distinct.
        let m2 = gen::mesh2d_lazy(6, 4);
        let m3 = gen::mesh3d_lazy(6, 4, 1);
        assert_ne!(
            Fingerprint::of_structure(m2.structure()),
            Fingerprint::of_structure(m3.structure())
        );
    }

    #[test]
    fn lazy_pair_distinguishes_operand_kinds() {
        let a = gen::uniform_random_lazy(32, 32, 0.2, 3);
        let dense = Fingerprint::of_lazy_pair(&a, LazyOperand::Dense { rows: 32, cols: 16 });
        let sparse = Fingerprint::of_lazy_pair(&a, LazyOperand::Sparse(&a));
        assert_ne!(dense, sparse);
    }

    #[test]
    fn pair_distinguishes_operand_kinds() {
        let a = gen::uniform_random(32, 32, 0.2, 3);
        let dense = Fingerprint::of_pair(&a, Operand::Dense { rows: 32, cols: 16 });
        let sparse = Fingerprint::of_pair(&a, Operand::Sparse(&a));
        assert_ne!(dense, sparse);
        // And the pair digest is order-sensitive.
        let b = gen::uniform_random(32, 32, 0.2, 4);
        let ab = Fingerprint::of_pair(&a, Operand::Sparse(&b));
        let ba = Fingerprint::of_pair(&b, Operand::Sparse(&a));
        assert_ne!(ab, ba);
    }
}
