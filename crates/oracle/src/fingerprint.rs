//! Cheap structural identity for operand pairs.
//!
//! A corpus run touches the same (matrix, design) pairs from several
//! experiment layers; re-simulating is seconds, fingerprinting is an
//! `O(nnz)` hash. The fingerprint covers dimensions, the sparsity
//! pattern, and value bits, so two operands collide only if they would
//! simulate identically anyway (modulo a 2⁻⁶⁴ hash collision, which at
//! corpus scale — tens of thousands of matrices — is negligible).

use misam_sim::Operand;
use misam_sparse::CsrMatrix;

/// A 64-bit structural digest of an `(A, B)` operand pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // FNV-1a over the 8 bytes, unrolled by word for speed.
        let mut h = self.0;
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h = (h ^ ((v >> shift) & 0xff)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

impl Fingerprint {
    /// Digest of a single CSR matrix.
    pub fn of_matrix(m: &CsrMatrix) -> Fingerprint {
        let mut h = Fnv::new();
        h.write_u64(m.rows() as u64);
        h.write_u64(m.cols() as u64);
        h.write_u64(m.nnz() as u64);
        for &p in m.row_ptr() {
            h.write_u64(p as u64);
        }
        for &c in m.col_idx() {
            h.write_u64(c as u64);
        }
        for &v in m.values() {
            h.write_u64(v.to_bits() as u64);
        }
        Fingerprint(h.0)
    }

    /// Digest of one operand (dense operands hash by shape alone — the
    /// simulators model dense B as all-nonzero, so shape is identity).
    pub fn of_operand(b: Operand<'_>) -> Fingerprint {
        match b {
            Operand::Dense { rows, cols } => {
                let mut h = Fnv::new();
                h.write_u64(0xdeb5_e000_0000_0001);
                h.write_u64(rows as u64);
                h.write_u64(cols as u64);
                Fingerprint(h.0)
            }
            Operand::Sparse(m) => Fingerprint::of_matrix(m),
        }
    }

    /// Digest of an `(A, B)` pair — the cache key component.
    pub fn of_pair(a: &CsrMatrix, b: Operand<'_>) -> Fingerprint {
        let fa = Fingerprint::of_matrix(a);
        let fb = Fingerprint::of_operand(b);
        let mut h = Fnv::new();
        h.write_u64(fa.0);
        h.write_u64(fb.0);
        Fingerprint(h.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sparse::gen;

    #[test]
    fn identical_matrices_share_a_fingerprint() {
        let a = gen::uniform_random(64, 64, 0.1, 7);
        let b = gen::uniform_random(64, 64, 0.1, 7);
        assert_eq!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&b));
    }

    #[test]
    fn different_seeds_or_shapes_differ() {
        let a = gen::uniform_random(64, 64, 0.1, 7);
        let b = gen::uniform_random(64, 64, 0.1, 8);
        let c = gen::uniform_random(64, 48, 0.1, 7);
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&b));
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&c));
    }

    #[test]
    fn values_matter_not_just_structure() {
        let a = gen::uniform_random(32, 32, 0.2, 3);
        let scaled = CsrMatrix::from_raw_parts(
            a.rows(),
            a.cols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().iter().map(|v| v * 2.0).collect(),
        )
        .unwrap();
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&scaled));
    }

    #[test]
    fn pair_distinguishes_operand_kinds() {
        let a = gen::uniform_random(32, 32, 0.2, 3);
        let dense = Fingerprint::of_pair(&a, Operand::Dense { rows: 32, cols: 16 });
        let sparse = Fingerprint::of_pair(&a, Operand::Sparse(&a));
        assert_ne!(dense, sparse);
        // And the pair digest is order-sensitive.
        let b = gen::uniform_random(32, 32, 0.2, 4);
        let ab = Fingerprint::of_pair(&a, Operand::Sparse(&b));
        let ba = Fingerprint::of_pair(&b, Operand::Sparse(&a));
        assert_ne!(ab, ba);
    }
}
