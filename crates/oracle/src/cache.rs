//! Concurrent memoization cache keyed by `(fingerprint, target)`.
//!
//! Sharded to keep lock contention off the hot path, with per-entry
//! once-cells so a given key's underlying computation runs **exactly
//! once per process** even when many threads miss simultaneously —
//! late arrivals block on the first computation instead of repeating
//! it.

use crate::Fingerprint;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 16;

type Key = (u64, usize);

/// Hit/miss counters of a [`MemoCache`] (and of [`crate::SimOracle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the underlying executor.
    pub misses: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A sharded, exactly-once memoization map.
#[derive(Debug)]
pub struct MemoCache<R> {
    shards: Vec<RwLock<HashMap<Key, Arc<OnceLock<R>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<R> Default for MemoCache<R> {
    fn default() -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<R: Clone> MemoCache<R> {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, fp: Fingerprint, target: usize) -> &RwLock<HashMap<Key, Arc<OnceLock<R>>>> {
        // Target lands in the shard index so the four designs of one
        // matrix spread across shards.
        let idx = (fp.0 ^ (target as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize % SHARDS;
        &self.shards[idx]
    }

    /// Returns the cached value for `(fp, target)`, computing it with
    /// `compute` on first use. Concurrent callers of the same key block
    /// until the single in-flight computation finishes.
    pub fn get_or_compute(&self, fp: Fingerprint, target: usize, compute: impl FnOnce() -> R) -> R {
        let shard = self.shard(fp, target);
        let key = (fp.0, target);

        // Fast path: the entry exists and is populated.
        if let Some(cell) = shard.read().get(&key) {
            if let Some(value) = cell.get() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return value.clone();
            }
        }

        // Claim (or join) the entry's once-cell, then initialize it
        // outside the shard lock so other keys stay unblocked.
        let cell =
            Arc::clone(shard.write().entry(key).or_insert_with(|| Arc::new(OnceLock::new())));
        let mut computed = false;
        let value = cell.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
        }
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits() {
        let cache = MemoCache::new();
        let fp = Fingerprint(42);
        let mut calls = 0;
        let v1 = cache.get_or_compute(fp, 0, || {
            calls += 1;
            7u64
        });
        let v2 = cache.get_or_compute(fp, 0, || {
            calls += 1;
            8u64
        });
        assert_eq!((v1, v2), (7, 7));
        assert_eq!(calls, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn targets_are_distinct_keys() {
        let cache = MemoCache::new();
        let fp = Fingerprint(1);
        for t in 0..4 {
            assert_eq!(cache.get_or_compute(fp, t, || t), t);
        }
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = MemoCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_compute(Fingerprint(9), 2, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        1234u32
                    })
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = MemoCache::new();
        cache.get_or_compute(Fingerprint(3), 1, || 1u8);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
