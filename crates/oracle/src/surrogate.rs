//! Learned cycle-level surrogate tier: regression-forest latency
//! prediction gated on calibrated ranking agreement with the cycle sim.
//!
//! Every labeling path — corpus generation, the learner's background
//! oracle-labeling, the reconfig engine's probes — bottoms out in the
//! cycle simulator. This module adds a *tiered* front: a per-design
//! [`RegressionForest`] trained on (pair features → log₁₀ latency) from
//! memoized [`SimOracle`] labels answers instead of the simulator, but
//! **only when it is confident**. Confidence is a calibrated margin
//! band: a held-out slice of the training grid measures, per candidate
//! band, whether the surrogate's argmin design matches the cycle sim's,
//! and the published band `tau` is the widest one whose gated agreement
//! clears the target (99% by default). Queries whose predicted top-2
//! margin falls inside the band fall back to the cycle sim — and the
//! sim's label is recorded as feedback so fallbacks grow the next
//! training set instead of being wasted.
//!
//! Three layers:
//!
//! * [`SurrogateBundle`] — the versioned, serde-serializable artifact
//!   (`misam train-surrogate` writes it): four forests, the calibrated
//!   band, and the calibration report that justified it.
//! * [`SurrogateExecutor`] — the ungated forest as a plain
//!   [`Executor`]: always answers from the model (benchmark /
//!   counterfactual form).
//! * [`TieredOracle`] — the gated production form: surrogate when the
//!   margin clears the band, memoized cycle sim otherwise, per-design
//!   hit/fallback counters, and a bounded feedback buffer of
//!   sim-labeled fallbacks. With no bundle installed it degrades to
//!   exactly the sim-only oracle.
//!
//! Determinism: model fitting pre-draws all randomness serially
//! (bit-identical at any `MISAM_THREADS`), prediction is a fixed
//! tree-order sum, and the gate is a pure function of the (memoized,
//! deterministic) pair features — so tiered labeling is byte-identical
//! at any thread count, with or without fallbacks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use misam_features::TileConfig;
use misam_mlkit::regforest::{PackedRegressionForest, RegForestParams, RegressionForest};
use misam_sim::{resources, CycleBreakdown, DesignConfig, DesignId, Operand, SimReport};
use misam_sparse::{CsrMatrix, LazyMatrix, LazyOperand};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::executors::FpgaSim;
use crate::service::SimOracle;
use crate::{profiles, Executor, LazyLabeler};

/// Current surrogate bundle schema version. Bump on breaking changes to
/// the serialized layout; loads of other versions fail fatally (the
/// caller must retrain, not retry).
pub const SURROGATE_BUNDLE_VERSION: u32 = 1;

/// Number of FPGA designs the surrogate models.
const N_DESIGNS: usize = DesignId::ALL.len();

/// Errors from surrogate bundle persistence and validation.
#[derive(Debug)]
pub enum SurrogateError {
    /// Filesystem error reading or writing the bundle.
    Io(std::io::Error),
    /// The bundle is not valid JSON for the expected schema.
    Json(serde_json::Error),
    /// The bundle's schema version is not the one this build supports.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The bundle parsed but its contents are unusable (wrong forest
    /// count or feature arity).
    Malformed(String),
}

impl SurrogateError {
    /// Whether retrying the same operation could succeed. Version and
    /// shape mismatches are permanent for a given file; I/O hiccups and
    /// truncated JSON may heal on a re-read (e.g. mid-publish).
    pub fn is_retryable(&self) -> bool {
        matches!(self, SurrogateError::Io(_) | SurrogateError::Json(_))
    }
}

impl std::fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SurrogateError::Io(e) => write!(f, "surrogate bundle i/o error: {e}"),
            SurrogateError::Json(e) => write!(f, "surrogate bundle json error: {e}"),
            SurrogateError::Version { found, expected } => {
                write!(f, "surrogate bundle version {found} unsupported (expected {expected})")
            }
            SurrogateError::Malformed(why) => write!(f, "surrogate bundle malformed: {why}"),
        }
    }
}

impl std::error::Error for SurrogateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SurrogateError::Io(e) => Some(e),
            SurrogateError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SurrogateError {
    fn from(e: std::io::Error) -> Self {
        SurrogateError::Io(e)
    }
}

impl From<serde_json::Error> for SurrogateError {
    fn from(e: serde_json::Error) -> Self {
        SurrogateError::Json(e)
    }
}

impl From<SurrogateError> for String {
    fn from(e: SurrogateError) -> Self {
        e.to_string()
    }
}

/// Training hyperparameters for [`SurrogateBundle::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateTrainParams {
    /// Per-design forest hyperparameters (seed is salted per design).
    pub forest: RegForestParams,
    /// Every `holdout_every`-th sample (by index) is held out of
    /// training and used only to calibrate the confidence band.
    pub holdout_every: usize,
    /// Gated selection agreement the calibrated band must reach on the
    /// holdout grid.
    pub target_agreement: f64,
}

impl Default for SurrogateTrainParams {
    fn default() -> Self {
        SurrogateTrainParams {
            forest: RegForestParams::default(),
            holdout_every: 5,
            target_agreement: 0.995,
        }
    }
}

/// Holdout calibration stats for one design (bucketed by which design
/// the cycle sim ranked best).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignCalibration {
    /// Holdout samples whose sim-best design is this one.
    pub support: usize,
    /// Of those, how many the calibrated gate sends to the cycle sim.
    pub fallbacks: usize,
    /// Selection agreement among the gate-passing remainder (1.0 when
    /// none pass).
    pub gated_agreement: f64,
}

/// What the calibration harness measured on the held-out shape grid,
/// stored inside the bundle so the published band is auditable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Held-out sample count.
    pub holdout: usize,
    /// The calibrated confidence band: predicted top-2 margin (log₁₀)
    /// must be at least this for the surrogate to answer.
    pub tau_log10: f64,
    /// Holdout samples whose margin clears the band.
    pub gated: usize,
    /// Selection agreement among gate-passing samples.
    pub gated_agreement: f64,
    /// End-to-end agreement counting fallbacks as correct (they are
    /// answered by the sim itself).
    pub overall_agreement: f64,
    /// Fraction of holdout samples the gate sends to the cycle sim.
    pub fallback_rate: f64,
    /// Per-design breakdown, indexed by [`DesignId::index`] of the
    /// sim-best design.
    pub per_design: Vec<DesignCalibration>,
}

/// The versioned, publishable surrogate artifact: one regression forest
/// per design over pair features → log₁₀ seconds, plus the calibrated
/// confidence band and the report that justified it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateBundle {
    /// Schema version ([`SURROGATE_BUNDLE_VERSION`]).
    pub version: u32,
    /// Tile rows the training features were extracted under.
    pub tile_rows: usize,
    /// Tile cols the training features were extracted under.
    pub tile_cols: usize,
    /// Feature arity every forest expects.
    pub n_features: usize,
    /// Calibrated margin band (log₁₀): below this, fall back to sim.
    pub tau_log10: f64,
    /// One forest per design, in [`DesignId::ALL`] order, predicting
    /// log₁₀ latency seconds.
    pub forests: Vec<RegressionForest>,
    /// The holdout measurements behind `tau_log10`.
    pub calibration: CalibrationReport,
}

impl SurrogateBundle {
    /// Trains per-design forests on `(features[i], times_s[i])` rows and
    /// calibrates the confidence band on a deterministic holdout slice
    /// (every `holdout_every`-th row).
    ///
    /// Targets are fitted in log₁₀ space, where latency ratios (the
    /// quantity design selection depends on) are additive margins.
    /// Energy never needs its own model: the sim defines
    /// `energy = power_w(design) × time`, with `power_w` a pure function
    /// of the design, so energy ranking derives exactly from the
    /// predicted times. The published band gates on the *smaller* of the
    /// latency and energy top-2 margins so either objective is safe.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or ragged, any time is not strictly
    /// positive, or `holdout_every < 2` (there must be both training and
    /// holdout rows).
    pub fn fit(
        features: &[Vec<f64>],
        times_s: &[[f64; N_DESIGNS]],
        params: &SurrogateTrainParams,
    ) -> Self {
        assert_eq!(features.len(), times_s.len(), "feature and label counts differ");
        assert!(!features.is_empty(), "cannot fit a surrogate to an empty corpus");
        assert!(params.holdout_every >= 2, "holdout_every must be at least 2");
        let n_features = features[0].len();
        assert!(
            times_s.iter().all(|t| t.iter().all(|&v| v > 0.0 && v.is_finite())),
            "latencies must be positive and finite"
        );

        let is_holdout = |i: usize| i.is_multiple_of(params.holdout_every);
        let train_idx: Vec<usize> = (0..features.len()).filter(|&i| !is_holdout(i)).collect();
        let holdout_idx: Vec<usize> = (0..features.len()).filter(|&i| is_holdout(i)).collect();
        assert!(!train_idx.is_empty(), "holdout split left no training rows");

        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| features[i].clone()).collect();
        let forests: Vec<RegressionForest> = DesignId::ALL
            .iter()
            .map(|d| {
                let ys: Vec<f64> =
                    train_idx.iter().map(|&i| times_s[i][d.index()].log10()).collect();
                let p = RegForestParams {
                    seed: params.forest.seed ^ (0x0d15_ea5e + d.index() as u64),
                    ..params.forest.clone()
                };
                RegressionForest::fit(&train_x, &ys, &p)
            })
            .collect();

        // Calibrate: per holdout sample, the predicted margin and
        // whether the surrogate's selections (latency AND energy argmin)
        // match the cycle sim's ground truth.
        let flats: Vec<PackedRegressionForest> =
            forests.iter().map(|f| f.flatten().pack()).collect();
        let mut margins: Vec<(f64, bool, usize)> = Vec::with_capacity(holdout_idx.len());
        for &i in &holdout_idx {
            let pred = predict_log_times(&flats, &features[i]);
            let p = prediction_from_log_times(pred);
            let truth = truth_from_times(&times_s[i]);
            let agree = p.best_latency == truth.0 && p.best_energy == truth.1;
            margins.push((p.margin_log10, agree, truth.0));
        }

        // Widest band whose gated agreement clears the target: sort by
        // margin descending and keep the longest prefix that stays at or
        // above `target_agreement`. Ties on margin sort by the stable
        // holdout order, so calibration is deterministic.
        let mut by_margin: Vec<usize> = (0..margins.len()).collect();
        by_margin.sort_by(|&a, &b| {
            margins[b].0.partial_cmp(&margins[a].0).expect("margins are finite").then(a.cmp(&b))
        });
        let mut agree_prefix = 0usize;
        let mut best_len = 0usize;
        for (k, &mi) in by_margin.iter().enumerate() {
            agree_prefix += usize::from(margins[mi].1);
            let len = k + 1;
            // Never split a run of equal margins: the gate is a pure
            // threshold, so the band must land on a margin boundary.
            let boundary = by_margin.get(k + 1).is_none_or(|&n| margins[n].0 < margins[mi].0);
            if boundary && agree_prefix as f64 >= params.target_agreement * len as f64 {
                best_len = len;
            }
        }
        // `f64::MAX` (not infinity, which JSON cannot carry) is the
        // "no margin qualified" band: every query falls back to sim.
        let tau_log10 = if best_len == 0 { f64::MAX } else { margins[by_margin[best_len - 1]].0 };

        let calibration = calibrate_report(&margins, tau_log10);
        let tile = TileConfig::default();
        SurrogateBundle {
            version: SURROGATE_BUNDLE_VERSION,
            tile_rows: tile.tile_rows,
            tile_cols: tile.tile_cols,
            n_features,
            tau_log10,
            forests,
            calibration,
        }
    }

    /// The tile configuration the training features were extracted under.
    pub fn tile_config(&self) -> TileConfig {
        TileConfig { tile_rows: self.tile_rows, tile_cols: self.tile_cols }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::Json`] on serialization failure.
    pub fn to_json(&self) -> Result<String, SurrogateError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a bundle, rejecting version and shape mismatches.
    ///
    /// # Errors
    ///
    /// [`SurrogateError::Json`] on parse failure,
    /// [`SurrogateError::Version`] on a schema version mismatch, and
    /// [`SurrogateError::Malformed`] when the forest count or feature
    /// arity is unusable.
    pub fn from_json(text: &str) -> Result<Self, SurrogateError> {
        let bundle: SurrogateBundle = serde_json::from_str(text)?;
        if bundle.version != SURROGATE_BUNDLE_VERSION {
            return Err(SurrogateError::Version {
                found: bundle.version,
                expected: SURROGATE_BUNDLE_VERSION,
            });
        }
        if bundle.forests.len() != N_DESIGNS {
            return Err(SurrogateError::Malformed(format!(
                "expected {N_DESIGNS} forests, found {}",
                bundle.forests.len()
            )));
        }
        if bundle.forests.iter().any(|f| f.n_features() != bundle.n_features) {
            return Err(SurrogateError::Malformed("forest feature arity disagrees".into()));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SurrogateError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads and validates a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SurrogateBundle::from_json`] plus I/O.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SurrogateError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Converts into the flat runtime form the oracle serves from.
    pub fn into_model(self) -> SurrogateModel {
        SurrogateModel {
            forests: self.forests.iter().map(|f| f.flatten().pack()).collect(),
            tau_log10: self.tau_log10,
            tile: self.tile_config(),
            n_features: self.n_features,
        }
    }
}

/// Builds the per-design calibration report for a chosen band.
fn calibrate_report(margins: &[(f64, bool, usize)], tau_log10: f64) -> CalibrationReport {
    let mut per = vec![(0usize, 0usize, 0usize); N_DESIGNS]; // (support, fallbacks, gated_agree)
    let mut gated = 0usize;
    let mut gated_agree = 0usize;
    for &(margin, agree, sim_best) in margins {
        per[sim_best].0 += 1;
        if margin >= tau_log10 {
            gated += 1;
            gated_agree += usize::from(agree);
            per[sim_best].2 += usize::from(agree);
        } else {
            per[sim_best].1 += 1;
        }
    }
    let holdout = margins.len();
    let frac = |num: usize, den: usize| if den == 0 { 1.0 } else { num as f64 / den as f64 };
    CalibrationReport {
        holdout,
        tau_log10,
        gated,
        gated_agreement: frac(gated_agree, gated),
        overall_agreement: frac(gated_agree + (holdout - gated), holdout),
        fallback_rate: if holdout == 0 { 0.0 } else { (holdout - gated) as f64 / holdout as f64 },
        per_design: per
            .into_iter()
            .map(|(support, fallbacks, agree)| DesignCalibration {
                support,
                fallbacks,
                gated_agreement: frac(agree, support - fallbacks),
            })
            .collect(),
    }
}

/// What the surrogate believes about one operand pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogatePrediction {
    /// Predicted log₁₀ latency seconds per design.
    pub log10_times: [f64; N_DESIGNS],
    /// Predicted argmin-latency design index.
    pub best_latency: usize,
    /// Predicted argmin-energy design index (derived via `power_w`).
    pub best_energy: usize,
    /// The smaller of the latency and energy top-2 margins (log₁₀) —
    /// the quantity the confidence band gates on.
    pub margin_log10: f64,
}

fn predict_log_times(forests: &[PackedRegressionForest], features: &[f64]) -> [f64; N_DESIGNS] {
    let mut out = [0.0; N_DESIGNS];
    for (o, f) in out.iter_mut().zip(forests) {
        *o = f.predict(features);
    }
    out
}

/// Argmin index and top-2 margin of a log-space score vector.
fn argmin_margin(scores: &[f64; N_DESIGNS]) -> (usize, f64) {
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s < scores[best] {
            best = i;
        }
    }
    let mut runner = f64::INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        if i != best && s < runner {
            runner = s;
        }
    }
    (best, runner - scores[best])
}

fn prediction_from_log_times(log10_times: [f64; N_DESIGNS]) -> SurrogatePrediction {
    let (best_latency, margin_t) = argmin_margin(&log10_times);
    let mut log_energy = [0.0; N_DESIGNS];
    for (i, d) in DesignId::ALL.iter().enumerate() {
        log_energy[i] = log10_times[i] + resources::power_w(*d).log10();
    }
    let (best_energy, margin_e) = argmin_margin(&log_energy);
    SurrogatePrediction {
        log10_times,
        best_latency,
        best_energy,
        margin_log10: margin_t.min(margin_e),
    }
}

/// Ground-truth (latency argmin, energy argmin) from measured times.
fn truth_from_times(times_s: &[f64; N_DESIGNS]) -> (usize, usize) {
    let mut lt = [0.0; N_DESIGNS];
    let mut le = [0.0; N_DESIGNS];
    for (i, d) in DesignId::ALL.iter().enumerate() {
        lt[i] = times_s[i].log10();
        le[i] = lt[i] + resources::power_w(*d).log10();
    }
    (argmin_margin(&lt).0, argmin_margin(&le).0)
}

/// The packed runtime form of a [`SurrogateBundle`]: per-design
/// cache-packed forests ([`PackedRegressionForest`]) plus the
/// calibrated band, cheap to share behind an `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateModel {
    forests: Vec<PackedRegressionForest>,
    tau_log10: f64,
    tile: TileConfig,
    n_features: usize,
}

impl SurrogateModel {
    /// Predicts log₁₀ latency seconds per design for one feature vector.
    pub fn predict_log_times(&self, features: &[f64]) -> [f64; N_DESIGNS] {
        predict_log_times(&self.forests, features)
    }

    /// Full prediction: per-design log times, argmin designs for both
    /// objectives, and the gating margin.
    pub fn prediction(&self, features: &[f64]) -> SurrogatePrediction {
        prediction_from_log_times(self.predict_log_times(features))
    }

    /// Whether a margin clears the calibrated confidence band.
    pub fn confident(&self, margin_log10: f64) -> bool {
        margin_log10 >= self.tau_log10
    }

    /// The calibrated band (log₁₀ margin).
    pub fn tau_log10(&self) -> f64 {
        self.tau_log10
    }

    /// Returns a copy with a different confidence band — the
    /// calibration-sweep hook (tighter band ⇒ more fallbacks).
    pub fn with_tau(&self, tau_log10: f64) -> Self {
        SurrogateModel { tau_log10, ..self.clone() }
    }

    /// Tile configuration features must be extracted under.
    pub fn tile_config(&self) -> TileConfig {
        self.tile
    }

    /// Feature arity the forests expect.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Synthesizes a [`SimReport`] for `design` from a predicted log₁₀
    /// latency, reproducing the simulator's own derivations: cycles are
    /// rounded at the design's clock, `time_s = cycles / freq`, and
    /// `energy = power_w × time`. Secondary structural fields (tiles,
    /// passes, flops, output nnz, utilization) are zeroed — consumers of
    /// surrogate labels read time/energy/cycles only.
    pub fn synthesize(&self, design: DesignId, log10_time_s: f64) -> SimReport {
        let cfg = DesignConfig::of(design);
        let hz = cfg.freq_mhz * 1e6;
        let cycles = (10f64.powf(log10_time_s) * hz).round().max(1.0) as u64;
        let time_s = cycles as f64 / hz;
        let power_w = resources::power_w(design);
        SimReport {
            design,
            cycles,
            breakdown: CycleBreakdown {
                a_read: 0,
                b_read: 0,
                c_write: 0,
                compute: cycles,
                overhead: 0,
            },
            time_s,
            power_w,
            energy_j: power_w * time_s,
            pe_utilization: 0.0,
            tiles: 0,
            passes: 0,
            flops: 0,
            output_nnz: 0,
        }
    }
}

/// The ungated surrogate as a plain [`Executor`]: every query is
/// answered from the forests, with no sim fallback. This is the
/// benchmark / counterfactual form; production labeling goes through
/// [`TieredOracle`].
#[derive(Debug, Clone)]
pub struct SurrogateExecutor {
    model: Arc<SurrogateModel>,
}

impl SurrogateExecutor {
    /// Wraps a runtime model.
    pub fn new(model: Arc<SurrogateModel>) -> Self {
        SurrogateExecutor { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<SurrogateModel> {
        &self.model
    }
}

impl Executor for SurrogateExecutor {
    type Report = SimReport;

    fn targets(&self) -> usize {
        N_DESIGNS
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> SimReport {
        assert!(target < N_DESIGNS, "target out of range");
        let features =
            profiles::global().pair_features(a, b, &self.model.tile_config()).to_vector();
        let log_times = self.model.predict_log_times(&features);
        self.model.synthesize(DesignId::ALL[target], log_times[target])
    }

    fn execute_all(&self, a: &CsrMatrix, b: Operand<'_>) -> Vec<SimReport> {
        let features =
            profiles::global().pair_features(a, b, &self.model.tile_config()).to_vector();
        let log_times = self.model.predict_log_times(&features);
        DesignId::ALL.iter().map(|d| self.model.synthesize(*d, log_times[d.index()])).collect()
    }
}

/// One sim-labeled fallback, recorded so the next retrain can fold it
/// into the training set.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackSample {
    /// Pair features (under the model's tile config).
    pub features: Vec<f64>,
    /// Cycle-sim latency seconds per design.
    pub times_s: [f64; N_DESIGNS],
}

/// Snapshot of the tiered oracle's serving counters. Counts are per
/// operand *pair* (one `execute_all` sweep = one event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TieredStats {
    /// Pairs answered by the surrogate.
    pub surrogate_pairs: u64,
    /// Pairs that fell inside the band and went to the cycle sim.
    pub fallback_pairs: u64,
    /// Pairs served while no model was installed (pure sim).
    pub unmodeled_pairs: u64,
    /// Surrogate-served pairs bucketed by the predicted-best design.
    pub per_design_surrogate: [u64; N_DESIGNS],
    /// Fallback pairs bucketed by the predicted-best design.
    pub per_design_fallback: [u64; N_DESIGNS],
}

impl TieredStats {
    /// Fallback fraction among modeled pairs (0 when nothing served).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.surrogate_pairs + self.fallback_pairs;
        if total == 0 {
            0.0
        } else {
            self.fallback_pairs as f64 / total as f64
        }
    }
}

/// Bound on the fallback feedback buffer; once full, further fallbacks
/// still serve correctly but stop being recorded (labels are never
/// dropped, only the retraining hint is).
const FEEDBACK_CAP: usize = 1 << 16;

/// The gated two-tier oracle: surrogate when the calibrated margin
/// clears the band, memoized cycle sim otherwise. With no model
/// installed every query goes to the sim, so the tier is always safe to
/// put in front of a labeling path.
pub struct TieredOracle {
    sim: SimOracle<FpgaSim>,
    model: RwLock<Option<Arc<SurrogateModel>>>,
    surrogate_pairs: AtomicU64,
    fallback_pairs: AtomicU64,
    unmodeled_pairs: AtomicU64,
    per_design_surrogate: [AtomicU64; N_DESIGNS],
    per_design_fallback: [AtomicU64; N_DESIGNS],
    feedback: Mutex<Vec<FeedbackSample>>,
}

impl std::fmt::Debug for TieredOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredOracle")
            .field("has_model", &self.has_model())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for TieredOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl TieredOracle {
    /// An empty tiered oracle (no model installed: pure sim) with its
    /// own memo cache.
    pub fn new() -> Self {
        TieredOracle {
            sim: SimOracle::new(FpgaSim),
            model: RwLock::new(None),
            surrogate_pairs: AtomicU64::new(0),
            fallback_pairs: AtomicU64::new(0),
            unmodeled_pairs: AtomicU64::new(0),
            per_design_surrogate: Default::default(),
            per_design_fallback: Default::default(),
            feedback: Mutex::new(Vec::new()),
        }
    }

    /// Installs (hot-swaps) the surrogate model. Subsequent queries gate
    /// through it immediately.
    pub fn install(&self, model: Arc<SurrogateModel>) {
        *self.model.write() = Some(model);
    }

    /// Installs a model converted from a bundle.
    pub fn install_bundle(&self, bundle: SurrogateBundle) {
        self.install(Arc::new(bundle.into_model()));
    }

    /// Loads, validates, and installs a bundle from disk. On any error
    /// — missing file, stale version, malformed forests — the current
    /// model (or sim-only mode) is left untouched.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SurrogateBundle::load`].
    pub fn load_bundle(&self, path: impl AsRef<std::path::Path>) -> Result<(), SurrogateError> {
        let bundle = SurrogateBundle::load(path)?;
        self.install_bundle(bundle);
        Ok(())
    }

    /// Removes the model: every subsequent query is pure sim.
    pub fn uninstall(&self) {
        *self.model.write() = None;
    }

    /// Whether a surrogate model is currently installed.
    pub fn has_model(&self) -> bool {
        self.model.read().is_some()
    }

    /// The currently installed model, if any.
    pub fn model(&self) -> Option<Arc<SurrogateModel>> {
        self.model.read().clone()
    }

    /// The underlying memoizing cycle-sim tier.
    pub fn sim(&self) -> &SimOracle<FpgaSim> {
        &self.sim
    }

    /// Serving counters snapshot.
    pub fn stats(&self) -> TieredStats {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        TieredStats {
            surrogate_pairs: load(&self.surrogate_pairs),
            fallback_pairs: load(&self.fallback_pairs),
            unmodeled_pairs: load(&self.unmodeled_pairs),
            per_design_surrogate: std::array::from_fn(|i| load(&self.per_design_surrogate[i])),
            per_design_fallback: std::array::from_fn(|i| load(&self.per_design_fallback[i])),
        }
    }

    /// Drains the recorded sim-labeled fallbacks (training-set feedback).
    pub fn drain_feedback(&self) -> Vec<FeedbackSample> {
        std::mem::take(&mut *self.feedback.lock())
    }

    fn record_feedback(&self, features: Vec<f64>, reports: &[SimReport]) {
        let mut buf = self.feedback.lock();
        if buf.len() < FEEDBACK_CAP {
            let mut times_s = [0.0; N_DESIGNS];
            for (t, r) in times_s.iter_mut().zip(reports) {
                *t = r.time_s;
            }
            buf.push(FeedbackSample { features, times_s });
        }
    }

    /// Labels all designs for an eager operand pair through the tier.
    pub fn execute_all_pair(&self, a: &CsrMatrix, b: Operand<'_>) -> Vec<SimReport> {
        let Some(model) = self.model.read().clone() else {
            self.unmodeled_pairs.fetch_add(1, Ordering::Relaxed);
            return self.sim.execute_all(a, b);
        };
        let features = profiles::global().pair_features(a, b, &model.tile_config()).to_vector();
        self.finish_pair(&model, &features, || self.sim.execute_all(a, b))
    }

    /// Labels all designs for a lazy (structure-only) pair through the
    /// tier — the corpus-generation entry. Gating decisions are
    /// bit-identical to the eager path because lazy pair features are.
    pub fn execute_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        let Some(model) = self.model.read().clone() else {
            self.unmodeled_pairs.fetch_add(1, Ordering::Relaxed);
            return self.sim.execute_all_lazy(a, b);
        };
        let features =
            profiles::global().pair_features_lazy(a, b, &model.tile_config()).to_vector();
        self.finish_pair(&model, &features, || self.sim.execute_all_lazy(a, b))
    }

    fn finish_pair(
        &self,
        model: &Arc<SurrogateModel>,
        features: &[f64],
        sim_all: impl FnOnce() -> Vec<SimReport>,
    ) -> Vec<SimReport> {
        let pred = model.prediction(features);
        if model.confident(pred.margin_log10) {
            self.surrogate_pairs.fetch_add(1, Ordering::Relaxed);
            self.per_design_surrogate[pred.best_latency].fetch_add(1, Ordering::Relaxed);
            return DesignId::ALL
                .iter()
                .map(|d| model.synthesize(*d, pred.log10_times[d.index()]))
                .collect();
        }
        self.fallback_pairs.fetch_add(1, Ordering::Relaxed);
        self.per_design_fallback[pred.best_latency].fetch_add(1, Ordering::Relaxed);
        let reports = sim_all();
        // Only the fallback path needs an owned copy (the feedback log
        // keeps it); confident pairs never clone the feature vector.
        self.record_feedback(features.to_vec(), &reports);
        reports
    }
}

impl Executor for TieredOracle {
    type Report = SimReport;

    fn targets(&self) -> usize {
        N_DESIGNS
    }

    /// Single-target queries make the same pair-level gate decision as
    /// [`TieredOracle::execute_all_pair`] (the band is a property of the
    /// pair, not the target), so mixed call patterns stay consistent.
    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> SimReport {
        assert!(target < N_DESIGNS, "target out of range");
        let (model, pred) = match self.model.read().clone() {
            None => (None, None),
            Some(model) => {
                let features =
                    profiles::global().pair_features(a, b, &model.tile_config()).to_vector();
                let pred = model.prediction(&features);
                let ok = model.confident(pred.margin_log10);
                (Some(model), ok.then_some(pred))
            }
        };
        match (model, pred) {
            (Some(model), Some(pred)) => {
                self.surrogate_pairs.fetch_add(1, Ordering::Relaxed);
                self.per_design_surrogate[pred.best_latency].fetch_add(1, Ordering::Relaxed);
                model.synthesize(DesignId::ALL[target], pred.log10_times[target])
            }
            (Some(_), None) => {
                self.fallback_pairs.fetch_add(1, Ordering::Relaxed);
                self.sim.execute(a, b, target)
            }
            (None, _) => {
                self.unmodeled_pairs.fetch_add(1, Ordering::Relaxed);
                self.sim.execute(a, b, target)
            }
        }
    }

    fn execute_all(&self, a: &CsrMatrix, b: Operand<'_>) -> Vec<SimReport> {
        self.execute_all_pair(a, b)
    }
}

impl LazyLabeler for TieredOracle {
    fn label_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        self.execute_all_lazy(a, b)
    }

    /// Gates directly on the caller's feature vector when it was
    /// extracted under the model's tile config (the corpus pipeline
    /// extracts features for every sample anyway, and both paths go
    /// through the same shared profile store, so the vectors are
    /// bit-identical) — skipping the per-pair re-extraction that would
    /// otherwise dominate a surrogate-served label. Any mismatch falls
    /// back to the self-extracting path, never to a wrong gate.
    fn label_all_lazy_with_features(
        &self,
        a: &LazyMatrix,
        b: LazyOperand<'_>,
        features: &[f64],
        tile: &TileConfig,
    ) -> Vec<SimReport> {
        let Some(model) = self.model.read().clone() else {
            self.unmodeled_pairs.fetch_add(1, Ordering::Relaxed);
            return self.sim.execute_all_lazy(a, b);
        };
        if *tile != model.tile_config() || features.len() != model.n_features() {
            return self.execute_all_lazy(a, b);
        }
        self.finish_pair(&model, features, || self.sim.execute_all_lazy(a, b))
    }
}

/// The process-wide tiered oracle. Starts with no model installed
/// (pure sim); `misam serve --label-via tiered` and
/// `misam dataset --oracle tiered` install a bundle into it at startup.
pub fn tiered_global() -> &'static TieredOracle {
    static GLOBAL: OnceLock<TieredOracle> = OnceLock::new();
    GLOBAL.get_or_init(TieredOracle::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sparse::gen;

    /// A tiny synthetic corpus labeled by the real sim, enough for the
    /// fit/calibrate plumbing (accuracy is exercised in integration
    /// tests and the bench).
    fn tiny_corpus(n: usize) -> (Vec<Vec<f64>>, Vec<[f64; N_DESIGNS]>) {
        let tile = TileConfig::default();
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for i in 0..n {
            let rows = 48 + 16 * (i % 5);
            let a = gen::uniform_random(rows, rows, 0.02 + 0.01 * (i % 3) as f64, i as u64);
            let b = Operand::Dense { rows: a.cols(), cols: 32 + 16 * (i % 4) };
            let features = profiles::global().pair_features(&a, b, &tile).to_vector();
            let reports = crate::global().execute_all(&a, b);
            let mut times = [0.0; N_DESIGNS];
            for (t, r) in times.iter_mut().zip(&reports) {
                *t = r.time_s;
            }
            xs.push(features);
            ts.push(times);
        }
        (xs, ts)
    }

    fn small_params() -> SurrogateTrainParams {
        SurrogateTrainParams {
            forest: RegForestParams { n_trees: 4, ..Default::default() },
            holdout_every: 4,
            target_agreement: 0.9,
        }
    }

    #[test]
    fn fit_roundtrip_and_version_gate() {
        let (xs, ts) = tiny_corpus(24);
        let bundle = SurrogateBundle::fit(&xs, &ts, &small_params());
        assert_eq!(bundle.version, SURROGATE_BUNDLE_VERSION);
        assert_eq!(bundle.forests.len(), N_DESIGNS);
        let json = bundle.to_json().unwrap();
        let back = SurrogateBundle::from_json(&json).unwrap();
        assert_eq!(bundle, back);

        let stale = json.replacen(
            &format!("\"version\": {SURROGATE_BUNDLE_VERSION}"),
            "\"version\": 999",
            1,
        );
        match SurrogateBundle::from_json(&stale) {
            Err(SurrogateError::Version { found: 999, expected }) => {
                assert_eq!(expected, SURROGATE_BUNDLE_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
        assert!(!SurrogateError::Version { found: 999, expected: 1 }.is_retryable());
    }

    #[test]
    fn fit_is_deterministic() {
        let (xs, ts) = tiny_corpus(20);
        let a = SurrogateBundle::fit(&xs, &ts, &small_params());
        let b = SurrogateBundle::fit(&xs, &ts, &small_params());
        assert_eq!(a, b);
    }

    #[test]
    fn no_model_degrades_to_sim_only() {
        let tiered = TieredOracle::new();
        let reference = SimOracle::new(FpgaSim);
        let a = gen::uniform_random(96, 96, 0.03, 7);
        let b = Operand::Dense { rows: 96, cols: 64 };
        assert_eq!(tiered.execute_all_pair(&a, b), reference.execute_all(&a, b));
        let stats = tiered.stats();
        assert_eq!(stats.unmodeled_pairs, 1);
        assert_eq!(stats.surrogate_pairs + stats.fallback_pairs, 0);
    }

    #[test]
    fn infinite_band_always_falls_back_and_records_feedback() {
        let (xs, ts) = tiny_corpus(16);
        let bundle = SurrogateBundle::fit(&xs, &ts, &small_params());
        let model = Arc::new(bundle.into_model().with_tau(f64::INFINITY));
        let tiered = TieredOracle::new();
        tiered.install(model);
        let a = gen::uniform_random(80, 80, 0.04, 11);
        let b = Operand::Dense { rows: 80, cols: 48 };
        let reports = tiered.execute_all_pair(&a, b);
        assert_eq!(reports, SimOracle::new(FpgaSim).execute_all(&a, b));
        assert_eq!(tiered.stats().fallback_pairs, 1);
        let feedback = tiered.drain_feedback();
        assert_eq!(feedback.len(), 1);
        assert_eq!(feedback[0].times_s.len(), N_DESIGNS);
        assert!(tiered.drain_feedback().is_empty());
    }

    #[test]
    fn negative_band_always_serves_surrogate() {
        let (xs, ts) = tiny_corpus(16);
        let bundle = SurrogateBundle::fit(&xs, &ts, &small_params());
        let model = Arc::new(bundle.into_model().with_tau(f64::NEG_INFINITY));
        let tiered = TieredOracle::new();
        tiered.install(model.clone());
        let a = gen::uniform_random(72, 72, 0.05, 13);
        let b = Operand::Dense { rows: 72, cols: 32 };
        let reports = tiered.execute_all_pair(&a, b);
        assert_eq!(tiered.stats().surrogate_pairs, 1);
        // Reports reproduce the sim's derivation invariants.
        for (r, d) in reports.iter().zip(DesignId::ALL) {
            assert_eq!(r.design, d);
            let hz = DesignConfig::of(d).freq_mhz * 1e6;
            assert!((r.time_s - r.cycles as f64 / hz).abs() < 1e-15);
            assert!((r.energy_j - r.power_w * r.time_s).abs() < 1e-15);
        }
        // And match the ungated executor byte for byte.
        let ungated = SurrogateExecutor::new(model).execute_all(&a, b);
        assert_eq!(reports, ungated);
    }

    #[test]
    fn tighter_band_never_reduces_fallbacks() {
        let (xs, ts) = tiny_corpus(24);
        let bundle = SurrogateBundle::fit(&xs, &ts, &small_params());
        let model = bundle.into_model();
        let margins: Vec<f64> = xs.iter().map(|f| model.prediction(f).margin_log10).collect();
        let fallbacks_at = |tau: f64| margins.iter().filter(|&&m| m < tau).count();
        let mut taus: Vec<f64> = margins.clone();
        taus.extend([0.0, 0.01, 0.1, f64::INFINITY]);
        taus.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in taus.windows(2) {
            assert!(
                fallbacks_at(pair[1]) >= fallbacks_at(pair[0]),
                "fallback count must be monotone in the band: tau {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn calibration_band_meets_target_on_holdout() {
        let (xs, ts) = tiny_corpus(32);
        let params = small_params();
        let bundle = SurrogateBundle::fit(&xs, &ts, &params);
        let cal = &bundle.calibration;
        assert_eq!(cal.holdout, 8);
        assert_eq!(cal.per_design.iter().map(|d| d.support).sum::<usize>(), cal.holdout);
        if cal.gated > 0 {
            assert!(cal.gated_agreement >= params.target_agreement);
        }
        assert!(cal.overall_agreement >= cal.gated_agreement || cal.gated == 0);
    }

    #[test]
    fn load_bundle_errors_leave_oracle_untouched() {
        let tiered = TieredOracle::new();
        let missing = std::env::temp_dir().join("misam_no_such_bundle.json");
        let err = tiered.load_bundle(&missing).unwrap_err();
        assert!(matches!(err, SurrogateError::Io(_)));
        assert!(!tiered.has_model());

        let dir = std::env::temp_dir();
        let stale_path = dir.join(format!("misam_stale_bundle_{}.json", std::process::id()));
        let (xs, ts) = tiny_corpus(12);
        let mut bundle = SurrogateBundle::fit(&xs, &ts, &small_params());
        bundle.version = 999;
        std::fs::write(&stale_path, serde_json::to_string(&bundle).unwrap()).unwrap();
        let err = tiered.load_bundle(&stale_path).unwrap_err();
        assert!(matches!(err, SurrogateError::Version { found: 999, .. }));
        assert!(!err.is_retryable());
        assert!(!tiered.has_model());
        std::fs::remove_file(&stale_path).ok();
    }
}
