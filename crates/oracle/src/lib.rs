//! Unified execution-oracle layer (the architectural seam between
//! model-evaluation *call sites* and the cost models that answer them).
//!
//! Every consumer that needs "what would running `A × B` on target `t`
//! cost?" — corpus labeling, the workload suite, device routing,
//! ablation sweeps, the streaming executor — used to call a concrete
//! simulator function directly and serially. This crate factors that
//! question behind three pieces:
//!
//! * [`Executor`]: one trait for every cost model — the FPGA
//!   cycle-level simulator, the analytic estimator, and the CPU / GPU /
//!   Trapezoid baselines ([`executors`]).
//! * [`SimOracle`]: a memoizing front for any executor. Results are
//!   cached under a cheap structural [`Fingerprint`] of the operands ×
//!   the target index, so a (matrix, design) pair is evaluated at most
//!   once per process no matter how many experiment layers revisit it.
//! * [`pool`]: a deterministic, order-preserving scoped-thread parallel
//!   map (honoring the `MISAM_THREADS` env override) that fan-out sites
//!   use to label corpora and sweep workload suites on every core.
//! * [`profiles`]: the process-wide [`misam_sparse::MatrixProfile`]
//!   store. Each distinct matrix is structurally profiled exactly once;
//!   the profile then feeds closed-form scheduling in the simulator and
//!   zero-pass statistics in the feature extractor.
//!
//! Determinism contract: `par_map` returns results in input order and
//! executors are pure functions of their operands, so any
//! `MISAM_THREADS` setting — including 1 — produces byte-identical
//! results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod executors;
pub mod fingerprint;
pub mod profiles;
pub mod surrogate;

/// Deterministic scoped-thread parallel map (re-exported from
/// [`misam_pool`] so historical `misam_oracle::pool::` paths keep
/// working; the pool itself lives in its own crate so lower layers
/// like `misam-mlkit` can share it without depending on the oracle).
pub use misam_pool as pool;

mod service;

pub use cache::CacheStats;
pub use executors::{
    AnalyticFpga, CpuExecutor, CustomFpga, FpgaSim, GpuExecutor, TrapezoidExecutor,
};
pub use fingerprint::Fingerprint;
/// Forest hyperparameters, re-exported so [`SurrogateTrainParams`] is
/// constructible from this crate's API alone.
pub use misam_mlkit::regforest::RegForestParams;
pub use service::{global, SimOracle};
pub use surrogate::{
    tiered_global, SurrogateBundle, SurrogateError, SurrogateExecutor, SurrogateModel,
    SurrogateTrainParams, TieredOracle, TieredStats, SURROGATE_BUNDLE_VERSION,
};

use misam_sim::{Operand, SimReport};
use misam_sparse::{CsrMatrix, LazyMatrix, LazyOperand};

/// A cost model that can evaluate `a × b` on one of its targets.
///
/// `target` indexes the executor's design/device space: the four FPGA
/// dataflow designs for [`FpgaSim`], the three Trapezoid dataflows for
/// [`TrapezoidExecutor`], a single device for the CPU/GPU baselines.
/// Implementations must be pure (same operands + target → identical
/// report) and thread-safe; that is what makes memoization and
/// parallel fan-out sound.
pub trait Executor: Sync {
    /// The cost report this executor produces.
    type Report: Clone + Send + Sync;

    /// Number of valid targets; `execute` accepts `0..targets()`.
    fn targets(&self) -> usize;

    /// Evaluates `a × b` on `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.targets()` or operand shapes disagree.
    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> Self::Report;

    /// Evaluates every target for one operand pair, in target order.
    fn execute_all(&self, a: &CsrMatrix, b: Operand<'_>) -> Vec<Self::Report> {
        (0..self.targets()).map(|t| self.execute(a, b, t)).collect()
    }
}

/// A labeler for lazy (structure-only) operand pairs — the seam corpus
/// generation plugs different oracle tiers into. [`SimOracle`] labels
/// through the memoized cycle sim; [`surrogate::TieredOracle`] answers
/// from the gated surrogate with sim fallback. Implementations must be
/// pure functions of the operands (given fixed installed models), so
/// parallel corpus labeling stays byte-identical at any thread count.
pub trait LazyLabeler: Sync {
    /// Labels every design for one lazy pair, in [`Executor`] target
    /// order.
    fn label_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport>;

    /// [`LazyLabeler::label_all_lazy`] with pair features the caller
    /// already extracted under `tile` (the corpus pipeline computes
    /// them for every sample before labeling). Labelers that gate on
    /// features — the tiered oracle — skip re-extraction when the
    /// config and arity match; everyone else ignores the hint. Results
    /// must be byte-identical to [`LazyLabeler::label_all_lazy`]: the
    /// features are a cache, never an input that changes the answer.
    fn label_all_lazy_with_features(
        &self,
        a: &LazyMatrix,
        b: LazyOperand<'_>,
        features: &[f64],
        tile: &misam_features::TileConfig,
    ) -> Vec<SimReport> {
        let _ = (features, tile);
        self.label_all_lazy(a, b)
    }
}

impl LazyLabeler for SimOracle<FpgaSim> {
    fn label_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        self.execute_all_lazy(a, b)
    }
}

impl<L: LazyLabeler + ?Sized> LazyLabeler for &L {
    fn label_all_lazy(&self, a: &LazyMatrix, b: LazyOperand<'_>) -> Vec<SimReport> {
        (**self).label_all_lazy(a, b)
    }

    fn label_all_lazy_with_features(
        &self,
        a: &LazyMatrix,
        b: LazyOperand<'_>,
        features: &[f64],
        tile: &misam_features::TileConfig,
    ) -> Vec<SimReport> {
        (**self).label_all_lazy_with_features(a, b, features, tile)
    }
}

impl<E: Executor + ?Sized> Executor for &E {
    type Report = E::Report;

    fn targets(&self) -> usize {
        (**self).targets()
    }

    fn execute(&self, a: &CsrMatrix, b: Operand<'_>, target: usize) -> Self::Report {
        (**self).execute(a, b, target)
    }
}
