//! Deterministic scoped-thread parallel map.
//!
//! The fan-out primitive behind corpus labeling and experiment sweeps:
//! `par_map(&items, f)` applies `f` to every item on a worker pool and
//! returns results **in input order**, so callers observe exactly the
//! sequence a serial loop would produce. Work is claimed from a shared
//! atomic counter (dynamic load balancing — simulation cost varies by
//! orders of magnitude across matrices) and results flow back over a
//! channel tagged with their input index.
//!
//! Thread count resolves from the `MISAM_THREADS` environment variable
//! when set (clamped to at least 1), else from
//! `std::thread::available_parallelism`. `MISAM_THREADS=1` bypasses
//! thread spawning entirely and runs the plain serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves the worker count: `MISAM_THREADS` override, else all cores.
pub fn default_threads() -> usize {
    match std::env::var("MISAM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("warning: ignoring unparsable MISAM_THREADS={v:?}");
                available()
            }
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on [`default_threads`] workers, returning
/// results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (1 = serial in-thread).
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                // A closed channel means the collector stopped early
                // (it never does today); just stop producing.
                if tx.send((idx, f(&items[idx]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, value) in rx.iter() {
            slots[idx] = Some(value);
        }
    })
    .expect("oracle worker pool panicked");

    slots.into_iter().map(|s| s.expect("worker dropped an item")).collect()
}

/// Applies `f` to every index in `0..count` on a worker pool, returning
/// results in index order — [`par_map_with`] without a backing slice.
///
/// This is the streaming fan-out primitive: corpus generation derives
/// each sample from its index and a seed, so there is nothing to
/// collect into a slice beforehand. Workers claim indices dynamically
/// from a shared counter (generation + labeling cost varies per
/// sample), and `threads == 1` runs the plain serial loop, so any
/// thread count produces byte-identical results.
pub fn par_map_indices<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                if tx.send((idx, f(idx))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, value) in rx.iter() {
            slots[idx] = Some(value);
        }
    })
    .expect("oracle worker pool panicked");

    slots.into_iter().map(|s| s.expect("worker dropped an item")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_map_matches_serial_at_any_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let serial: Vec<u64> = (0..500).map(f).collect();
        for threads in [1, 2, 7, 16] {
            assert_eq!(par_map_indices(500, threads, f), serial);
        }
        assert!(par_map_indices(0, 4, f).is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(&items, 8, |&n| n * 3);
        assert_eq!(out, (0..1000).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let slow = |&n: &u64| {
            // Uneven work so claim order scrambles.
            (0..(n % 17) * 100).fold(n, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        assert_eq!(par_map_with(&items, 1, slow), par_map_with(&items, 7, slow));
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(&empty, 4, |&n| n).is_empty());
        assert_eq!(par_map_with(&[5u32], 4, |&n| n + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map_with(&items, 64, |&n| n as u32), vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
