//! Deterministic scoped-thread parallel map.
//!
//! The fan-out primitive behind corpus labeling and experiment sweeps:
//! `par_map(&items, f)` applies `f` to every item on a worker pool and
//! returns results **in input order**, so callers observe exactly the
//! sequence a serial loop would produce. Work is claimed from a shared
//! atomic counter (dynamic load balancing — simulation cost varies by
//! orders of magnitude across matrices) and results flow back over a
//! channel tagged with their input index.
//!
//! Thread count resolves from the `MISAM_THREADS` environment variable
//! when set (clamped to at least 1), else from
//! `std::thread::available_parallelism`. `MISAM_THREADS=1` bypasses
//! thread spawning entirely and runs the plain serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Resolves the worker count: `MISAM_THREADS` override, else all cores.
pub fn default_threads() -> usize {
    match std::env::var("MISAM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("warning: ignoring unparsable MISAM_THREADS={v:?}");
                available()
            }
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on [`default_threads`] workers, returning
/// results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (1 = serial in-thread).
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                // A closed channel means the collector stopped early
                // (it never does today); just stop producing.
                if tx.send((idx, f(&items[idx]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, value) in rx.iter() {
            slots[idx] = Some(value);
        }
    })
    .expect("oracle worker pool panicked");

    slots.into_iter().map(|s| s.expect("worker dropped an item")).collect()
}

/// Applies `f` to every index in `0..count` on a worker pool, returning
/// results in index order — [`par_map_with`] without a backing slice.
///
/// This is the streaming fan-out primitive: corpus generation derives
/// each sample from its index and a seed, so there is nothing to
/// collect into a slice beforehand. Workers claim indices dynamically
/// from a shared counter (generation + labeling cost varies per
/// sample), and `threads == 1` runs the plain serial loop, so any
/// thread count produces byte-identical results.
pub fn par_map_indices<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                if tx.send((idx, f(idx))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, value) in rx.iter() {
            slots[idx] = Some(value);
        }
    })
    .expect("oracle worker pool panicked");

    slots.into_iter().map(|s| s.expect("worker dropped an item")).collect()
}

/// Error returned by [`WorkerPool::try_submit`] when the admission
/// queue is at capacity: the caller should shed the work (reply
/// "overloaded", retry later) rather than block or buffer unboundedly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull {
    /// The queue capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool admission queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for PoolFull {}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A long-lived worker pool with a bounded admission queue.
///
/// Where [`par_map`] spawns scoped threads for one batch and joins them,
/// `WorkerPool` keeps its workers alive across submissions — the shape a
/// long-running server needs. Admission is bounded: [`WorkerPool::try_submit`]
/// refuses jobs once `capacity` submissions are waiting, so a traffic
/// burst sheds load instead of growing the queue (and the process) without
/// limit. Dropping the pool closes the queue, lets the workers drain
/// every already-accepted job, and joins them — a graceful drain, not an
/// abort.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1) behind an
    /// admission queue of `capacity` (clamped to at least 1) waiting jobs.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let depth = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("misam-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers, depth, capacity: capacity.max(1) }
    }

    /// Submits a job unless the admission queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] when `capacity` jobs are already waiting (or
    /// the pool is shutting down); the job is dropped, not queued.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolFull>
    where
        F: FnOnce() + Send + 'static,
    {
        let full = PoolFull { capacity: self.capacity };
        let Some(tx) = self.tx.as_ref() else { return Err(full) };
        // Reserve a queue slot before sending so the bound is exact even
        // under concurrent submitters.
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return Err(full);
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if tx.send(Box::new(job)).is_err() {
            unreachable!("pool workers alive while sender held");
        }
        Ok(())
    }

    /// Jobs accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The admission-queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queue, drains every accepted job, and joins the
    /// workers. Equivalent to dropping the pool, but callable by name at
    /// an explicit shutdown point.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            w.join().expect("pool worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_map_matches_serial_at_any_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let serial: Vec<u64> = (0..500).map(f).collect();
        for threads in [1, 2, 7, 16] {
            assert_eq!(par_map_indices(500, threads, f), serial);
        }
        assert!(par_map_indices(0, 4, f).is_empty());
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_with(&items, 8, |&n| n * 3);
        assert_eq!(out, (0..1000).map(|n| n * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let slow = |&n: &u64| {
            // Uneven work so claim order scrambles.
            (0..(n % 17) * 100).fold(n, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        assert_eq!(par_map_with(&items, 1, slow), par_map_with(&items, 7, slow));
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(&empty, 4, |&n| n).is_empty());
        assert_eq!(par_map_with(&[5u32], 4, |&n| n + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map_with(&items, 64, |&n| n as u32), vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let hits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            let tx = tx.clone();
            pool.try_submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..32 {
            rx.recv().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn worker_pool_sheds_when_queue_full() {
        // One worker parked on a gate: every later job stays queued, so
        // the admission bound is observable deterministically.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = crossbeam::channel::unbounded::<()>();
        pool.try_submit(move || {
            gate_rx.recv().unwrap();
        })
        .unwrap();
        // Wait until the worker has dequeued the blocker.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).unwrap();
        pool.try_submit(|| {}).unwrap();
        let err = pool.try_submit(|| {}).unwrap_err();
        assert_eq!(err, PoolFull { capacity: 2 });
        assert_eq!(pool.queue_depth(), 2);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn worker_pool_shutdown_drains_accepted_jobs() {
        let pool = WorkerPool::new(2, 128);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 64, "shutdown must drain, not abort");
    }
}
