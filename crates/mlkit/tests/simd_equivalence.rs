//! Bit-identity between the mlkit lane kernels and their scalar
//! references: the frontier-walk partition (branchless/AVX2 vs the
//! original branchy loop), the columnar gather, and the full
//! `predict_batch_matrix` path against its scalar-pinned twin — over
//! segment lengths 0, 1, lane−1, lane, lane+1 and NaN-bearing columns.

use misam_mlkit::flat::{FlatForest, FlatTree};
use misam_mlkit::forest::{ForestParams, RandomForest};
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::simd;
use misam_mlkit::tree::{DecisionTree, TreeParams};
use proptest::prelude::*;

fn run_partition(
    vals: &[f64],
    t: f64,
    f: impl Fn(&[f64], f64, &mut [u32], &mut [u32], usize, usize) -> usize,
) -> (Vec<u32>, usize) {
    let mut idx: Vec<u32> = (0..vals.len() as u32).collect();
    let mut scratch = vec![0u32; vals.len()];
    let nl = f(vals, t, &mut idx, &mut scratch, 0, vals.len());
    idx[nl..].copy_from_slice(&scratch[..vals.len() - nl]);
    (idx, nl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition: lanes (AVX2 where detected, branchless otherwise) vs
    /// the branchy scalar loop, with NaN injection — both the split
    /// point and the full permutation must match.
    #[test]
    fn partition_forms_agree(
        mut vals in proptest::collection::vec(-100.0f64..100.0, 0..80),
        t in -50.0f64..50.0,
        nan_at in proptest::collection::vec(0usize..80, 0..6),
    ) {
        for &p in &nan_at {
            if p < vals.len() {
                vals[p] = f64::NAN;
            }
        }
        let (s, nls) = run_partition(&vals, t, simd::partition_segment_scalar);
        let (l, nll) = run_partition(&vals, t, simd::partition_segment_lanes);
        prop_assert_eq!(nls, nll);
        prop_assert_eq!(s, l);
    }

    /// Columnar gather: four-wide quads vs the serial extend.
    #[test]
    fn gather_forms_agree(
        idx in proptest::collection::vec(0usize..64, 0..40),
        prefix in 0usize..3,
    ) {
        let col: Vec<f64> = (0..64).map(|i| i as f64 * 0.75 - 20.0).collect();
        let mut a = vec![1.5; prefix];
        let mut b = a.clone();
        simd::gather_into_scalar(&col, &idx, &mut a);
        simd::gather_into_lanes(&col, &idx, &mut b);
        prop_assert_eq!(a, b);
    }

    /// End-to-end frontier walk: the dispatched batch predictor vs the
    /// scalar-pinned twin on a fitted tree and forest.
    #[test]
    fn batch_predictors_match_scalar_twin(
        n_rows in 1usize..200,
        seed in 0u64..10_000,
    ) {
        let (train_x, train_y): (Vec<Vec<f64>>, Vec<usize>) = (0..150)
            .map(|i| {
                let a = ((i * 7 + seed as usize) % 17) as f64;
                let b = ((i * 13) % 23) as f64;
                (vec![a, b, (i % 5) as f64], usize::from(a > 8.0) + usize::from(b > 11.0))
            })
            .unzip();
        let tree = FlatTree::from_tree(&DecisionTree::fit(&train_x, &train_y, 3, &TreeParams::default()));
        let params = ForestParams { n_trees: 5, features_per_tree: Some(2), ..Default::default() };
        let forest = FlatForest::from_forest(&RandomForest::fit(&train_x, &train_y, 3, &params));

        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|i| vec![((i * 3 + 1) % 17) as f64, ((i * 11) % 23) as f64, (i % 5) as f64])
            .collect();
        let m = FeatureMatrix::from_rows(&rows);
        prop_assert_eq!(tree.predict_batch_matrix(&m), tree.predict_batch_matrix_scalar(&m));
        prop_assert_eq!(forest.predict_batch_matrix(&m), forest.predict_batch_matrix_scalar(&m));
    }
}

/// Exact lane-boundary segment lengths (0, 1, 3, 4, 5, 7, 8, 9) plus
/// the all-left / all-right extremes the shuffle LUT's 0x0 and 0xF
/// entries cover.
#[test]
fn partition_boundary_lengths_and_extremes() {
    for n in [0usize, 1, 3, 4, 5, 7, 8, 9] {
        for t in [-1e9f64, 0.0, 1e9] {
            let vals: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
            let (s, nls) = run_partition(&vals, t, simd::partition_segment_scalar);
            let (l, nll) = run_partition(&vals, t, simd::partition_segment_lanes);
            assert_eq!(nls, nll, "n={n} t={t}");
            assert_eq!(s, l, "n={n} t={t}");
        }
    }
}
