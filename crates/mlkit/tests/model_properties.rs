//! Property-based tests of the ML toolkit: invariants that must hold for
//! any training set, not just the unit-test fixtures.

use misam_mlkit::cv;
use misam_mlkit::metrics;
use misam_mlkit::regression::{RegParams, RegressionTree};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use proptest::prelude::*;

/// Strategy: a labeled dataset with `f` features, up to `n` samples and
/// `c` classes (at least one sample).
fn arb_dataset(f: usize, n: usize, c: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>)> {
    proptest::collection::vec((proptest::collection::vec(-100.0f64..100.0, f), 0..c), 1..=n)
        .prop_map(|rows| rows.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Training predictions can never go outside the label alphabet, and
    /// an unpruned deep tree must fit any consistent training set
    /// exactly wherever feature vectors are unique.
    #[test]
    fn tree_predicts_within_alphabet((x, y) in arb_dataset(4, 60, 3)) {
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams {
            max_depth: 30,
            ..TreeParams::default()
        });
        for (xi, &yi) in x.iter().zip(&y) {
            let p = tree.predict(xi);
            prop_assert!(p < 3);
            // Exact fit holds when xi is unique in the training set.
            let dup = x.iter().zip(&y).any(|(xj, &yj)| xj == xi && yj != yi);
            if !dup {
                prop_assert_eq!(p, yi);
            }
        }
    }

    /// Compact serialization round-trips predictions bit-for-bit.
    #[test]
    fn tree_bytes_roundtrip((x, y) in arb_dataset(3, 40, 4)) {
        let tree = DecisionTree::fit(&x, &y, 4, &TreeParams::default());
        let back = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        for xi in &x {
            prop_assert_eq!(tree.predict(xi), back.predict(xi));
        }
        prop_assert_eq!(tree.to_bytes().len(), tree.serialized_size());
    }

    /// Feature importances are a probability vector over features (or all
    /// zero for a stump).
    #[test]
    fn importances_form_a_distribution((x, y) in arb_dataset(5, 50, 2)) {
        let tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let imp = tree.feature_importances();
        prop_assert_eq!(imp.len(), 5);
        prop_assert!(imp.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        let sum: f64 = imp.iter().sum();
        prop_assert!(sum < 1.0 + 1e-9);
        if tree.node_count() > 1 {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    /// A regression tree's predictions are bounded by the target range.
    #[test]
    fn regression_predictions_stay_in_target_hull(
        x in proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, 3), 2..40),
        shift in -10.0f64..10.0,
    ) {
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.5 + shift).collect();
        let tree = RegressionTree::fit(&x, &y, &RegParams::default());
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for xi in &x {
            let p = tree.predict(xi);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// Splits and folds always partition the index space.
    #[test]
    fn cv_partitions_indices(n in 2usize..200, k in 2usize..8, seed in 0u64..50) {
        prop_assume!(k <= n);
        let split = cv::train_test_split(n, 0.7, seed);
        let mut all: Vec<usize> = split.train.iter().chain(&split.validation).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(&all, &(0..n).collect::<Vec<_>>());

        let folds = cv::k_folds(n, k, seed);
        let mut all2: Vec<usize> = folds.iter().flatten().copied().collect();
        all2.sort_unstable();
        prop_assert_eq!(&all2, &(0..n).collect::<Vec<_>>());
    }

    /// Geomean lies between min and max; accuracy of self-labels is 1.
    #[test]
    fn metric_sanity(values in proptest::collection::vec(0.01f64..100.0, 1..30)) {
        let g = metrics::geomean(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo - 1e-12 && g <= hi + 1e-12);

        let labels: Vec<usize> = (0..values.len()).map(|i| i % 3).collect();
        prop_assert_eq!(metrics::accuracy(&labels, &labels), 1.0);
    }

    /// Class weights: present classes get positive weight, absent zero,
    /// and rarer classes never get less weight than commoner ones.
    #[test]
    fn class_weights_are_monotone(labels in proptest::collection::vec(0usize..4, 1..120)) {
        let w = metrics::inverse_frequency_weights(&labels, 4);
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l] += 1;
        }
        for c in 0..4 {
            if counts[c] == 0 {
                prop_assert_eq!(w[c], 0.0);
            } else {
                prop_assert!(w[c] > 0.0);
            }
        }
        for a in 0..4 {
            for b in 0..4 {
                if counts[a] > 0 && counts[b] > 0 && counts[a] < counts[b] {
                    prop_assert!(w[a] >= w[b] - 1e-12);
                }
            }
        }
    }
}
