//! Equivalence proofs for the rebuilt training and inference kernels.
//!
//! The production paths (sort-once columnar induction, flat SoA
//! inference) must be indistinguishable from the originals:
//!
//! - `reference::fit_tree` (the seed per-node-sorting algorithm) and
//!   `DecisionTree::fit` grow **equal** trees — same nodes, thresholds,
//!   purities, importances — on unweighted data, ties included.
//! - `FlatTree` / `FlatRegressionTree` walks return bit-identical
//!   predictions and purities to the boxed walks, through serialization
//!   round-trips as well.
//! - `RandomForest::fit` produces byte-identical models at any thread
//!   count.

use misam_mlkit::flat::{FlatForest, FlatRegressionTree, FlatTree};
use misam_mlkit::forest::{ForestParams, RandomForest};
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::reference;
use misam_mlkit::regression::{RegParams, RegressionTree};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use proptest::prelude::*;

/// Random integer-grid dataset: small value alphabet forces tied
/// feature values, the hard case for sort-once induction (tie blocks
/// must not shift split choices).
fn grid_dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<usize>, usize)> {
    (2usize..=4, 1usize..=5, 5usize..=60).prop_flat_map(|(nc, nf, n)| {
        (
            proptest::collection::vec(proptest::collection::vec(0i32..8, nf), n),
            proptest::collection::vec(0usize..nc, n),
            proptest::Just(nc),
        )
            .prop_map(|(xi, y, nc)| {
                let x: Vec<Vec<f64>> =
                    xi.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect();
                (x, y, nc)
            })
    })
}

/// Probe points on and off the training grid (half-integer coordinates
/// land exactly on thresholds' midpoints).
fn probes(nf: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec((-2i32..20).prop_map(|v| v as f64 / 2.0), nf),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_once_induction_reproduces_the_reference_tree(
        (x, y, nc) in grid_dataset(),
        depth in 1usize..8,
        min_leaf in 1usize..4,
    ) {
        let params = TreeParams {
            max_depth: depth,
            min_samples_leaf: min_leaf,
            ..TreeParams::default()
        };
        let reference = reference::fit_tree(&x, &y, nc, &params);
        let production = DecisionTree::fit(&x, &y, nc, &params);
        // Full structural equality: nodes, thresholds, purities,
        // importances — not merely matching predictions.
        prop_assert_eq!(&reference, &production);
        prop_assert_eq!(reference.to_bytes(), production.to_bytes());
    }

    #[test]
    fn flat_tree_walk_is_bit_identical_to_boxed(
        (x, y, nc) in grid_dataset(),
        seed_probes in probes(5),
    ) {
        let tree = DecisionTree::fit(&x, &y, nc, &TreeParams::default());
        let flat = FlatTree::from_tree(&tree);
        let nf = x[0].len();
        // Probe on training rows and on off-grid points (truncated to
        // the dataset's arity).
        let trimmed: Vec<Vec<f64>> = seed_probes.iter().map(|p| p[..nf].to_vec()).collect();
        for p in x.iter().chain(trimmed.iter()) {
            let (bc, bp) = tree.predict_with_purity(p);
            let (fc, fp) = flat.predict_with_purity(p);
            prop_assert_eq!(bc, fc);
            prop_assert!(bp.to_bits() == fp.to_bits(), "purity must be bit-identical");
        }
        // Columnar batch agrees with the row walk.
        let m = FeatureMatrix::from_rows(&x);
        prop_assert_eq!(flat.predict_batch_matrix(&m), tree.predict_batch(&x));
    }

    #[test]
    fn serialization_roundtrips_preserve_predictions(
        (x, y, nc) in grid_dataset(),
    ) {
        let tree = DecisionTree::fit(&x, &y, nc, &TreeParams::default());
        let flat = FlatTree::from_tree(&tree);
        // The two forms share one wire format...
        prop_assert_eq!(flat.to_bytes(), tree.to_bytes());
        // ...and both decoders agree with each other on every row.
        let boxed_back = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        let flat_back = FlatTree::from_bytes(&flat.to_bytes()).unwrap();
        prop_assert_eq!(&flat_back.to_tree(), &boxed_back);
        for p in &x {
            prop_assert_eq!(boxed_back.predict(p), flat_back.predict(p));
            let (_, bp) = boxed_back.predict_with_purity(p);
            let (_, fp) = flat_back.predict_with_purity(p);
            prop_assert!(bp.to_bits() == fp.to_bits());
        }
    }

    #[test]
    fn regression_kernels_agree_on_continuous_features(
        raw in proptest::collection::vec((0i32..1000, 0i32..1000, -50i32..50), 5..60),
    ) {
        // Perturb coordinates per row so feature values are distinct —
        // with no ties, reference and production orderings are forced
        // identical and the trees must be equal.
        let x: Vec<Vec<f64>> = raw
            .iter()
            .enumerate()
            .map(|(i, (a, b, _))| {
                vec![*a as f64 + i as f64 * 1e-7, *b as f64 + i as f64 * 1e-7]
            })
            .collect();
        let y: Vec<f64> = raw.iter().map(|(a, b, c)| (*a - *b + *c) as f64 * 0.25).collect();
        let params = RegParams::default();
        let reference = reference::fit_regression(&x, &y, &params);
        let production = RegressionTree::fit(&x, &y, &params);
        prop_assert_eq!(&reference, &production);

        let flat = FlatRegressionTree::from_tree(&production);
        for p in &x {
            let a = production.predict(p);
            let b = flat.predict(p);
            prop_assert!(a.to_bits() == b.to_bits(), "latency output must be bit-identical");
        }
        let m = FeatureMatrix::from_rows(&x);
        let batch = flat.predict_batch_matrix(&m);
        for (rb, p) in batch.iter().zip(&x) {
            prop_assert!(rb.to_bits() == production.predict(p).to_bits());
        }
    }
}

#[test]
fn forest_fit_is_byte_identical_across_thread_counts() {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..240 {
        x.push(vec![(i % 13) as f64, ((i * 7) % 29) as f64, ((i * 3) % 5) as f64, (i % 2) as f64]);
        y.push((i % 13 > 6) as usize + ((i * 7) % 29 > 14) as usize);
    }
    let params = ForestParams {
        n_trees: 12,
        features_per_tree: Some(3),
        seed: 42,
        ..ForestParams::default()
    };
    let one = RandomForest::fit_with_threads(&x, &y, 3, &params, 1);
    for threads in [2, 4, 8] {
        let many = RandomForest::fit_with_threads(&x, &y, 3, &params, threads);
        assert_eq!(one, many, "forest must be identical at {threads} threads");
        // Byte-identical through the flat wire format too.
        assert_eq!(
            FlatForest::from_forest(&one).to_bytes(),
            FlatForest::from_forest(&many).to_bytes(),
        );
    }
}

#[test]
fn flat_forest_votes_like_the_boxed_forest() {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..150 {
        x.push(vec![(i % 11) as f64, ((i * 5) % 17) as f64, (i % 3) as f64]);
        y.push(usize::from(i % 11 > 5));
    }
    let forest = RandomForest::fit(
        &x,
        &y,
        2,
        &ForestParams { n_trees: 9, features_per_tree: Some(2), ..ForestParams::default() },
    );
    let flat = FlatForest::from_forest(&forest);
    let m = FeatureMatrix::from_rows(&x);
    assert_eq!(flat.predict_batch(&x), forest.predict_batch(&x));
    assert_eq!(flat.predict_batch_matrix(&m), forest.predict_batch(&x));
    let back = FlatForest::from_bytes(&flat.to_bytes()).unwrap();
    assert_eq!(back.predict_batch(&x), forest.predict_batch(&x));
}
