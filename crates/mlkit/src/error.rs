//! Typed errors for the compact model wire formats.
//!
//! `DecisionTree::from_bytes` (and the flat-forest equivalent) used to
//! report failures as bare `String`s; a serving `Reload` endpoint wants
//! to log *where* a blob went bad and whether retrying could help, so
//! decoding now reports [`ModelDecodeError`] — each variant carries the
//! byte offset and enough context to pinpoint the corruption. `String`
//! conversion is kept so existing `Result<_, String>` call sites keep
//! compiling (the same pattern `misam::persist::PersistError` follows).

/// Why a compact model blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The magic bytes at the start of the blob are wrong or missing.
    BadMagic {
        /// The magic the decoder expected (e.g. `MSDT`).
        expected: [u8; 4],
        /// Bytes actually found (zero-padded when the blob is shorter
        /// than four bytes).
        found: [u8; 4],
    },
    /// The blob ends before the structure it declares.
    Truncated {
        /// Bytes the declared structure requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
        /// Offset of the structure that could not be read.
        offset: usize,
    },
    /// A split node's child index points outside the node array.
    LinkOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range child link.
        link: u32,
        /// Number of nodes in the array.
        count: usize,
        /// Byte offset of the offending node record.
        offset: usize,
    },
    /// A node record carries an unknown tag byte.
    UnknownTag {
        /// The unrecognized tag.
        tag: u8,
        /// Index of the offending node.
        node: usize,
        /// Byte offset of the offending node record.
        offset: usize,
    },
    /// A forest tree's feature map references a feature the forest does
    /// not have.
    FeatureOutOfRange {
        /// Index of the offending tree.
        tree: usize,
        /// The out-of-range feature index.
        feature: u32,
        /// The forest's feature count.
        n_features: usize,
        /// Byte offset of the offending map entry.
        offset: usize,
    },
    /// A nested tree blob inside a forest failed to decode.
    Tree {
        /// Index of the offending tree.
        tree: usize,
        /// Byte offset where the tree blob starts.
        offset: usize,
        /// The tree-level failure.
        source: Box<ModelDecodeError>,
    },
}

impl std::fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelDecodeError::BadMagic { expected, found } => write!(
                f,
                "missing {} header (found {:?})",
                String::from_utf8_lossy(expected),
                found
            ),
            ModelDecodeError::Truncated { expected, found, offset } => {
                write!(f, "expected {expected} bytes, got {found} (at offset {offset})")
            }
            ModelDecodeError::LinkOutOfRange { node, link, count, offset } => {
                write!(f, "node {node} links out of range ({link} >= {count}, at offset {offset})")
            }
            ModelDecodeError::UnknownTag { tag, node, offset } => {
                write!(f, "unknown node tag {tag} at node {node} (offset {offset})")
            }
            ModelDecodeError::FeatureOutOfRange { tree, feature, n_features, offset } => write!(
                f,
                "tree {tree} maps feature {feature} outside the forest's {n_features} \
                 (at offset {offset})"
            ),
            ModelDecodeError::Tree { tree, offset, source } => {
                write!(f, "tree {tree} (at offset {offset}): {source}")
            }
        }
    }
}

impl std::error::Error for ModelDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelDecodeError::Tree { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Existing call sites accumulate errors as `String`; keep `?` working
/// for them.
impl From<ModelDecodeError> for String {
    fn from(e: ModelDecodeError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_offsets_and_context() {
        let e = ModelDecodeError::Truncated { expected: 48, found: 30, offset: 16 };
        let s = e.to_string();
        assert!(s.contains("48") && s.contains("30") && s.contains("16"), "{s}");

        let nested = ModelDecodeError::Tree {
            tree: 2,
            offset: 96,
            source: Box::new(ModelDecodeError::UnknownTag { tag: 7, node: 3, offset: 64 }),
        };
        let s = nested.to_string();
        assert!(s.contains("tree 2") && s.contains("tag 7"), "{s}");
        assert!(std::error::Error::source(&nested).is_some());
    }

    #[test]
    fn string_conversion_keeps_legacy_callers_alive() {
        let msg: String = ModelDecodeError::BadMagic { expected: *b"MSDT", found: *b"nope" }.into();
        assert!(msg.contains("MSDT"), "{msg}");
    }
}
