//! CART decision-tree classifier.
//!
//! Greedy top-down induction with gini impurity, optional per-class
//! sample weights (the paper weights classes inversely to frequency to
//! counter label imbalance, §3.1), and three pruning controls: maximum
//! depth, minimum leaf size, and minimum impurity gain. The fitted tree
//! is a flat node array — inference walks the array with no pointer
//! chasing, the Rust analogue of the paper's "unrolled decision logic"
//! (§5.5) — and serializes to a compact 16-byte-per-node binary format to
//! substantiate the 6 KB model-footprint claim.
//!
//! # Induction is sort-once
//!
//! The split search never sorts inside a node. Each feature is argsorted
//! **once** over the whole training set (into a feature-major index
//! buffer with one extra row holding the node membership in ascending
//! sample order); choosing a split then stably partitions every row of
//! the buffer in place, so each child inherits per-feature orderings that
//! are already sorted. Induction costs
//! O(features · n log n + Σ_nodes features · |node|) instead of the
//! seed's O(Σ_nodes features · |node| log |node|), and every scan reads a
//! contiguous [`FeatureMatrix`] column instead of pointer-chasing
//! `Vec<Vec<f64>>` rows. Candidate evaluation order, accumulation order,
//! and tie-breaking replicate the seed algorithm (preserved in
//! [`crate::reference`]) operation for operation, so the trees are
//! bit-identical on tie-free features and prediction-identical in
//! general — property-tested in `tests/flat_equivalence.rs`.

use crate::error::ModelDecodeError;
use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Hyperparameters for tree induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth of the tree (root = depth 0).
    pub max_depth: usize,
    /// Minimum weighted samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum weighted gini decrease for a split to be kept.
    pub min_gain: f64,
    /// Optional per-class weights (index = class label). `None` weights
    /// all classes equally.
    pub class_weights: Option<Vec<f64>>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 1,
            min_samples_split: 2,
            min_gain: 1e-9,
            class_weights: None,
        }
    }
}

/// One node of the flattened tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: go left when `x[feature] <= threshold`.
    Split {
        /// Feature index tested.
        feature: u16,
        /// Decision threshold.
        threshold: f64,
        /// Index of the left child in the node array.
        left: u32,
        /// Index of the right child in the node array.
        right: u32,
    },
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class label.
        class: u16,
        /// Weighted fraction of training samples of that class at this
        /// leaf (a confidence proxy).
        purity: f32,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree to feature rows `x` and labels `y` over `n_classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, rows have inconsistent lengths, any label
    /// is `>= n_classes`, or a provided class-weight vector is shorter
    /// than `n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, params: &TreeParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree to an empty dataset");
        Self::fit_matrix(&FeatureMatrix::from_rows(x), y, n_classes, params)
    }

    /// Fits a tree to a columnar [`FeatureMatrix`] — the allocation the
    /// row-slice [`DecisionTree::fit`] front door performs internally,
    /// skipped when the caller already holds columnar features (forest
    /// bootstraps, cross-validation folds, `misam-core` training).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, any label is `>= n_classes`, a
    /// provided class-weight vector is shorter than `n_classes`, or the
    /// feature count exceeds the compact node format's `u16` range.
    pub fn fit_matrix(
        m: &FeatureMatrix,
        y: &[usize],
        n_classes: usize,
        params: &TreeParams,
    ) -> Self {
        assert_eq!(m.n_rows(), y.len(), "feature and label counts differ");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        assert!(m.n_features() <= u16::MAX as usize, "too many features for the node format");
        if let Some(w) = &params.class_weights {
            assert!(w.len() >= n_classes, "class-weight vector too short");
        }

        let n = m.n_rows();
        let nf = m.n_features();
        let weights: Vec<f64> =
            y.iter().map(|&l| params.class_weights.as_ref().map_or(1.0, |w| w[l])).collect();

        // Sort-once: argsort every feature over the full training set,
        // plus one membership row in ascending sample order (the order
        // the reference algorithm accumulates node statistics in).
        let mut order = vec![0u32; (nf + 1) * n];
        for f in 0..nf {
            let col = m.col(f);
            let seg = &mut order[f * n..(f + 1) * n];
            for (k, v) in seg.iter_mut().enumerate() {
                *v = k as u32;
            }
            seg.sort_unstable_by(|&a, &b| {
                col[a as usize].partial_cmp(&col[b as usize]).expect("features must not be NaN")
            });
        }
        for (k, v) in order[nf * n..].iter_mut().enumerate() {
            *v = k as u32;
        }

        let mut b = Builder {
            m,
            y,
            weights,
            n_classes,
            params,
            nodes: Vec::new(),
            importance_raw: vec![0.0; nf],
            order,
            scratch: vec![0u32; n],
            goes_left: vec![false; n],
            left_counts: vec![0.0; n_classes],
        };
        b.grow(0, n, 0);

        let total: f64 = b.importance_raw.iter().sum();
        let importances = if total > 0.0 {
            b.importance_raw.iter().map(|v| v / total).collect()
        } else {
            vec![0.0; nf]
        };
        DecisionTree { nodes: b.nodes, n_features: nf, n_classes, importances }
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_with_purity(features).0
    }

    /// Predicts the class and the training purity of the reached leaf.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict_with_purity(&self, features: &[f64]) -> (usize, f64) {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Split { feature, threshold, left, right } => {
                    i = if features[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
                Node::Leaf { class, purity } => return (class as usize, purity as f64),
            }
        }
    }

    /// Predicts a batch of feature vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Predicts every row of a columnar matrix through the flat
    /// inference form (one conversion, then the branch-light walk).
    ///
    /// # Panics
    ///
    /// Panics if `m.n_features() != n_features`.
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<usize> {
        crate::flat::FlatTree::from_tree(self).predict_batch_matrix(m)
    }

    /// Normalized gini feature importances (sum to 1 when any split
    /// exists) — the quantity plotted in the paper's Figure 4.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, left as usize).max(walk(nodes, right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Number of classes the tree was trained over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The flat node array (crate-internal: flat-form conversion and the
    /// reference implementation's test hooks).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Assembles a tree from already-validated parts (crate-internal:
    /// decoding and the reference implementation).
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        n_features: usize,
        n_classes: usize,
        importances: Vec<f64>,
    ) -> Self {
        DecisionTree { nodes, n_features, n_classes, importances }
    }

    /// Serializes to the compact on-device format: a 16-byte header plus
    /// 16 bytes per node. This is the footprint behind the paper's "6 KB
    /// model" figure.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_nodes(&self.nodes, self.n_features, self.n_classes)
    }

    /// Deserializes a tree written by [`DecisionTree::to_bytes`].
    ///
    /// Importances are not stored on-device; the decoded tree reports
    /// zeros.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelDecodeError`] pinpointing the first structural
    /// problem (offset + context); convert to `String` where a plain
    /// description is enough.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ModelDecodeError> {
        let (nodes, n_features, n_classes) = decode_nodes(data)?;
        Ok(DecisionTree { nodes, n_features, n_classes, importances: vec![0.0; n_features] })
    }

    /// Size in bytes of the compact serialization.
    pub fn serialized_size(&self) -> usize {
        16 + 16 * self.nodes.len()
    }

    /// Reduced-error pruning: repeatedly collapses any split whose
    /// removal does not reduce accuracy on `(x_val, y_val)`, until no
    /// collapse helps. This is the post-pruning pass behind the paper's
    /// "pruned … lightweight and efficient decision tree" (§3.1);
    /// returns the number of splits removed.
    ///
    /// # Panics
    ///
    /// Panics if the validation set is empty or mismatched.
    pub fn prune_with_validation(&mut self, x_val: &[Vec<f64>], y_val: &[usize]) -> usize {
        assert!(!x_val.is_empty(), "pruning needs a non-empty validation set");
        self.prune_with_validation_matrix(&FeatureMatrix::from_rows(x_val), y_val)
    }

    /// [`DecisionTree::prune_with_validation`] over columnar validation
    /// features: each candidate prune is scored with **one** columnar
    /// batch predict instead of a `predict` call per validation row, and
    /// the baseline hit count is carried incrementally instead of being
    /// recomputed before every candidate.
    ///
    /// # Panics
    ///
    /// Panics if the validation set is mismatched.
    pub fn prune_with_validation_matrix(&mut self, m: &FeatureMatrix, y_val: &[usize]) -> usize {
        assert!(m.n_rows() > 0, "pruning needs a non-empty validation set");
        assert_eq!(m.n_rows(), y_val.len(), "validation features/labels mismatch");

        let hits = |tree: &DecisionTree| -> usize {
            tree.predict_batch_matrix(m).iter().zip(y_val).filter(|(p, y)| p == y).count()
        };
        let mut baseline = hits(self);
        let mut removed = 0usize;
        loop {
            let mut changed = false;
            // Every collapsible split (both children leaves) is a
            // candidate; collapse those that don't hurt validation.
            let candidates: Vec<(usize, u16, f32)> = self
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, n)| match n {
                    Node::Split { left, right, .. } => {
                        match (&self.nodes[*left as usize], &self.nodes[*right as usize]) {
                            (
                                Node::Leaf { class: lc, purity: lp },
                                Node::Leaf { class: rc, purity: rp },
                            ) => {
                                // Majority of the purer child stands in
                                // for the merged leaf.
                                let (class, purity) =
                                    if lp >= rp { (*lc, *lp) } else { (*rc, *rp) };
                                Some((i, class, purity))
                            }
                            _ => None,
                        }
                    }
                    Node::Leaf { .. } => None,
                })
                .collect();
            for (i, class, purity) in candidates {
                let saved = self.nodes[i];
                self.nodes[i] = Node::Leaf { class, purity };
                let pruned_hits = hits(self);
                if pruned_hits >= baseline {
                    baseline = pruned_hits;
                    removed += 1;
                    changed = true;
                } else {
                    self.nodes[i] = saved;
                }
            }
            if !changed {
                break;
            }
        }
        if removed > 0 {
            self.compact();
        }
        removed
    }

    /// Non-consuming twin of [`DecisionTree::prune_with_validation_matrix`]
    /// for incremental refresh loops (the online learner): returns a
    /// pruned copy plus the number of splits removed, leaving `self` —
    /// typically the currently *serving* tree — untouched. When nothing
    /// prunes, the copy is structurally identical to the original, so
    /// callers can skip publishing it.
    ///
    /// # Panics
    ///
    /// Panics if the validation set is empty or mismatched.
    pub fn refreshed_with_validation_matrix(
        &self,
        m: &FeatureMatrix,
        y_val: &[usize],
    ) -> (DecisionTree, usize) {
        let mut refreshed = self.clone();
        let removed = refreshed.prune_with_validation_matrix(m, y_val);
        (refreshed, removed)
    }

    /// Drops unreachable nodes (after pruning) and renumbers links.
    fn compact(&mut self) {
        let mut keep = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if keep[i] {
                continue;
            }
            keep[i] = true;
            if let Node::Split { left, right, .. } = self.nodes[i] {
                stack.push(left as usize);
                stack.push(right as usize);
            }
        }
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut out = Vec::with_capacity(keep.iter().filter(|&&k| k).count());
        for (i, n) in self.nodes.iter().enumerate() {
            if keep[i] {
                remap[i] = out.len() as u32;
                out.push(*n);
            }
        }
        for n in &mut out {
            if let Node::Split { left, right, .. } = n {
                *left = remap[*left as usize];
                *right = remap[*right as usize];
            }
        }
        self.nodes = out;
    }
}

/// Encodes a node array into the compact `MSDT` wire format (shared by
/// the boxed and flat tree forms, which are byte-compatible).
pub(crate) fn encode_nodes(nodes: &[Node], n_features: usize, n_classes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 16 * nodes.len());
    out.extend_from_slice(b"MSDT");
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(n_features as u32).to_le_bytes());
    out.extend_from_slice(&(n_classes as u32).to_le_bytes());
    for n in nodes {
        match *n {
            Node::Split { feature, threshold, left, right } => {
                out.extend_from_slice(&feature.to_le_bytes());
                out.extend_from_slice(&[0u8, 0u8]); // split marker
                out.extend_from_slice(&(threshold as f32).to_le_bytes());
                out.extend_from_slice(&left.to_le_bytes());
                out.extend_from_slice(&right.to_le_bytes());
            }
            Node::Leaf { class, purity } => {
                out.extend_from_slice(&class.to_le_bytes());
                out.extend_from_slice(&[1u8, 0u8]); // leaf marker
                out.extend_from_slice(&purity.to_le_bytes());
                out.extend_from_slice(&[0u8; 8]);
            }
        }
    }
    out
}

/// Decodes the compact `MSDT` wire format into a validated node array
/// plus `(n_features, n_classes)`.
pub(crate) fn decode_nodes(data: &[u8]) -> Result<(Vec<Node>, usize, usize), ModelDecodeError> {
    if data.len() < 16 || &data[0..4] != b"MSDT" {
        let mut found = [0u8; 4];
        let take = data.len().min(4);
        found[..take].copy_from_slice(&data[..take]);
        if data.len() < 4 || &data[0..4] != b"MSDT" {
            return Err(ModelDecodeError::BadMagic { expected: *b"MSDT", found });
        }
        return Err(ModelDecodeError::Truncated { expected: 16, found: data.len(), offset: 0 });
    }
    let count = u32::from_le_bytes(data[4..8].try_into().expect("sliced")) as usize;
    let n_features = u32::from_le_bytes(data[8..12].try_into().expect("sliced")) as usize;
    let n_classes = u32::from_le_bytes(data[12..16].try_into().expect("sliced")) as usize;
    if data.len() != 16 + 16 * count {
        return Err(ModelDecodeError::Truncated {
            expected: 16 + 16 * count,
            found: data.len(),
            offset: 16,
        });
    }
    let mut nodes = Vec::with_capacity(count);
    for i in 0..count {
        let o = 16 + 16 * i;
        let tag = data[o + 2];
        let id = u16::from_le_bytes(data[o..o + 2].try_into().expect("sliced"));
        match tag {
            0 => {
                let threshold =
                    f32::from_le_bytes(data[o + 4..o + 8].try_into().expect("sliced")) as f64;
                let left = u32::from_le_bytes(data[o + 8..o + 12].try_into().expect("sliced"));
                let right = u32::from_le_bytes(data[o + 12..o + 16].try_into().expect("sliced"));
                if left as usize >= count || right as usize >= count {
                    let link = if left as usize >= count { left } else { right };
                    return Err(ModelDecodeError::LinkOutOfRange {
                        node: i,
                        link,
                        count,
                        offset: o,
                    });
                }
                nodes.push(Node::Split { feature: id, threshold, left, right });
            }
            1 => {
                let purity = f32::from_le_bytes(data[o + 4..o + 8].try_into().expect("sliced"));
                nodes.push(Node::Leaf { class: id, purity });
            }
            t => return Err(ModelDecodeError::UnknownTag { tag: t, node: i, offset: o }),
        }
    }
    Ok((nodes, n_features, n_classes))
}

/// Sort-once induction state. `order` is a `(n_features + 1) × n`
/// feature-major index buffer: row `f < n_features` keeps the node's
/// samples sorted by feature `f`; the final row keeps them in ascending
/// sample order (node membership). Growing a node partitions every row
/// stably in place, so children never re-sort.
struct Builder<'a> {
    m: &'a FeatureMatrix,
    y: &'a [usize],
    weights: Vec<f64>,
    n_classes: usize,
    params: &'a TreeParams,
    nodes: Vec<Node>,
    importance_raw: Vec<f64>,
    order: Vec<u32>,
    scratch: Vec<u32>,
    goes_left: Vec<bool>,
    left_counts: Vec<f64>,
}

impl Builder<'_> {
    /// Recursively grows the subtree over buffer span `[lo, hi)`,
    /// returning its node index.
    fn grow(&mut self, lo: usize, hi: usize, depth: usize) -> u32 {
        let n = self.m.n_rows();
        let nf = self.m.n_features();

        // Node statistics, accumulated in ascending sample order — the
        // exact order (and therefore the exact floating-point sums) the
        // reference per-node algorithm produces.
        let mut counts = vec![0.0; self.n_classes];
        let mut total_w = 0.0;
        for &i in &self.order[nf * n + lo..nf * n + hi] {
            let w = self.weights[i as usize];
            counts[self.y[i as usize]] += w;
            total_w += w;
        }
        let node_gini = gini(&counts, total_w);
        let majority = argmax(&counts);

        let make_leaf = |nodes: &mut Vec<Node>| {
            let purity = if total_w > 0.0 { (counts[majority] / total_w) as f32 } else { 1.0 };
            nodes.push(Node::Leaf { class: majority as u16, purity });
            (nodes.len() - 1) as u32
        };

        if depth >= self.params.max_depth
            || hi - lo < self.params.min_samples_split
            || node_gini <= 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        let Some(split) = self.best_split(lo, hi, &counts, total_w, node_gini) else {
            return make_leaf(&mut self.nodes);
        };

        // Materialize the split node first so children indices are known
        // relative to a stable slot.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0, purity: 0.0 }); // placeholder
        self.importance_raw[split.feature] += split.gain;

        // Stable in-place partition of every buffer row: left block then
        // right block, each still sorted by its row's feature (and the
        // membership row still ascending).
        {
            let col = self.m.col(split.feature);
            for pos in lo..hi {
                let i = self.order[nf * n + pos] as usize;
                self.goes_left[i] = col[i] <= split.threshold;
            }
        }
        let mut n_left = 0usize;
        for row in 0..=nf {
            let base = row * n;
            let mut k = 0usize;
            let mut s = 0usize;
            for pos in lo..hi {
                let v = self.order[base + pos];
                if self.goes_left[v as usize] {
                    // k <= pos - lo, so this write never outruns the read.
                    self.order[base + lo + k] = v;
                    k += 1;
                } else {
                    self.scratch[s] = v;
                    s += 1;
                }
            }
            self.order[base + lo + k..base + hi].copy_from_slice(&self.scratch[..s]);
            n_left = k;
        }

        let left = self.grow(lo, lo + n_left, depth + 1);
        let right = self.grow(lo + n_left, hi, depth + 1);
        self.nodes[me] =
            Node::Split { feature: split.feature as u16, threshold: split.threshold, left, right };
        me as u32
    }

    /// One O(n) scan per feature over the node's pre-sorted index rows.
    /// Candidate order, accumulation order, and the strict-improvement
    /// tie-break match the reference algorithm exactly.
    fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        parent_counts: &[f64],
        total_w: f64,
        parent_gini: f64,
    ) -> Option<SplitChoice> {
        let n = self.m.n_rows();
        let seg_len = hi - lo;
        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<SplitChoice> = None;
        for f in 0..self.m.n_features() {
            let col = self.m.col(f);
            let seg = &self.order[f * n + lo..f * n + hi];
            self.left_counts.fill(0.0);
            let mut left_w = 0.0;
            let mut left_n = 0usize;
            for pair in 0..seg_len.saturating_sub(1) {
                let i = seg[pair] as usize;
                let w = self.weights[i];
                self.left_counts[self.y[i]] += w;
                left_w += w;
                left_n += 1;
                let v = col[i];
                let v_next = col[seg[pair + 1] as usize];
                if v == v_next {
                    continue; // can't split between equal values
                }
                let right_n = seg_len - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                let g_left = gini(&self.left_counts, left_w);
                let g_right = gini_complement(parent_counts, &self.left_counts, right_w);
                let child = (left_w * g_left + right_w * g_right) / total_w;
                let gain = (parent_gini - child) * total_w;
                if gain > self.params.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitChoice { feature: f, threshold: 0.5 * (v + v_next), gain });
                }
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy)]
struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

pub(crate) fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
}

/// Gini of `parent - left` without materializing the complement vector;
/// the per-element subtraction and the sum run in the same order as the
/// reference algorithm's `right_counts` allocation, so the result is
/// bit-identical — minus one heap allocation per split candidate.
fn gini_complement(parent: &[f64], left: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (p, l) in parent.iter().zip(left) {
        let c = p - l;
        acc += (c / total) * (c / total);
    }
    1.0 - acc
}

pub(crate) fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.push(vec![a + (i as f64) * 1e-4, b]);
            y.push((a as usize) ^ (b as usize));
        }
        (x, y)
    }

    #[test]
    fn learns_xor_exactly() {
        let (x, y) = xor_data();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), yi);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn fit_matrix_matches_fit() {
        let (x, y) = xor_data();
        let a = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let b =
            DecisionTree::fit_matrix(&FeatureMatrix::from_rows(&x), &y, 2, &TreeParams::default());
        assert_eq!(a, b);
        assert_eq!(a.predict_batch(&x), b.predict_batch_matrix(&FeatureMatrix::from_rows(&x)));
    }

    #[test]
    fn pure_node_becomes_leaf_immediately() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[999.0]), 1);
        let (_, purity) = t.predict_with_purity(&[0.0]);
        assert_eq!(purity, 1.0);
    }

    #[test]
    fn max_depth_zero_yields_majority_stump() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0, 1];
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        let t = DecisionTree::fit(&x, &y, 2, &params);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[3.0]), 0);
    }

    #[test]
    fn class_weights_flip_the_majority() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.3]];
        let y = vec![0, 0, 0, 1];
        let params = TreeParams {
            max_depth: 0,
            class_weights: Some(vec![1.0, 10.0]),
            ..TreeParams::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &params);
        assert_eq!(t.predict(&[0.0]), 1, "weighted minority should dominate the stump");
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0, 1];
        let params = TreeParams { min_samples_leaf: 2, ..TreeParams::default() };
        let t = DecisionTree::fit(&x, &y, 2, &params);
        // The only useful split isolates one sample; it is forbidden, so
        // either a 2/2 split at 1.5 (still mixed on the right) or a stump.
        for leaf_size_violation in t.predict_batch(&x) {
            let _ = leaf_size_violation; // predictions exist for all rows
        }
        assert!(t.leaf_count() <= 2);
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 separates classes.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![if i < 50 { 0.0 } else { 1.0 }, (i % 7) as f64]);
            y.push(usize::from(i >= 50));
        }
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let imp = t.feature_importances();
        assert!(imp[0] > 0.99);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_roundtrip_preserves_predictions() {
        let (x, y) = xor_data();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.serialized_size());
        let back = DecisionTree::from_bytes(&bytes).unwrap();
        for xi in &x {
            assert_eq!(t.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            DecisionTree::from_bytes(b"nope"),
            Err(ModelDecodeError::BadMagic { .. })
        ));
        assert!(DecisionTree::from_bytes(&[0u8; 40]).is_err());
        let (x, y) = xor_data();
        let mut bytes = DecisionTree::fit(&x, &y, 2, &TreeParams::default()).to_bytes();
        bytes.truncate(bytes.len() - 1);
        match DecisionTree::from_bytes(&bytes) {
            Err(ModelDecodeError::Truncated { found, offset, .. }) => {
                assert_eq!(found, bytes.len());
                assert_eq!(offset, 16);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn decode_errors_pinpoint_corruption() {
        let (x, y) = xor_data();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        let good = t.to_bytes();

        // Corrupt the tag byte of node 1.
        let mut bad_tag = good.clone();
        bad_tag[16 + 16 + 2] = 9;
        match DecisionTree::from_bytes(&bad_tag) {
            Err(ModelDecodeError::UnknownTag { tag: 9, node: 1, offset }) => {
                assert_eq!(offset, 32);
            }
            other => panic!("expected UnknownTag, got {other:?}"),
        }

        // Point node 0's left child out of range.
        let mut bad_link = good.clone();
        bad_link[16 + 8..16 + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        match DecisionTree::from_bytes(&bad_link) {
            Err(ModelDecodeError::LinkOutOfRange { node: 0, link, .. }) => {
                assert_eq!(link, u32::MAX);
            }
            other => panic!("expected LinkOutOfRange, got {other:?}"),
        }

        // Legacy callers still get a String via From.
        let msg: String = DecisionTree::from_bytes(b"junk!").unwrap_err().into();
        assert!(msg.contains("MSDT"), "{msg}");
    }

    #[test]
    fn compact_model_is_kilobytes_not_megabytes() {
        // A realistically sized tree stays in the single-digit-KB range
        // the paper reports (6 KB).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..2000 {
            let f = (i % 97) as f64;
            x.push(vec![f, (i % 13) as f64, (i % 29) as f64]);
            y.push(usize::from(f > 48.0) + usize::from(i % 13 > 6));
        }
        let params = TreeParams { max_depth: 8, min_samples_leaf: 5, ..TreeParams::default() };
        let t = DecisionTree::fit(&x, &y, 3, &params);
        assert!(t.serialized_size() < 10 * 1024, "model is {} bytes", t.serialized_size());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        DecisionTree::fit(&[], &[], 2, &TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn predict_checks_arity() {
        let t = DecisionTree::fit(&[vec![1.0, 2.0]], &[0], 1, &TreeParams::default());
        t.predict(&[1.0]);
    }

    #[test]
    fn pruning_shrinks_an_overfit_tree_without_losing_validation_accuracy() {
        // Noisy labels: a deep tree memorizes noise; reduced-error
        // pruning against a clean validation set must shrink it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let f = (i % 100) as f64;
            x.push(vec![f, (i * 7 % 13) as f64]);
            // True rule: f > 50, with deterministic pseudo-noise.
            let noisy = (i * 31) % 10 == 0;
            y.push(usize::from(f > 50.0) ^ usize::from(noisy));
        }
        let xv: Vec<Vec<f64>> = (0..80).map(|i| vec![(i % 100) as f64, 0.0]).collect();
        let yv: Vec<usize> = xv.iter().map(|r| usize::from(r[0] > 50.0)).collect();

        let mut tree = DecisionTree::fit(
            &x,
            &y,
            2,
            &TreeParams { max_depth: 20, min_gain: 0.0, ..TreeParams::default() },
        );
        let before_nodes = tree.node_count();
        let before_acc = xv.iter().zip(&yv).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        let removed = tree.prune_with_validation(&xv, &yv);
        let after_acc = xv.iter().zip(&yv).filter(|(xi, &yi)| tree.predict(xi) == yi).count();
        assert!(removed > 0, "overfit tree should have prunable splits");
        assert!(tree.node_count() < before_nodes);
        assert!(after_acc >= before_acc, "pruning must not lose validation accuracy");
        // Compaction keeps the serialization consistent.
        let back = DecisionTree::from_bytes(&tree.to_bytes()).unwrap();
        for xi in &xv {
            assert_eq!(tree.predict(xi), back.predict(xi));
        }
    }

    #[test]
    fn refreshed_prune_leaves_the_serving_tree_untouched() {
        // Same overfit setup as above, but through the non-consuming
        // refresh entry the online learner uses: the original (serving)
        // tree must not change, and the refreshed copy must agree with
        // an in-place prune node for node.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let f = (i % 100) as f64;
            x.push(vec![f, (i * 7 % 13) as f64]);
            let noisy = (i * 31) % 10 == 0;
            y.push(usize::from(f > 50.0) ^ usize::from(noisy));
        }
        let xv: Vec<Vec<f64>> = (0..80).map(|i| vec![(i % 100) as f64, 0.0]).collect();
        let yv: Vec<usize> = xv.iter().map(|r| usize::from(r[0] > 50.0)).collect();
        let tree = DecisionTree::fit(
            &x,
            &y,
            2,
            &TreeParams { max_depth: 20, min_gain: 0.0, ..TreeParams::default() },
        );
        let serving = tree.clone();
        let m = FeatureMatrix::from_rows(&xv);
        let (refreshed, removed) = tree.refreshed_with_validation_matrix(&m, &yv);
        assert!(removed > 0);
        assert_eq!(tree, serving, "refresh must not mutate the serving tree");
        let mut in_place = tree.clone();
        assert_eq!(in_place.prune_with_validation_matrix(&m, &yv), removed);
        assert_eq!(in_place, refreshed, "refresh is the same prune, off to the side");
    }

    #[test]
    fn pruning_a_stump_is_a_no_op() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![0, 0];
        let mut tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        assert_eq!(tree.prune_with_validation(&x, &y), 0);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty validation set")]
    fn pruning_requires_validation_data() {
        let mut tree = DecisionTree::fit(&[vec![1.0]], &[0], 1, &TreeParams::default());
        tree.prune_with_validation(&[], &[]);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = vec![vec![5.0]; 10];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
        assert_eq!(t.node_count(), 1, "no split possible between equal values");
    }
}
