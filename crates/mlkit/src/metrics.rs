//! Evaluation metrics used by the paper's experiments: classification
//! accuracy and confusion matrices (Table 5), MAE and R² of the latency
//! predictor (Figure 9), geometric-mean speedups (Tables 4, §5.2), and
//! the inverse-frequency class weighting of §3.1.

/// Fraction of predictions equal to their labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
    assert!(!predicted.is_empty(), "accuracy of an empty set is undefined");
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// Row-major confusion matrix: `m[predicted][actual]`, matching the
/// orientation of the paper's Table 5 ("Predicted/Actual").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any value is `>= n_classes`.
    pub fn new(predicted: &[usize], actual: &[usize], n_classes: usize) -> Self {
        assert_eq!(predicted.len(), actual.len(), "prediction/label length mismatch");
        let mut counts = vec![0u64; n_classes * n_classes];
        for (&p, &a) in predicted.iter().zip(actual) {
            assert!(p < n_classes && a < n_classes, "class out of range");
            counts[p * n_classes + a] += 1;
        }
        ConfusionMatrix { n_classes, counts }
    }

    /// Count of samples predicted `p` with true class `a`.
    pub fn get(&self, predicted: usize, actual: usize) -> u64 {
        self.counts[predicted * self.n_classes + actual]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Diagonal sum over total — the accuracy implied by the matrix.
    pub fn accuracy(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n_classes).map(|i| self.get(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Renders the matrix as an aligned text table with the given class
    /// names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != n_classes`.
    pub fn render(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.n_classes, "one name per class required");
        let mut out = String::from("Predicted\\Actual");
        for n in names {
            out.push_str(&format!(" {n:>10}"));
        }
        out.push('\n');
        for (p, pname) in names.iter().enumerate() {
            out.push_str(&format!("{pname:<16}"));
            for a in 0..self.n_classes {
                out.push_str(&format!(" {:>10}", self.get(p, a)));
            }
            out.push('\n');
        }
        out
    }
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "prediction/target length mismatch");
    assert!(!predicted.is_empty(), "MAE of an empty set is undefined");
    predicted.iter().zip(actual).map(|(p, a)| (p - a).abs()).sum::<f64>() / predicted.len() as f64
}

/// Coefficient of determination R². 1 means perfect prediction; 0 means
/// no better than predicting the mean; negative means worse.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn r2(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "prediction/target length mismatch");
    assert!(!predicted.is_empty(), "R2 of an empty set is undefined");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = predicted.iter().zip(actual).map(|(p, a)| (a - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Geometric mean of positive ratios (the paper's speedup aggregation).
///
/// # Panics
///
/// Panics if the slice is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty set is undefined");
    assert!(values.iter().all(|&v| v > 0.0), "geometric mean requires positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Class weights inversely proportional to class frequency, normalized to
/// mean 1 (the weighting strategy of §3.1). Absent classes get weight 0.
pub fn inverse_frequency_weights(labels: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        assert!(l < n_classes, "label out of range");
        counts[l] += 1;
    }
    let present = counts.iter().filter(|&&c| c > 0).count().max(1);
    let total = labels.len() as f64;
    let mut weights: Vec<f64> = counts
        .iter()
        .map(|&c| if c > 0 { total / (present as f64 * c as f64) } else { 0.0 })
        .collect();
    // Normalize to mean 1 over present classes for numeric comparability.
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 {
        let scale = present as f64 / sum;
        for w in &mut weights {
            *w *= scale;
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    fn confusion_matrix_orientation_is_predicted_by_actual() {
        let m = ConfusionMatrix::new(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(0, 1), 1); // predicted 0, actually 1
        assert_eq!(m.get(1, 1), 1);
        assert_eq!(m.get(1, 0), 0);
        assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_render_has_all_cells() {
        let m = ConfusionMatrix::new(&[0, 1], &[1, 0], 2);
        let s = m.render(&["D1", "D2"]);
        assert!(s.contains("D1") && s.contains("D2"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn mae_and_r2_on_known_values() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 2.0, 5.0];
        assert!((mae(&p, &a) - 2.0 / 3.0).abs() < 1e-12);
        // ss_res = 4, mean = 8/3, ss_tot = (1-8/3)^2+(2-8/3)^2+(5-8/3)^2
        let mean: f64 = 8.0 / 3.0;
        let ss_tot = (1.0 - mean).powi(2) + (2.0 - mean).powi(2) + (5.0 - mean).powi(2);
        assert!((r2(&p, &a) - (1.0 - 4.0 / ss_tot)).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores_r2_one() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!((r2(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn inverse_weights_favor_rare_classes() {
        let labels = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let w = inverse_frequency_weights(&labels, 2);
        assert!(w[1] > w[0]);
        assert!((w[1] / w[0] - 9.0).abs() < 1e-9);
        // Mean over present classes is 1.
        assert!(((w[0] + w[1]) / 2.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_gets_zero_weight() {
        let w = inverse_frequency_weights(&[0, 0, 2], 3);
        assert_eq!(w[1], 0.0);
        assert!(w[0] > 0.0 && w[2] > 0.0);
    }
}
