//! Seeded dataset splitting and k-fold cross-validation (the paper's
//! 70/30 train-validation split and 10-fold protocol, §3.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic shuffled split of `n` sample indices into train and
/// validation sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of validation samples.
    pub validation: Vec<usize>,
}

/// Splits `n` samples with the given training fraction (e.g. 0.7 for the
/// paper's 70/30 split), shuffling with `seed`.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `(0, 1)` or `n == 0`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> Split {
    assert!(n > 0, "cannot split zero samples");
    assert!(train_fraction > 0.0 && train_fraction < 1.0, "train fraction must be in (0, 1)");
    let mut idx = shuffled(n, seed);
    let cut = ((n as f64 * train_fraction).round() as usize).clamp(1, n - 1);
    let validation = idx.split_off(cut);
    Split { train: idx, validation }
}

/// Returns `k` folds of `n` shuffled indices. Fold `i` is the validation
/// set of round `i`; the union of the other folds is its training set.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k-fold needs at least 2 folds");
    assert!(k <= n, "more folds than samples");
    let idx = shuffled(n, seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    folds
}

/// Runs k-fold cross-validation: `eval(train_indices, val_indices)` must
/// return a score per round; the rounds' scores are returned in order.
pub fn cross_validate<F>(n: usize, k: usize, seed: u64, mut eval: F) -> Vec<f64>
where
    F: FnMut(&[usize], &[usize]) -> f64,
{
    let folds = k_folds(n, k, seed);
    (0..k)
        .map(|round| {
            let (train, val) = round_indices(&folds, round);
            eval(&train, val)
        })
        .collect()
}

/// [`cross_validate`] with the rounds evaluated in parallel on
/// `misam_pool` workers (count from `MISAM_THREADS`, default all
/// cores). Folds are drawn identically to the serial version and scores
/// come back in round order, so the result is exactly what
/// [`cross_validate`] returns — `eval` just needs to be thread-safe
/// (`Fn + Sync` instead of `FnMut`).
pub fn cross_validate_par<F>(n: usize, k: usize, seed: u64, eval: F) -> Vec<f64>
where
    F: Fn(&[usize], &[usize]) -> f64 + Sync,
{
    let folds = k_folds(n, k, seed);
    let rounds: Vec<usize> = (0..k).collect();
    misam_pool::par_map(&rounds, |&round| {
        let (train, val) = round_indices(&folds, round);
        eval(&train, val)
    })
}

/// Training/validation index sets for one round of k-fold.
fn round_indices(folds: &[Vec<usize>], round: usize) -> (Vec<usize>, &[usize]) {
    let train: Vec<usize> = folds
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != round)
        .flat_map(|(_, f)| f.iter().copied())
        .collect();
    (train, &folds[round])
}

fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf01d_5eed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Gathers rows of a dataset by index — a convenience for training on a
/// [`Split`].
pub fn gather<T: Clone>(data: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| data[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exhaustive_and_disjoint() {
        let s = train_test_split(100, 0.7, 1);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.validation.len(), 30);
        let mut all: Vec<usize> = s.train.iter().chain(&s.validation).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.7, 9), train_test_split(50, 0.7, 9));
        assert_ne!(train_test_split(50, 0.7, 9), train_test_split(50, 0.7, 10));
    }

    #[test]
    fn tiny_split_keeps_both_sides_nonempty() {
        let s = train_test_split(2, 0.9, 3);
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.validation.len(), 1);
    }

    #[test]
    fn folds_partition_the_index_space() {
        let folds = k_folds(103, 10, 4);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Fold sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn cross_validate_sees_complementary_sets() {
        let scores = cross_validate(20, 4, 7, |train, val| {
            assert_eq!(train.len() + val.len(), 20);
            let overlap = val.iter().filter(|v| train.contains(v)).count();
            assert_eq!(overlap, 0);
            val.len() as f64
        });
        assert_eq!(scores, vec![5.0; 4]);
    }

    #[test]
    fn parallel_cross_validate_matches_serial() {
        let serial = cross_validate(50, 5, 11, |train, val| {
            (train.iter().sum::<usize>() * 1000 + val.iter().sum::<usize>()) as f64
        });
        let parallel = cross_validate_par(50, 5, 11, |train, val| {
            (train.iter().sum::<usize>() * 1000 + val.iter().sum::<usize>()) as f64
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        k_folds(3, 10, 0);
    }

    #[test]
    fn gather_selects_rows() {
        let data = vec!["a", "b", "c", "d"];
        assert_eq!(gather(&data, &[3, 0]), vec!["d", "a"]);
    }
}
