//! Lane-oriented kernels for flat-tree inference and columnar gathers.
//!
//! Every kernel exists in two always-compiled forms following the same
//! convention as `misam_sparse::simd`:
//!
//! - `foo_scalar` — the portable reference, preserved exactly as the
//!   pre-vectorization code wrote it. It is the proptest oracle and the
//!   only form the `force-scalar` build dispatches to.
//! - `foo_lanes` — a branchless fixed-width rewrite the autovectorizer
//!   can lower, with an explicit AVX2 path (runtime-detected) where the
//!   data movement cannot be expressed branchlessly in safe scalar code
//!   (the packed partition compaction).
//!
//! All outputs are bit-identical between forms: the kernels here move
//! and compare values — they never reassociate a floating-point
//! accumulation. The partition keeps the exact `!(x <= t)` NaN-descends-
//! right semantics of the per-row tree walks (`_CMP_LE_OQ` under AVX2).

/// True when the lane kernels are dispatched; `false` under the
/// `force-scalar` feature, which pins every entry point to the scalar
/// reference forms.
pub const VECTORIZED: bool = cfg!(not(feature = "force-scalar"));

/// Stably partitions `idx[lo..hi]` by `col[r] <= t`: rows answering
/// "left" are compacted in place to `idx[lo..nl]`, rows answering
/// "right" (including NaN) are written in order to `scratch[..hi - nl]`.
/// Returns `nl`. Relative order is preserved on both sides — the
/// invariant the frontier walk's prefetch-friendly descent relies on.
///
/// # Panics
///
/// Panics if `hi > idx.len()`, `scratch.len() < hi - lo`, or any row in
/// `idx[lo..hi]` is out of range for `col`.
#[inline]
pub fn partition_segment(
    col: &[f64],
    t: f64,
    idx: &mut [u32],
    scratch: &mut [u32],
    lo: usize,
    hi: usize,
) -> usize {
    if VECTORIZED {
        partition_segment_lanes(col, t, idx, scratch, lo, hi)
    } else {
        partition_segment_scalar(col, t, idx, scratch, lo, hi)
    }
}

/// Scalar reference for [`partition_segment`]: the original branchy
/// stable partition. Always compiled; the kernel bench uses it as the
/// frontier-walk baseline.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn partition_segment_scalar(
    col: &[f64],
    t: f64,
    idx: &mut [u32],
    scratch: &mut [u32],
    lo: usize,
    hi: usize,
) -> usize {
    let mut nl = lo;
    let mut nr = 0usize;
    for k in lo..hi {
        let r = idx[k];
        if !(col[r as usize] <= t) {
            scratch[nr] = r;
            nr += 1;
        } else {
            // In-place compaction is safe: the write index never
            // passes the read index (`nl <= k`).
            idx[nl] = r;
            nl += 1;
        }
    }
    nl
}

/// Lane form of [`partition_segment`]: an AVX2 gather/compare/compact
/// body when the CPU has it, otherwise a branchless scalar loop whose
/// unconditional stores with conditional cursor advances remove the
/// split-direction branch the predictor cannot learn.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn partition_segment_lanes(
    col: &[f64],
    t: f64,
    idx: &mut [u32],
    scratch: &mut [u32],
    lo: usize,
    hi: usize,
) -> usize {
    assert!(hi <= idx.len() && scratch.len() >= hi - lo, "partition buffers too short");
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        if hi - lo >= 8 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 is present; buffer bounds checked above.
            return unsafe { x86::partition_avx2(col, t, idx, scratch, lo, hi) };
        }
    }
    partition_branchless(col, t, idx, scratch, lo, hi, lo)
}

/// Branchless partition body shared by the portable lane path and the
/// AVX2 tail: both sides store unconditionally and advance their cursor
/// by the comparison bit. The in-place store is safe for the same
/// reason as the branchy form — `nl <= k` always.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn partition_branchless(
    col: &[f64],
    t: f64,
    idx: &mut [u32],
    scratch: &mut [u32],
    k0: usize,
    hi: usize,
    nl0: usize,
) -> usize {
    let mut nl = nl0;
    let mut nr = k0 - nl0;
    for k in k0..hi {
        let r = idx[k];
        let right = !(col[r as usize] <= t);
        idx[nl] = r;
        scratch[nr] = r;
        nl += usize::from(!right);
        nr += usize::from(right);
    }
    nl
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod x86 {
    use core::arch::x86_64::*;

    /// Shuffle controls packing the set lanes of a 4-bit mask (as four
    /// u32s) to the front, in ascending lane order; unused bytes zero
    /// the slot (`0x80`), which the cursor advance masks out.
    const PACK: [[u8; 16]; 16] = {
        let mut t = [[0x80u8; 16]; 16];
        let mut m = 0;
        while m < 16 {
            let mut dst = 0;
            let mut lane = 0;
            while lane < 4 {
                if m & (1 << lane) != 0 {
                    let mut b = 0;
                    while b < 4 {
                        t[m][dst * 4 + b] = (lane * 4 + b) as u8;
                        b += 1;
                    }
                    dst += 1;
                }
                lane += 1;
            }
            m += 1;
        }
        t
    };

    /// Four rows per iteration: gather their column values, compare
    /// against the broadcast threshold (`_CMP_LE_OQ` — NaN compares
    /// false and goes right, matching `!(x <= t)`), then byte-shuffle
    /// the row quads into packed left/right stores.
    ///
    /// The packed stores write a full 16 bytes while the cursors advance
    /// only by the popcount. That never clobbers unread input: the left
    /// store lands at `nl <= k` (over-written bytes sit below the next
    /// read at `k + 4`), and both stores stay in bounds because
    /// `nl + 4 <= k + 4 <= hi <= idx.len()` and
    /// `nr + 4 <= (k - lo) + 4 <= hi - lo <= scratch.len()`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, `hi <= idx.len()`,
    /// `scratch.len() >= hi - lo`, and every row in `idx[lo..hi]`
    /// indexes into `col`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn partition_avx2(
        col: &[f64],
        t: f64,
        idx: &mut [u32],
        scratch: &mut [u32],
        lo: usize,
        hi: usize,
    ) -> usize {
        let tv = _mm256_set1_pd(t);
        let mut nl = lo;
        let mut nr = 0usize;
        let mut k = lo;
        while k + 4 <= hi {
            let rows = _mm_loadu_si128(idx.as_ptr().add(k) as *const __m128i);
            let vals = _mm256_i32gather_pd::<8>(col.as_ptr(), rows);
            let left = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(vals, tv)) as usize & 0xF;
            let lpack = _mm_shuffle_epi8(rows, _mm_loadu_si128(PACK[left].as_ptr() as *const _));
            let rpack =
                _mm_shuffle_epi8(rows, _mm_loadu_si128(PACK[!left & 0xF].as_ptr() as *const _));
            _mm_storeu_si128(idx.as_mut_ptr().add(nl) as *mut __m128i, lpack);
            _mm_storeu_si128(scratch.as_mut_ptr().add(nr) as *mut __m128i, rpack);
            let lefts = left.count_ones() as usize;
            nl += lefts;
            nr += 4 - lefts;
            k += 4;
        }
        super::partition_branchless(col, t, idx, scratch, k, hi, nl)
    }

    /// Appends `col[idx[k]]` for every row via `vgatherqpd` quads. One
    /// bounds check per quad: the unsigned max of the four indices must
    /// land inside `col` (panics like the scalar form otherwise). The
    /// destination is pre-reserved and written through a raw cursor —
    /// exactly once per slot, no zero fill — with `set_len` after.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_avx2(col: &[f64], idx: &[usize], out: &mut Vec<f64>) {
        let start = out.len();
        out.reserve(idx.len());
        let dst = out.as_mut_ptr().add(start);
        let mut k = 0usize;
        while k + 4 <= idx.len() {
            let m = idx[k].max(idx[k + 1]).max(idx[k + 2]).max(idx[k + 3]);
            assert!(m < col.len(), "gather index out of range");
            let rows = _mm256_loadu_si256(idx.as_ptr().add(k) as *const __m256i);
            let vals = _mm256_i64gather_pd::<8>(col.as_ptr(), rows);
            _mm256_storeu_pd(dst.add(k), vals);
            k += 4;
        }
        for &r in &idx[k..] {
            *dst.add(k) = col[r];
            k += 1;
        }
        out.set_len(start + idx.len());
    }
}

/// Appends `col[idx[k]]` for each gathered row to `out` — the inner
/// kernel of [`FeatureMatrix::gather_project`](crate::matrix::FeatureMatrix::gather_project),
/// one call per output column.
///
/// # Panics
///
/// Panics if any index is out of range for `col`.
/// Unlike the other dispatchers this one keeps the scalar form on every
/// build: the random-index gather is bound by load latency, and the
/// `TrustedLen`-specialized extend already compiles to the optimal
/// reserve-once/write-once loop. Both explicit quad forms measured
/// *slower* here (`bench_kernels`: stack-quad appends 0.72×, hardware
/// `vgatherqpd` 0.89×), so [`gather_into_lanes`] stays compiled and
/// benched as the record of that experiment, not as the hot path.
#[inline]
pub fn gather_into(col: &[f64], idx: &[usize], out: &mut Vec<f64>) {
    gather_into_scalar(col, idx, out);
}

/// Scalar reference for [`gather_into`]. Always compiled.
pub fn gather_into_scalar(col: &[f64], idx: &[usize], out: &mut Vec<f64>) {
    out.extend(idx.iter().map(|&r| col[r]));
}

/// Lane form of [`gather_into`]: hardware `vgatherqpd` quads where
/// AVX2 is available (one bounds check per quad via an unsigned max
/// reduce), the serial extend otherwise.
pub fn gather_into_lanes(col: &[f64], idx: &[usize], out: &mut Vec<f64>) {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    if idx.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was just detected.
        unsafe { x86::gather_avx2(col, idx, out) };
        return;
    }
    gather_into_scalar(col, idx, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_partition(
        vals: &[f64],
        t: f64,
        f: impl Fn(&[f64], f64, &mut [u32], &mut [u32], usize, usize) -> usize,
    ) -> (Vec<u32>, usize) {
        let mut idx: Vec<u32> = (0..vals.len() as u32).collect();
        let mut scratch = vec![0u32; vals.len()];
        let nl = f(vals, t, &mut idx, &mut scratch, 0, vals.len());
        let nr = vals.len() - nl;
        idx[nl..].copy_from_slice(&scratch[..nr]);
        (idx, nl)
    }

    #[test]
    fn partition_forms_agree_across_lengths() {
        // Lengths straddling the 4-lane width and the AVX2 engage
        // threshold, including 0 and 1.
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 257] {
            let vals: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
            let (a, nla) = run_partition(&vals, 0.5, partition_segment_scalar);
            let (b, nlb) = run_partition(&vals, 0.5, partition_segment_lanes);
            assert_eq!(nla, nlb, "n={n}");
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn partition_sends_nan_right_and_keeps_order() {
        let vals = [1.0, f64::NAN, 2.0, -1.0, f64::NAN, 0.0, 3.0, 1.5, 0.25];
        let (s, nls) = run_partition(&vals, 1.0, partition_segment_scalar);
        let (l, nll) = run_partition(&vals, 1.0, partition_segment_lanes);
        assert_eq!(s, l);
        assert_eq!(nls, nll);
        // NaN rows (1 and 4) must be on the right side.
        assert!(s[nls..].contains(&1) && s[nls..].contains(&4));
        // Both sides preserve relative input order.
        assert!(s[..nls].windows(2).all(|w| w[0] < w[1]));
        assert!(s[nls..].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gather_forms_agree() {
        let col: Vec<f64> = (0..50).map(|i| i as f64 * 1.5).collect();
        for n in [0usize, 1, 3, 4, 5, 13] {
            let idx: Vec<usize> = (0..n).map(|i| (i * 17) % 50).collect();
            let mut a = vec![99.0];
            let mut b = vec![99.0];
            gather_into_scalar(&col, &idx, &mut a);
            gather_into_lanes(&col, &idx, &mut b);
            assert_eq!(a, b, "n={n}");
        }
    }
}
