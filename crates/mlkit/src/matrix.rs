//! Columnar (structure-of-arrays) feature storage.
//!
//! Tree induction scans one feature at a time across every sample, so
//! the natural layout is one contiguous `f64` run per feature — the
//! opposite of the row-major `Vec<Vec<f64>>` the extraction pipeline
//! produces. [`FeatureMatrix`] is built once per training set and
//! shared by the classifier, the regression tree, the forest, the
//! cross-validation driver, and `misam-core`'s training entry points;
//! every split-search pass then reads sequential memory instead of
//! pointer-chasing a row per sample.

/// A dense feature matrix stored feature-major: column `f` occupies the
/// contiguous slice `data[f * n_rows .. (f + 1) * n_rows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_rows: usize,
    n_features: usize,
}

impl FeatureMatrix {
    /// Builds a matrix from row-major feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "feature matrix needs at least one row");
        let n_features = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == n_features),
            "feature rows have inconsistent lengths"
        );
        let n_rows = rows.len();
        let mut data = vec![0.0; n_rows * n_features];
        // Blocked transpose: a block of rows stays cache-resident while
        // every one of its columns is written, so neither the row reads
        // nor the strided column writes thrash.
        const BLOCK: usize = 128;
        let mut base = 0;
        for block in rows.chunks(BLOCK) {
            for f in 0..n_features {
                let col = &mut data[f * n_rows + base..f * n_rows + base + block.len()];
                for (dst, row) in col.iter_mut().zip(block) {
                    *dst = row[f];
                }
            }
            base += block.len();
        }
        FeatureMatrix { data, n_rows, n_features }
    }

    /// Builds a matrix from already-columnar data (each inner vector is
    /// one feature across all rows).
    ///
    /// # Panics
    ///
    /// Panics if `cols` is empty, any column is empty, or the columns
    /// have inconsistent lengths.
    pub fn from_columns(cols: Vec<Vec<f64>>) -> Self {
        assert!(!cols.is_empty(), "feature matrix needs at least one column");
        let n_rows = cols[0].len();
        assert!(n_rows > 0, "feature matrix needs at least one row");
        assert!(cols.iter().all(|c| c.len() == n_rows), "columns have inconsistent lengths");
        let n_features = cols.len();
        let mut data = Vec::with_capacity(n_rows * n_features);
        for c in cols {
            data.extend_from_slice(&c);
        }
        FeatureMatrix { data, n_rows, n_features }
    }

    /// Number of rows (samples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features (columns).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The contiguous values of feature `f` across all rows.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n_features`.
    pub fn col(&self, f: usize) -> &[f64] {
        &self.data[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// The value of feature `f` for row `r`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, r: usize, f: usize) -> f64 {
        assert!(r < self.n_rows, "row out of range");
        self.data[f * self.n_rows + r]
    }

    /// Copies row `r` into `buf` (resized to `n_features`).
    pub fn row_into(&self, r: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend((0..self.n_features).map(|f| self.data[f * self.n_rows + r]));
    }

    /// Row `r` as an owned vector.
    pub fn row(&self, r: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(self.n_features);
        self.row_into(r, &mut buf);
        buf
    }

    /// Gathers the rows named by `idx` (in order, duplicates allowed)
    /// into a new matrix — the columnar analogue of [`crate::cv::gather`],
    /// one sequential pass per feature.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or any index is out of range.
    pub fn gather(&self, idx: &[usize]) -> FeatureMatrix {
        self.gather_project(idx, None)
    }

    /// Gathers rows `idx` restricted to the feature subset `map` (when
    /// present): output feature `j` is input feature `map[j]`. This is
    /// the bootstrap + feature-subsample step of forest induction done
    /// column-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or any row/feature index is out of range.
    pub fn gather_project(&self, idx: &[usize], map: Option<&[usize]>) -> FeatureMatrix {
        assert!(!idx.is_empty(), "cannot gather zero rows");
        assert!(idx.iter().all(|&r| r < self.n_rows), "row index out of range");
        let feats: Vec<usize> = match map {
            Some(m) => {
                assert!(m.iter().all(|&f| f < self.n_features), "feature index out of range");
                m.to_vec()
            }
            None => (0..self.n_features).collect(),
        };
        let n_rows = idx.len();
        let mut data = Vec::with_capacity(n_rows * feats.len());
        for &f in &feats {
            crate::simd::gather_into(self.col(f), idx, &mut data);
        }
        FeatureMatrix { data, n_rows, n_features: feats.len() }
    }

    /// Restricts the matrix to the feature subset `map` (all rows kept):
    /// output feature `j` is input feature `map[j]`. One contiguous copy
    /// per selected column — the columnar analogue of projecting each
    /// row vector before inference.
    ///
    /// # Panics
    ///
    /// Panics if any feature index is out of range.
    pub fn project(&self, map: &[usize]) -> FeatureMatrix {
        assert!(map.iter().all(|&f| f < self.n_features), "feature index out of range");
        let mut data = Vec::with_capacity(self.n_rows * map.len());
        for &f in map {
            data.extend_from_slice(self.col(f));
        }
        FeatureMatrix { data, n_rows: self.n_rows, n_features: map.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![vec![1.0, 10.0, 100.0], vec![2.0, 20.0, 200.0], vec![3.0, 30.0, 300.0]]
    }

    #[test]
    fn from_rows_transposes() {
        let m = FeatureMatrix::from_rows(&rows());
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_features(), 3);
        assert_eq!(m.col(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(2), &[100.0, 200.0, 300.0]);
        assert_eq!(m.value(1, 1), 20.0);
        assert_eq!(m.row(2), vec![3.0, 30.0, 300.0]);
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let a = FeatureMatrix::from_rows(&rows());
        let b = FeatureMatrix::from_columns(vec![
            vec![1.0, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
            vec![100.0, 200.0, 300.0],
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let m = FeatureMatrix::from_rows(&rows());
        let g = m.gather(&[2, 0, 2]);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.col(0), &[3.0, 1.0, 3.0]);
        assert_eq!(g.row(1), vec![1.0, 10.0, 100.0]);
    }

    #[test]
    fn gather_project_restricts_features() {
        let m = FeatureMatrix::from_rows(&rows());
        let g = m.gather_project(&[1, 0], Some(&[2, 0]));
        assert_eq!(g.n_features(), 2);
        assert_eq!(g.col(0), &[200.0, 100.0]);
        assert_eq!(g.col(1), &[2.0, 1.0]);
    }

    #[test]
    fn project_keeps_all_rows() {
        let m = FeatureMatrix::from_rows(&rows());
        let p = m.project(&[2, 0]);
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.col(0), &[100.0, 200.0, 300.0]);
        assert_eq!(p.col(1), &[1.0, 2.0, 3.0]);
        assert_eq!(p.row(1), vec![200.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent lengths")]
    fn ragged_rows_rejected() {
        FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_rejected() {
        FeatureMatrix::from_rows(&[]);
    }
}
