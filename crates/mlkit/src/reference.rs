//! The original per-node-sorting induction algorithms, preserved
//! verbatim.
//!
//! The production paths ([`DecisionTree::fit`], [`RegressionTree::fit`])
//! now use sort-once induction over a columnar [`crate::matrix::FeatureMatrix`].
//! This module keeps the original O(nodes · features · n log n)
//! algorithms — row-major input, a fresh sort per feature per node —
//! exactly as they were, for two purposes:
//!
//! 1. **Equivalence testing**: `tests/flat_equivalence.rs` proves the
//!    rebuilt kernels grow identical trees (and therefore make
//!    bit-identical predictions) against this reference.
//! 2. **Benchmarking**: `misam-bench`'s `bench_train` times the
//!    reference against the production kernels to quantify the speedup.
//!
//! Nothing in the production crates should call these; they are
//! deliberately slow.

use crate::regression::{RNode, RegParams, RegressionTree};
use crate::tree::{argmax, gini, DecisionTree, Node, TreeParams};

/// Fits a classifier with the original per-node-sorting algorithm.
/// Same contract (and panics) as [`DecisionTree::fit`].
pub fn fit_tree(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    params: &TreeParams,
) -> DecisionTree {
    assert!(!x.is_empty(), "cannot fit a tree to an empty dataset");
    assert_eq!(x.len(), y.len(), "feature and label counts differ");
    let n_features = x[0].len();
    assert!(x.iter().all(|r| r.len() == n_features), "feature rows have inconsistent lengths");
    assert!(y.iter().all(|&l| l < n_classes), "label out of range");
    if let Some(w) = &params.class_weights {
        assert!(w.len() >= n_classes, "class-weight vector too short");
    }

    let weights: Vec<f64> =
        y.iter().map(|&l| params.class_weights.as_ref().map_or(1.0, |w| w[l])).collect();
    let mut b = RefBuilder {
        x,
        y,
        weights,
        n_classes,
        params,
        nodes: Vec::new(),
        importance_raw: vec![0.0; n_features],
    };
    let idx: Vec<u32> = (0..x.len() as u32).collect();
    b.grow(idx, 0);

    let total: f64 = b.importance_raw.iter().sum();
    let importances = if total > 0.0 {
        b.importance_raw.iter().map(|v| v / total).collect()
    } else {
        vec![0.0; n_features]
    };
    DecisionTree::from_parts(b.nodes, n_features, n_classes, importances)
}

struct RefBuilder<'a> {
    x: &'a [Vec<f64>],
    y: &'a [usize],
    weights: Vec<f64>,
    n_classes: usize,
    params: &'a TreeParams,
    nodes: Vec<Node>,
    importance_raw: Vec<f64>,
}

impl RefBuilder<'_> {
    fn grow(&mut self, idx: Vec<u32>, depth: usize) -> u32 {
        let (counts, total_w) = self.class_counts(&idx);
        let node_gini = gini(&counts, total_w);
        let majority = argmax(&counts);

        let make_leaf = |nodes: &mut Vec<Node>| {
            let purity = if total_w > 0.0 { (counts[majority] / total_w) as f32 } else { 1.0 };
            nodes.push(Node::Leaf { class: majority as u16, purity });
            (nodes.len() - 1) as u32
        };

        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || node_gini <= 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        let Some(split) = self.best_split(&idx, &counts, total_w, node_gini) else {
            return make_leaf(&mut self.nodes);
        };

        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0, purity: 0.0 }); // placeholder
        self.importance_raw[split.0] += split.2;

        let (li, ri): (Vec<u32>, Vec<u32>) =
            idx.iter().partition(|&&i| self.x[i as usize][split.0] <= split.1);
        let left = self.grow(li, depth + 1);
        let right = self.grow(ri, depth + 1);
        self.nodes[me] = Node::Split { feature: split.0 as u16, threshold: split.1, left, right };
        me as u32
    }

    fn class_counts(&self, idx: &[u32]) -> (Vec<f64>, f64) {
        let mut counts = vec![0.0; self.n_classes];
        let mut total = 0.0;
        for &i in idx {
            let w = self.weights[i as usize];
            counts[self.y[i as usize]] += w;
            total += w;
        }
        (counts, total)
    }

    /// The per-node sort: one fresh `sort_unstable_by` per feature per
    /// node — the cost the production kernel eliminates.
    fn best_split(
        &self,
        idx: &[u32],
        parent_counts: &[f64],
        total_w: f64,
        parent_gini: f64,
    ) -> Option<(usize, f64, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut order: Vec<u32> = idx.to_vec();
        for f in 0..self.x[0].len() {
            order.sort_unstable_by(|&a, &b| {
                self.x[a as usize][f]
                    .partial_cmp(&self.x[b as usize][f])
                    .expect("features must not be NaN")
            });
            let mut left_counts = vec![0.0; self.n_classes];
            let mut left_w = 0.0;
            let mut left_n = 0usize;
            for pair in 0..order.len().saturating_sub(1) {
                let i = order[pair] as usize;
                let w = self.weights[i];
                left_counts[self.y[i]] += w;
                left_w += w;
                left_n += 1;
                let v = self.x[i][f];
                let v_next = self.x[order[pair + 1] as usize][f];
                if v == v_next {
                    continue; // can't split between equal values
                }
                let right_n = order.len() - left_n;
                if left_n < self.params.min_samples_leaf || right_n < self.params.min_samples_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                let right_counts: Vec<f64> =
                    parent_counts.iter().zip(left_counts.iter()).map(|(p, l)| p - l).collect();
                let g_left = gini(&left_counts, left_w);
                let g_right = gini(&right_counts, right_w);
                let child = (left_w * g_left + right_w * g_right) / total_w;
                let gain = (parent_gini - child) * total_w;
                if gain > self.params.min_gain && best.is_none_or(|b| gain > b.2) {
                    best = Some((f, 0.5 * (v + v_next), gain));
                }
            }
        }
        best
    }
}

/// Fits a regression tree with the original per-node-sorting algorithm.
/// Same contract (and panics) as [`RegressionTree::fit`].
pub fn fit_regression(x: &[Vec<f64>], y: &[f64], params: &RegParams) -> RegressionTree {
    assert!(!x.is_empty(), "cannot fit a tree to an empty dataset");
    assert_eq!(x.len(), y.len(), "feature and target counts differ");
    let n_features = x[0].len();
    assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
    assert!(y.iter().all(|v| v.is_finite()), "targets must be finite");

    let mut nodes = Vec::new();
    let idx: Vec<u32> = (0..x.len() as u32).collect();
    grow_reg(x, y, params, idx, 0, &mut nodes);
    RegressionTree::from_parts(nodes, n_features)
}

fn grow_reg(
    x: &[Vec<f64>],
    y: &[f64],
    params: &RegParams,
    idx: Vec<u32>,
    depth: usize,
    nodes: &mut Vec<RNode>,
) -> u32 {
    let n = idx.len() as f64;
    let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n;
    let sse: f64 = idx.iter().map(|&i| (y[i as usize] - mean).powi(2)).sum();

    let leaf = |nodes: &mut Vec<RNode>| {
        nodes.push(RNode::Leaf { value: mean });
        (nodes.len() - 1) as u32
    };

    if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf || sse <= 0.0 {
        return leaf(nodes);
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut order = idx.clone();
    // `f` is a column index across every row of `x`, not an index into
    // one slice, so the range loop is the natural form.
    #[allow(clippy::needless_range_loop)]
    for f in 0..x[0].len() {
        order.sort_unstable_by(|&a, &b| {
            x[a as usize][f].partial_cmp(&x[b as usize][f]).expect("features must not be NaN")
        });
        let mut lsum = 0.0;
        let mut lsq = 0.0;
        let total_sum: f64 = order.iter().map(|&i| y[i as usize]).sum();
        let total_sq: f64 = order.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
        for k in 0..order.len() - 1 {
            let yi = y[order[k] as usize];
            lsum += yi;
            lsq += yi * yi;
            let v = x[order[k] as usize][f];
            let v_next = x[order[k + 1] as usize][f];
            if v == v_next {
                continue;
            }
            let ln = (k + 1) as f64;
            let rn = (order.len() - k - 1) as f64;
            if (ln as usize) < params.min_samples_leaf || (rn as usize) < params.min_samples_leaf {
                continue;
            }
            let l_sse = lsq - lsum * lsum / ln;
            let rsum = total_sum - lsum;
            let r_sse = (total_sq - lsq) - rsum * rsum / rn;
            let gain = sse - l_sse - r_sse;
            if gain > params.min_gain && best.is_none_or(|b| gain > b.2) {
                best = Some((f, 0.5 * (v + v_next), gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return leaf(nodes);
    };

    let me = nodes.len();
    nodes.push(RNode::Leaf { value: mean }); // placeholder
    let (li, ri): (Vec<u32>, Vec<u32>) =
        idx.iter().partition(|&&i| x[i as usize][feature] <= threshold);
    let left = grow_reg(x, y, params, li, depth + 1, nodes);
    let right = grow_reg(x, y, params, ri, depth + 1, nodes);
    nodes[me] = RNode::Split { feature: feature as u16, threshold, left, right };
    me as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_and_production_agree_on_continuous_features() {
        // Distinct feature values everywhere → candidate scan order is
        // unambiguous → the trees must be *equal*, importances included.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let a = i as f64 + (i as f64) * 1e-6;
            let b = ((i * 37) % 151) as f64 + (i as f64) * 1e-7;
            x.push(vec![a, b]);
            y.push(usize::from(a > 75.0) ^ usize::from(b > 70.0));
        }
        let params = TreeParams::default();
        let reference = fit_tree(&x, &y, 2, &params);
        let production = DecisionTree::fit(&x, &y, 2, &params);
        assert_eq!(reference, production);
    }

    #[test]
    fn reference_and_production_regression_agree() {
        let x: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64 * 1.001, (i as f64).sin()]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 0.5 + r[1]).collect();
        let params = RegParams::default();
        let reference = fit_regression(&x, &y, &params);
        let production = RegressionTree::fit(&x, &y, &params);
        assert_eq!(reference, production);
    }
}
