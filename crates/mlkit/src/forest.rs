//! Random-forest classifier — the ensemble alternative the paper's §3.1
//! implicitly trades away.
//!
//! Misam chooses a single decision tree "due to its lightweight footprint
//! and low-latency inference". This module provides the counterfactual: a
//! bagged forest with per-split feature subsampling, so the accuracy /
//! footprint / inference-latency trade-off can be *measured* (see the
//! `ablation_models` experiment) instead of asserted.

use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters for forest induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Parameters of each tree.
    pub tree: TreeParams,
    /// Fraction of the training set bootstrapped per tree.
    pub sample_fraction: f64,
    /// Features visible to each tree (a random subset per tree; `None`
    /// uses all features).
    pub features_per_tree: Option<usize>,
    /// Seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 25,
            tree: TreeParams::default(),
            sample_fraction: 0.8,
            features_per_tree: None,
            seed: 0,
        }
    }
}

/// A bagged ensemble of CART trees with majority voting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Per-tree feature index maps (tree i sees `features[maps[i][j]]` as
    /// its feature j).
    maps: Vec<Vec<usize>>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Fits a forest to feature rows `x` and labels `y`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DecisionTree::fit`], or if
    /// `n_trees == 0`, `sample_fraction` is outside `(0, 1]`, or
    /// `features_per_tree` is 0 or exceeds the feature count.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, params: &ForestParams) -> Self {
        assert!(params.n_trees > 0, "forest needs at least one tree");
        assert!(
            params.sample_fraction > 0.0 && params.sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        assert!(!x.is_empty(), "cannot fit a forest to an empty dataset");
        let n_features = x[0].len();
        if let Some(f) = params.features_per_tree {
            assert!(f > 0 && f <= n_features, "features_per_tree out of range");
        }

        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xf0_0e57);
        let n_boot = ((x.len() as f64 * params.sample_fraction).round() as usize).max(1);
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut maps = Vec::with_capacity(params.n_trees);

        for _ in 0..params.n_trees {
            // Feature subset for this tree.
            let map: Vec<usize> = match params.features_per_tree {
                Some(k) => {
                    let mut all: Vec<usize> = (0..n_features).collect();
                    for i in 0..k {
                        let j = rng.gen_range(i..n_features);
                        all.swap(i, j);
                    }
                    all.truncate(k);
                    all
                }
                None => (0..n_features).collect(),
            };
            // Bootstrap sample.
            let mut xs = Vec::with_capacity(n_boot);
            let mut ys = Vec::with_capacity(n_boot);
            for _ in 0..n_boot {
                let i = rng.gen_range(0..x.len());
                xs.push(map.iter().map(|&f| x[i][f]).collect::<Vec<f64>>());
                ys.push(y[i]);
            }
            trees.push(DecisionTree::fit(&xs, &ys, n_classes, &params.tree));
            maps.push(map);
        }
        RandomForest { trees, maps, n_classes, n_features }
    }

    /// Predicts by majority vote (ties break to the lower class index).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut votes = vec![0usize; self.n_classes];
        let mut projected = Vec::new();
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            projected.clear();
            projected.extend(map.iter().map(|&f| features[f]));
            votes[tree.predict(&projected)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, self.n_classes - i))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total compact-serialized size across all trees — the footprint a
    /// host runtime would ship (compare with the single tree's ~6 KB).
    pub fn serialized_size(&self) -> usize {
        self.trees.iter().map(DecisionTree::serialized_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_problem(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            let label = usize::from(f[0] + 0.3 * f[1] > 0.65);
            // 10% label noise.
            let label = if rng.gen_bool(0.1) { 1 - label } else { label };
            x.push(f);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_problem(400, 1);
        let forest = RandomForest::fit(&x, &y, 2, &ForestParams::default());
        let acc = forest.predict_batch(&x).iter().zip(&y).filter(|(p, a)| p == a).count() as f64
            / x.len() as f64;
        assert!(acc > 0.8, "train accuracy {acc:.2}");
    }

    #[test]
    fn forest_generalizes_at_least_as_well_as_one_shallow_tree() {
        let (xt, yt) = noisy_problem(500, 2);
        let (xv, yv) = noisy_problem(300, 3);
        let tree_params = TreeParams { max_depth: 3, ..TreeParams::default() };
        let tree = DecisionTree::fit(&xt, &yt, 2, &tree_params);
        let forest = RandomForest::fit(
            &xt,
            &yt,
            2,
            &ForestParams { n_trees: 30, tree: tree_params, ..ForestParams::default() },
        );
        let acc = |pred: Vec<usize>| {
            pred.iter().zip(&yv).filter(|(p, a)| p == a).count() as f64 / yv.len() as f64
        };
        let t_acc = acc(tree.predict_batch(&xv));
        let f_acc = acc(forest.predict_batch(&xv));
        assert!(f_acc + 0.03 >= t_acc, "forest {f_acc:.2} should not trail the stump {t_acc:.2}");
    }

    #[test]
    fn forest_footprint_scales_with_tree_count() {
        let (x, y) = noisy_problem(200, 4);
        let small =
            RandomForest::fit(&x, &y, 2, &ForestParams { n_trees: 5, ..ForestParams::default() });
        let big =
            RandomForest::fit(&x, &y, 2, &ForestParams { n_trees: 40, ..ForestParams::default() });
        assert!(big.serialized_size() > 4 * small.serialized_size());
        assert_eq!(big.n_trees(), 40);
    }

    #[test]
    fn feature_subsampling_restricts_visibility() {
        let (x, y) = noisy_problem(300, 5);
        let forest = RandomForest::fit(
            &x,
            &y,
            2,
            &ForestParams { n_trees: 12, features_per_tree: Some(2), ..ForestParams::default() },
        );
        // Still functions end to end.
        let _ = forest.predict(&x[0]);
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (x, y) = noisy_problem(150, 6);
        let a = RandomForest::fit(&x, &y, 2, &ForestParams { seed: 9, ..Default::default() });
        let b = RandomForest::fit(&x, &y, 2, &ForestParams { seed: 9, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        RandomForest::fit(
            &[vec![1.0]],
            &[0],
            1,
            &ForestParams { n_trees: 0, ..Default::default() },
        );
    }
}
