//! Random-forest classifier — the ensemble alternative the paper's §3.1
//! implicitly trades away.
//!
//! Misam chooses a single decision tree "due to its lightweight footprint
//! and low-latency inference". This module provides the counterfactual: a
//! bagged forest with per-split feature subsampling, so the accuracy /
//! footprint / inference-latency trade-off can be *measured* (see the
//! `ablation_models` experiment) instead of asserted.
//!
//! Trees grow in parallel on `misam_pool` workers. Every random
//! draw (feature subsets, bootstrap indices) is sequenced **serially**
//! from the seeded RNG before any worker starts, in exactly the order
//! the original serial loop drew them, so the fitted forest is
//! bit-identical at any thread count — `MISAM_THREADS=1` and
//! `MISAM_THREADS=32` produce byte-for-byte the same model (tested in
//! `tests/flat_equivalence.rs`).

use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters for forest induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Parameters of each tree.
    pub tree: TreeParams,
    /// Fraction of the training set bootstrapped per tree.
    pub sample_fraction: f64,
    /// Features visible to each tree (a random subset per tree; `None`
    /// uses all features).
    pub features_per_tree: Option<usize>,
    /// Seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 25,
            tree: TreeParams::default(),
            sample_fraction: 0.8,
            features_per_tree: None,
            seed: 0,
        }
    }
}

/// A bagged ensemble of CART trees with majority voting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Per-tree feature index maps (tree i sees `features[maps[i][j]]` as
    /// its feature j).
    maps: Vec<Vec<usize>>,
    n_classes: usize,
    n_features: usize,
}

/// Pre-drawn randomness for one tree: its feature subset and bootstrap
/// row indices. Drawing these serially up front is what makes the
/// parallel fit deterministic.
struct TreePlan {
    map: Vec<usize>,
    boot: Vec<usize>,
}

impl RandomForest {
    /// Fits a forest to feature rows `x` and labels `y`, growing trees
    /// in parallel (worker count from `MISAM_THREADS`, default all
    /// cores). The result is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`DecisionTree::fit`], or if
    /// `n_trees == 0`, `sample_fraction` is outside `(0, 1]`, or
    /// `features_per_tree` is 0 or exceeds the feature count.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, params: &ForestParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest to an empty dataset");
        Self::fit_matrix(&FeatureMatrix::from_rows(x), y, n_classes, params)
    }

    /// [`RandomForest::fit`] with an explicit worker count (1 = serial).
    pub fn fit_with_threads(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        params: &ForestParams,
        threads: usize,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest to an empty dataset");
        Self::fit_inner(&FeatureMatrix::from_rows(x), y, n_classes, params, threads)
    }

    /// Fits a forest to columnar features; bootstraps and feature
    /// projections are gathered column-at-a-time from the shared matrix.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RandomForest::fit`].
    pub fn fit_matrix(
        m: &FeatureMatrix,
        y: &[usize],
        n_classes: usize,
        params: &ForestParams,
    ) -> Self {
        Self::fit_inner(m, y, n_classes, params, misam_pool::default_threads())
    }

    fn fit_inner(
        m: &FeatureMatrix,
        y: &[usize],
        n_classes: usize,
        params: &ForestParams,
        threads: usize,
    ) -> Self {
        assert!(params.n_trees > 0, "forest needs at least one tree");
        assert!(
            params.sample_fraction > 0.0 && params.sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        let n_features = m.n_features();
        if let Some(f) = params.features_per_tree {
            assert!(f > 0 && f <= n_features, "features_per_tree out of range");
        }

        // Sequence every random draw serially, in the exact order the
        // original serial loop consumed the RNG stream: per tree, the
        // feature subset first, then the bootstrap indices.
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xf0_0e57);
        let n_boot = ((m.n_rows() as f64 * params.sample_fraction).round() as usize).max(1);
        let plans: Vec<TreePlan> = (0..params.n_trees)
            .map(|_| {
                let map: Vec<usize> = match params.features_per_tree {
                    Some(k) => {
                        let mut all: Vec<usize> = (0..n_features).collect();
                        for i in 0..k {
                            let j = rng.gen_range(i..n_features);
                            all.swap(i, j);
                        }
                        all.truncate(k);
                        all
                    }
                    None => (0..n_features).collect(),
                };
                let boot: Vec<usize> = (0..n_boot).map(|_| rng.gen_range(0..m.n_rows())).collect();
                TreePlan { map, boot }
            })
            .collect();

        // Worker threads beyond the machine's cores only add scheduling
        // overhead (a 2-thread fit on a 1-CPU host benched ~5% slower
        // than serial), and tiny trees never win back the scoped-spawn
        // cost: clamp to the hardware, then fall back to serial when
        // the per-tree work (gathered submatrix cells, the dominant
        // cost of a tree fit) is below the crossover.
        const MIN_PARALLEL_CELLS: usize = 1 << 14;
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let per_tree = n_boot * params.features_per_tree.unwrap_or(n_features);
        let threads = if per_tree < MIN_PARALLEL_CELLS { 1 } else { threads.min(cores) };

        // Grow trees in parallel; par_map returns results in input
        // order, so tree i is always the tree plan i would have grown.
        let trees = misam_pool::par_map_with(&plans, threads, |plan| {
            let sub = m.gather_project(&plan.boot, Some(&plan.map));
            let ys: Vec<usize> = plan.boot.iter().map(|&i| y[i]).collect();
            DecisionTree::fit_matrix(&sub, &ys, n_classes, &params.tree)
        });
        let maps = plans.into_iter().map(|p| p.map).collect();
        RandomForest { trees, maps, n_classes, n_features }
    }

    /// Predicts by majority vote (ties break to the lower class index).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut votes = vec![0usize; self.n_classes];
        let mut projected = Vec::new();
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            projected.clear();
            projected.extend(map.iter().map(|&f| features[f]));
            votes[tree.predict(&projected)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, self.n_classes - i))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Predicts every row of a columnar matrix through the flat
    /// inference form (one conversion, then dense array walks).
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<usize> {
        crate::flat::FlatForest::from_forest(self).predict_batch_matrix(m)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The fitted trees (crate-internal: flat-form conversion).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The per-tree feature maps (crate-internal: flat-form conversion).
    pub(crate) fn maps(&self) -> &[Vec<usize>] {
        &self.maps
    }

    /// Total compact-serialized size across all trees — the footprint a
    /// host runtime would ship (compare with the single tree's ~6 KB).
    pub fn serialized_size(&self) -> usize {
        self.trees.iter().map(DecisionTree::serialized_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_problem(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
            let label = usize::from(f[0] + 0.3 * f[1] > 0.65);
            // 10% label noise.
            let label = if rng.gen_bool(0.1) { 1 - label } else { label };
            x.push(f);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_problem(400, 1);
        let forest = RandomForest::fit(&x, &y, 2, &ForestParams::default());
        let acc = forest.predict_batch(&x).iter().zip(&y).filter(|(p, a)| p == a).count() as f64
            / x.len() as f64;
        assert!(acc > 0.8, "train accuracy {acc:.2}");
    }

    #[test]
    fn forest_generalizes_at_least_as_well_as_one_shallow_tree() {
        let (xt, yt) = noisy_problem(500, 2);
        let (xv, yv) = noisy_problem(300, 3);
        let tree_params = TreeParams { max_depth: 3, ..TreeParams::default() };
        let tree = DecisionTree::fit(&xt, &yt, 2, &tree_params);
        let forest = RandomForest::fit(
            &xt,
            &yt,
            2,
            &ForestParams { n_trees: 30, tree: tree_params, ..ForestParams::default() },
        );
        let acc = |pred: Vec<usize>| {
            pred.iter().zip(&yv).filter(|(p, a)| p == a).count() as f64 / yv.len() as f64
        };
        let t_acc = acc(tree.predict_batch(&xv));
        let f_acc = acc(forest.predict_batch(&xv));
        assert!(f_acc + 0.03 >= t_acc, "forest {f_acc:.2} should not trail the stump {t_acc:.2}");
    }

    #[test]
    fn forest_footprint_scales_with_tree_count() {
        let (x, y) = noisy_problem(200, 4);
        let small =
            RandomForest::fit(&x, &y, 2, &ForestParams { n_trees: 5, ..ForestParams::default() });
        let big =
            RandomForest::fit(&x, &y, 2, &ForestParams { n_trees: 40, ..ForestParams::default() });
        assert!(big.serialized_size() > 4 * small.serialized_size());
        assert_eq!(big.n_trees(), 40);
    }

    #[test]
    fn feature_subsampling_restricts_visibility() {
        let (x, y) = noisy_problem(300, 5);
        let forest = RandomForest::fit(
            &x,
            &y,
            2,
            &ForestParams { n_trees: 12, features_per_tree: Some(2), ..ForestParams::default() },
        );
        // Still functions end to end.
        let _ = forest.predict(&x[0]);
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (x, y) = noisy_problem(150, 6);
        let a = RandomForest::fit(&x, &y, 2, &ForestParams { seed: 9, ..Default::default() });
        let b = RandomForest::fit(&x, &y, 2, &ForestParams { seed: 9, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_forest() {
        let (x, y) = noisy_problem(200, 7);
        let params = ForestParams { n_trees: 10, seed: 3, ..Default::default() };
        let serial = RandomForest::fit_with_threads(&x, &y, 2, &params, 1);
        let parallel = RandomForest::fit_with_threads(&x, &y, 2, &params, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        RandomForest::fit(
            &[vec![1.0]],
            &[0],
            1,
            &ForestParams { n_trees: 0, ..Default::default() },
        );
    }
}
