//! Variance-reduction regression tree — the latency predictor inside the
//! reconfiguration engine (§3.3).
//!
//! The engine must estimate the expected latency of the predicted design
//! from matrix features before deciding whether a bitstream switch pays
//! for itself. The paper reports MAE 0.344 and R² 0.978 for this
//! predictor (Figure 9); `misam-core` trains it on log-latency, where
//! those residual scales are meaningful.
//!
//! Like the classifier, induction is sort-once over a columnar
//! [`FeatureMatrix`]: every feature is argsorted once for the whole
//! training set and split choices stably partition the pre-sorted index
//! rows, so no node ever re-sorts. The original per-node-sorting
//! algorithm survives in [`crate::reference`] for equivalence tests.

use crate::matrix::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Hyperparameters for regression-tree induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegParams {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum variance reduction (weighted) to keep a split.
    pub min_gain: f64,
}

impl Default for RegParams {
    fn default() -> Self {
        RegParams { max_depth: 14, min_samples_leaf: 2, min_gain: 1e-12 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) enum RNode {
    Split { feature: u16, threshold: f64, left: u32, right: u32 },
    Leaf { value: f64 },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<RNode>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree to feature rows `x` and real-valued targets `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths disagree, rows are ragged, or any
    /// target is not finite.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &RegParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree to an empty dataset");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
        Self::fit_matrix(&FeatureMatrix::from_rows(x), y, params)
    }

    /// Fits a tree to columnar features — skips the transposition the
    /// row-slice [`RegressionTree::fit`] front door performs.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or any target is not finite.
    pub fn fit_matrix(m: &FeatureMatrix, y: &[f64], params: &RegParams) -> Self {
        assert_eq!(m.n_rows(), y.len(), "feature and target counts differ");
        assert!(y.iter().all(|v| v.is_finite()), "targets must be finite");

        let n = m.n_rows();
        let nf = m.n_features();
        let mut order = vec![0u32; (nf + 1) * n];
        for f in 0..nf {
            let col = m.col(f);
            let seg = &mut order[f * n..(f + 1) * n];
            for (k, v) in seg.iter_mut().enumerate() {
                *v = k as u32;
            }
            seg.sort_unstable_by(|&a, &b| {
                col[a as usize].partial_cmp(&col[b as usize]).expect("features must not be NaN")
            });
        }
        for (k, v) in order[nf * n..].iter_mut().enumerate() {
            *v = k as u32;
        }

        let mut b = RegBuilder {
            m,
            y,
            params,
            nodes: Vec::new(),
            order,
            scratch: vec![0u32; n],
            goes_left: vec![false; n],
        };
        b.grow(0, n, 0);
        RegressionTree { nodes: b.nodes, n_features: nf }
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                RNode::Split { feature, threshold, left, right } => {
                    i = if features[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
                RNode::Leaf { value } => return value,
            }
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Predicts every row of a columnar matrix through the flat
    /// inference form.
    ///
    /// # Panics
    ///
    /// Panics if `m.n_features() != n_features`.
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<f64> {
        crate::flat::FlatRegressionTree::from_tree(self).predict_batch_matrix(m)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The flat node array (crate-internal: flat-form conversion).
    pub(crate) fn nodes(&self) -> &[RNode] {
        &self.nodes
    }

    /// Assembles a tree from already-built nodes (crate-internal: the
    /// reference implementation).
    pub(crate) fn from_parts(nodes: Vec<RNode>, n_features: usize) -> Self {
        RegressionTree { nodes, n_features }
    }
}

/// Sort-once induction state; see [`crate::tree`] for the buffer layout
/// (here the membership row drives the node mean / SSE accumulation).
struct RegBuilder<'a> {
    m: &'a FeatureMatrix,
    y: &'a [f64],
    params: &'a RegParams,
    nodes: Vec<RNode>,
    order: Vec<u32>,
    scratch: Vec<u32>,
    goes_left: Vec<bool>,
}

impl RegBuilder<'_> {
    fn grow(&mut self, lo: usize, hi: usize, depth: usize) -> u32 {
        let nrows = self.m.n_rows();
        let nf = self.m.n_features();
        let n = (hi - lo) as f64;
        let members = &self.order[nf * nrows + lo..nf * nrows + hi];
        let mean = members.iter().map(|&i| self.y[i as usize]).sum::<f64>() / n;
        let sse: f64 = members.iter().map(|&i| (self.y[i as usize] - mean).powi(2)).sum();

        let leaf = |nodes: &mut Vec<RNode>| {
            nodes.push(RNode::Leaf { value: mean });
            (nodes.len() - 1) as u32
        };

        if depth >= self.params.max_depth
            || hi - lo < 2 * self.params.min_samples_leaf
            || sse <= 0.0
        {
            return leaf(&mut self.nodes);
        }

        let Some((feature, threshold)) = self.best_split(lo, hi, sse) else {
            return leaf(&mut self.nodes);
        };

        let me = self.nodes.len();
        self.nodes.push(RNode::Leaf { value: mean }); // placeholder

        {
            let col = self.m.col(feature);
            for pos in lo..hi {
                let i = self.order[nf * nrows + pos] as usize;
                self.goes_left[i] = col[i] <= threshold;
            }
        }
        let mut n_left = 0usize;
        for row in 0..=nf {
            let base = row * nrows;
            let mut k = 0usize;
            let mut s = 0usize;
            for pos in lo..hi {
                let v = self.order[base + pos];
                if self.goes_left[v as usize] {
                    self.order[base + lo + k] = v;
                    k += 1;
                } else {
                    self.scratch[s] = v;
                    s += 1;
                }
            }
            self.order[base + lo + k..base + hi].copy_from_slice(&self.scratch[..s]);
            n_left = k;
        }

        let left = self.grow(lo, lo + n_left, depth + 1);
        let right = self.grow(lo + n_left, hi, depth + 1);
        self.nodes[me] = RNode::Split { feature: feature as u16, threshold, left, right };
        me as u32
    }

    /// Best split by SSE reduction: one linear scan per feature over the
    /// node's pre-sorted index row, running sums replicating the
    /// reference algorithm's accumulation order.
    fn best_split(&self, lo: usize, hi: usize, sse: f64) -> Option<(usize, f64)> {
        let nrows = self.m.n_rows();
        let seg_len = hi - lo;
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for f in 0..self.m.n_features() {
            let col = self.m.col(f);
            let seg = &self.order[f * nrows + lo..f * nrows + hi];
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            // The reference computes the totals over the node in sorted
            // order, per feature; replicate for identical rounding.
            let total_sum: f64 = seg.iter().map(|&i| self.y[i as usize]).sum();
            let total_sq: f64 = seg.iter().map(|&i| self.y[i as usize] * self.y[i as usize]).sum();
            for k in 0..seg_len - 1 {
                let yi = self.y[seg[k] as usize];
                lsum += yi;
                lsq += yi * yi;
                let v = col[seg[k] as usize];
                let v_next = col[seg[k + 1] as usize];
                if v == v_next {
                    continue;
                }
                let ln = (k + 1) as f64;
                let rn = (seg_len - k - 1) as f64;
                if (ln as usize) < self.params.min_samples_leaf
                    || (rn as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                let l_sse = lsq - lsum * lsum / ln;
                let rsum = total_sum - lsum;
                let r_sse = (total_sq - lsq) - rsum * rsum / rn;
                let gain = sse - l_sse - r_sse;
                if gain > self.params.min_gain && best.is_none_or(|b| gain > b.2) {
                    best = Some((f, 0.5 * (v + v_next), gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((t.predict(&[40.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn approximates_a_smooth_function() {
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        let mut worst: f64 = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            worst = worst.max((t.predict(xi) - yi).abs());
        }
        assert!(worst < 0.2, "worst absolute error {worst}");
    }

    #[test]
    fn fit_matrix_matches_fit() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 23) as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 3.0 - r[1]).collect();
        let a = RegressionTree::fit(&x, &y, &RegParams::default());
        let b =
            RegressionTree::fit_matrix(&FeatureMatrix::from_rows(&x), &y, &RegParams::default());
        assert_eq!(a, b);
        assert_eq!(a.predict_batch(&x), b.predict_batch_matrix(&FeatureMatrix::from_rows(&x)));
    }

    #[test]
    fn constant_target_is_a_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![7.0, 7.0, 7.0];
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[-100.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let params = RegParams { min_samples_leaf: 5, ..RegParams::default() };
        let t = RegressionTree::fit(&x, &y, &params);
        // Only the 5/5 split is allowed.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn multi_feature_selection_picks_informative_axis() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let informative = (i % 20) as f64;
            let noise = ((i * 7) % 13) as f64;
            x.push(vec![noise, informative]);
            y.push(informative * 10.0);
        }
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        let pred = t.predict(&[0.0, 10.0]);
        assert!((pred - 100.0).abs() < 10.0);
    }

    #[test]
    #[should_panic(expected = "targets must be finite")]
    fn rejects_nan_targets() {
        RegressionTree::fit(&[vec![1.0]], &[f64::NAN], &RegParams::default());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn predict_checks_arity() {
        let t = RegressionTree::fit(&[vec![1.0, 2.0]], &[1.0], &RegParams::default());
        t.predict(&[1.0, 2.0, 3.0]);
    }
}
