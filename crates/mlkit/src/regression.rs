//! Variance-reduction regression tree — the latency predictor inside the
//! reconfiguration engine (§3.3).
//!
//! The engine must estimate the expected latency of the predicted design
//! from matrix features before deciding whether a bitstream switch pays
//! for itself. The paper reports MAE 0.344 and R² 0.978 for this
//! predictor (Figure 9); `misam-core` trains it on log-latency, where
//! those residual scales are meaningful.

use serde::{Deserialize, Serialize};

/// Hyperparameters for regression-tree induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegParams {
    /// Maximum depth of the tree.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum variance reduction (weighted) to keep a split.
    pub min_gain: f64,
}

impl Default for RegParams {
    fn default() -> Self {
        RegParams { max_depth: 14, min_samples_leaf: 2, min_gain: 1e-12 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum RNode {
    Split { feature: u16, threshold: f64, left: u32, right: u32 },
    Leaf { value: f64 },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<RNode>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree to feature rows `x` and real-valued targets `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths disagree, rows are ragged, or any
    /// target is not finite.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &RegParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree to an empty dataset");
        assert_eq!(x.len(), y.len(), "feature and target counts differ");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features), "ragged feature rows");
        assert!(y.iter().all(|v| v.is_finite()), "targets must be finite");

        let mut nodes = Vec::new();
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        grow(x, y, params, idx, 0, &mut nodes);
        RegressionTree { nodes, n_features }
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                RNode::Split { feature, threshold, left, right } => {
                    i = if features[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
                RNode::Leaf { value } => return value,
            }
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    params: &RegParams,
    idx: Vec<u32>,
    depth: usize,
    nodes: &mut Vec<RNode>,
) -> u32 {
    let n = idx.len() as f64;
    let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n;
    let sse: f64 = idx.iter().map(|&i| (y[i as usize] - mean).powi(2)).sum();

    let leaf = |nodes: &mut Vec<RNode>| {
        nodes.push(RNode::Leaf { value: mean });
        (nodes.len() - 1) as u32
    };

    if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf || sse <= 0.0 {
        return leaf(nodes);
    }

    // Best split by SSE reduction, scanning sorted values per feature.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut order = idx.clone();
    // `f` is a column index across every row of `x`, not an index into
    // one slice, so the range loop is the natural form.
    #[allow(clippy::needless_range_loop)]
    for f in 0..x[0].len() {
        order.sort_unstable_by(|&a, &b| {
            x[a as usize][f].partial_cmp(&x[b as usize][f]).expect("features must not be NaN")
        });
        let mut lsum = 0.0;
        let mut lsq = 0.0;
        let total_sum: f64 = order.iter().map(|&i| y[i as usize]).sum();
        let total_sq: f64 = order.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
        for k in 0..order.len() - 1 {
            let yi = y[order[k] as usize];
            lsum += yi;
            lsq += yi * yi;
            let v = x[order[k] as usize][f];
            let v_next = x[order[k + 1] as usize][f];
            if v == v_next {
                continue;
            }
            let ln = (k + 1) as f64;
            let rn = (order.len() - k - 1) as f64;
            if (ln as usize) < params.min_samples_leaf || (rn as usize) < params.min_samples_leaf {
                continue;
            }
            let l_sse = lsq - lsum * lsum / ln;
            let rsum = total_sum - lsum;
            let r_sse = (total_sq - lsq) - rsum * rsum / rn;
            let gain = sse - l_sse - r_sse;
            if gain > params.min_gain && best.is_none_or(|b| gain > b.2) {
                best = Some((f, 0.5 * (v + v_next), gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return leaf(nodes);
    };

    let me = nodes.len();
    nodes.push(RNode::Leaf { value: mean }); // placeholder
    let (li, ri): (Vec<u32>, Vec<u32>) =
        idx.iter().partition(|&&i| x[i as usize][feature] <= threshold);
    let left = grow(x, y, params, li, depth + 1, nodes);
    let right = grow(x, y, params, ri, depth + 1, nodes);
    nodes[me] = RNode::Split { feature: feature as u16, threshold, left, right };
    me as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((t.predict(&[40.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn approximates_a_smooth_function() {
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        let mut worst: f64 = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            worst = worst.max((t.predict(xi) - yi).abs());
        }
        assert!(worst < 0.2, "worst absolute error {worst}");
    }

    #[test]
    fn constant_target_is_a_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![7.0, 7.0, 7.0];
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[-100.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let params = RegParams { min_samples_leaf: 5, ..RegParams::default() };
        let t = RegressionTree::fit(&x, &y, &params);
        // Only the 5/5 split is allowed.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn multi_feature_selection_picks_informative_axis() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let informative = (i % 20) as f64;
            let noise = ((i * 7) % 13) as f64;
            x.push(vec![noise, informative]);
            y.push(informative * 10.0);
        }
        let t = RegressionTree::fit(&x, &y, &RegParams::default());
        let pred = t.predict(&[0.0, 10.0]);
        assert!((pred - 100.0).abs() < 10.0);
    }

    #[test]
    #[should_panic(expected = "targets must be finite")]
    fn rejects_nan_targets() {
        RegressionTree::fit(&[vec![1.0]], &[f64::NAN], &RegParams::default());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn predict_checks_arity() {
        let t = RegressionTree::fit(&[vec![1.0, 2.0]], &[1.0], &RegParams::default());
        t.predict(&[1.0, 2.0, 3.0]);
    }
}
