//! Flattened structure-of-arrays inference forms.
//!
//! A fitted [`DecisionTree`] stores `Node` enum values — 32 bytes each,
//! with the match on the discriminant in the middle of the descent loop.
//! The flat forms below split the same tree into three parallel arrays
//! (`feature: u16`, `threshold: f64`, `children: u32 × 2`) with a
//! sentinel feature value marking leaves, so the descent is a
//! branch-light `i = children[2i + (x[f] > t)]` loop over dense arrays.
//! This is the serving-side counterpart of the paper's "unrolled
//! decision logic" (§5.5): `misam-serve` converts each reloaded
//! [`ModelBundle`](../../misam/persist/struct.ModelBundle.html) once and
//! runs every micro-batch flush on the flat form.
//!
//! Conversions are lossless: flat predictions (class, purity, latency)
//! are bit-identical to the boxed walk — property-tested in
//! `tests/flat_equivalence.rs` — and [`FlatTree::to_bytes`] emits the
//! exact `MSDT` wire format of [`DecisionTree::to_bytes`], so the two
//! forms are interchangeable on disk.

use crate::error::ModelDecodeError;
use crate::forest::RandomForest;
use crate::matrix::FeatureMatrix;
use crate::regression::RegressionTree;
use crate::simd;
use crate::tree::{decode_nodes, encode_nodes, DecisionTree, Node};
use serde::{Deserialize, Serialize};

/// Sentinel in the `feature` array marking a leaf. Valid split feature
/// indices are `< n_features <= u16::MAX`, so the sentinel can never
/// collide.
const LEAF: u16 = u16::MAX;

/// Row count at or above which the adaptive batch entry points
/// ([`FlatTree::predict_batch_rows`] and friends) transpose the rows
/// into a [`FeatureMatrix`] and run the frontier walk; below it they
/// walk row by row on the row-major storage as given.
///
/// A one-shot transpose is pure overhead unless the frontier walk's
/// sequential column passes win it back within the same call. On a
/// single tree the per-row flat walk already reads cache-resident rows,
/// so the crossover sits past any realistic micro-batch — `bench_train`
/// measured the transpose-per-call path at 0.92× the boxed walk at 8k
/// rows while the per-row flat walk stays well ahead. Callers that
/// reuse one matrix across several trees (the serving flush path)
/// should build the [`FeatureMatrix`] themselves and call
/// `predict_batch_matrix` directly: sharing, not size, is what pays
/// for the transpose.
pub const TRANSPOSE_MIN_ROWS: usize = 16_384;

/// Frontier walk shared by the flat batch predictors: instead of
/// descending row by row (which reads one scattered column value per
/// node visit), all rows descend together. A stack of `(node, lo, hi)`
/// segments over one shared row-index buffer is processed node by node;
/// at each split the segment is stably partitioned in place — one
/// sequential pass over a single feature column, against one register-
/// resident threshold. The stable partition keeps each segment's row
/// indices ascending, so column gathers stay prefetch-friendly at every
/// depth. `emit(node, rows)` is called once per reached leaf with the
/// rows that landed on it.
///
/// When `map` is present, split feature `f` reads column `map[f]` of
/// `m` (the forest's per-tree feature projection, applied on the fly).
///
/// The comparison is `!(x <= t)` — not `x > t` — so NaN descends right
/// exactly like the per-row walks. The per-segment partition itself is
/// [`simd::partition_segment`]: branchless/AVX2 by default, or the
/// original branchy loop under `force-scalar` — bit-identical either
/// way.
fn walk_batch(
    feature: &[u16],
    threshold: &[f64],
    children: &[u32],
    m: &FeatureMatrix,
    map: Option<&[u32]>,
    emit: impl FnMut(usize, &[u32]),
) {
    walk_batch_with(feature, threshold, children, m, map, simd::partition_segment, emit);
}

/// [`walk_batch`] pinned to the scalar partition — the kernel bench's
/// frontier-walk baseline.
fn walk_batch_scalar(
    feature: &[u16],
    threshold: &[f64],
    children: &[u32],
    m: &FeatureMatrix,
    map: Option<&[u32]>,
    emit: impl FnMut(usize, &[u32]),
) {
    walk_batch_with(feature, threshold, children, m, map, simd::partition_segment_scalar, emit);
}

fn walk_batch_with(
    feature: &[u16],
    threshold: &[f64],
    children: &[u32],
    m: &FeatureMatrix,
    map: Option<&[u32]>,
    partition: impl Fn(&[f64], f64, &mut [u32], &mut [u32], usize, usize) -> usize,
    mut emit: impl FnMut(usize, &[u32]),
) {
    let n = m.n_rows();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut scratch: Vec<u32> = vec![0; n];
    let mut stack: Vec<(u32, u32, u32)> = vec![(0, 0, n as u32)];
    while let Some((node, lo, hi)) = stack.pop() {
        let (i, lo, hi) = (node as usize, lo as usize, hi as usize);
        let f = feature[i];
        if f == LEAF {
            emit(i, &idx[lo..hi]);
            continue;
        }
        let full = map.map_or(f as usize, |mp| mp[f as usize] as usize);
        let col = m.col(full);
        let t = threshold[i];
        let nl = partition(col, t, &mut idx, &mut scratch, lo, hi);
        idx[nl..hi].copy_from_slice(&scratch[..hi - nl]);
        if hi > nl {
            stack.push((children[2 * i + 1], nl as u32, hi as u32));
        }
        if nl > lo {
            stack.push((children[2 * i], lo as u32, nl as u32));
        }
    }
}

/// A classifier tree flattened into parallel arrays for inference.
///
/// Per node `i`: `feature[i]` is the tested feature (or [`LEAF`]),
/// `threshold[i]` the decision threshold (for leaves: the purity), and
/// `children[2i] / children[2i + 1]` the left/right child offsets (for
/// leaves: the class in the left slot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    children: Vec<u32>,
    n_features: usize,
    n_classes: usize,
}

impl FlatTree {
    /// Flattens a fitted boxed tree. Predictions are bit-identical to
    /// the source tree's.
    pub fn from_tree(tree: &DecisionTree) -> Self {
        let nodes = tree.nodes();
        let mut flat = FlatTree {
            feature: Vec::with_capacity(nodes.len()),
            threshold: Vec::with_capacity(nodes.len()),
            children: Vec::with_capacity(2 * nodes.len()),
            n_features: tree.n_features(),
            n_classes: tree.n_classes(),
        };
        for n in nodes {
            flat.push_node(n);
        }
        flat
    }

    fn push_node(&mut self, n: &Node) {
        match *n {
            Node::Split { feature, threshold, left, right } => {
                self.feature.push(feature);
                self.threshold.push(threshold);
                self.children.push(left);
                self.children.push(right);
            }
            Node::Leaf { class, purity } => {
                self.feature.push(LEAF);
                self.threshold.push(purity as f64);
                self.children.push(class as u32);
                self.children.push(0);
            }
        }
    }

    fn node(&self, i: usize) -> Node {
        if self.feature[i] == LEAF {
            Node::Leaf { class: self.children[2 * i] as u16, purity: self.threshold[i] as f32 }
        } else {
            Node::Split {
                feature: self.feature[i],
                threshold: self.threshold[i],
                left: self.children[2 * i],
                right: self.children[2 * i + 1],
            }
        }
    }

    /// Rebuilds the boxed form (decoded trees report zero importances,
    /// like [`DecisionTree::from_bytes`]).
    pub fn to_tree(&self) -> DecisionTree {
        let nodes: Vec<Node> = (0..self.feature.len()).map(|i| self.node(i)).collect();
        DecisionTree::from_parts(nodes, self.n_features, self.n_classes, vec![0.0; self.n_features])
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_with_purity(features).0
    }

    /// Predicts the class and the training purity of the reached leaf.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn predict_with_purity(&self, features: &[f64]) -> (usize, f64) {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return (self.children[2 * i] as usize, self.threshold[i]);
            }
            // `!(x <= t)` (not `x > t`) so NaN descends right, exactly
            // like the boxed walk's `if x <= t { left } else { right }`.
            let go_right = !(features[f as usize] <= self.threshold[i]);
            i = self.children[2 * i + usize::from(go_right)] as usize;
        }
    }

    /// Predicts a batch of row vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Adaptive batch prediction over row-major vectors: below
    /// [`TRANSPOSE_MIN_ROWS`] rows the per-row flat walk reads the row
    /// storage as given (no transpose); at or above it the rows are
    /// transposed once and the frontier walk takes over. Results are
    /// identical to [`FlatTree::predict_batch`] on either side.
    pub fn predict_batch_rows(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        if xs.len() < TRANSPOSE_MIN_ROWS {
            self.predict_batch(xs)
        } else {
            self.predict_batch_matrix(&FeatureMatrix::from_rows(xs))
        }
    }

    /// Predicts every row of a columnar matrix via the frontier walk
    /// ([`walk_batch`]): all rows descend together, each split costing
    /// one sequential pass over one feature column. Results match the
    /// per-row [`FlatTree::predict`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `m.n_features() != n_features`.
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<usize> {
        assert_eq!(m.n_features(), self.n_features, "feature matrix has wrong arity");
        let mut out = vec![0usize; m.n_rows()];
        walk_batch(&self.feature, &self.threshold, &self.children, m, None, |i, rows| {
            let class = self.children[2 * i] as usize;
            for &r in rows {
                out[r as usize] = class;
            }
        });
        out
    }

    /// [`FlatTree::predict_batch_matrix`] pinned to the scalar (branchy)
    /// partition — the kernel bench baseline. Bit-identical output.
    #[doc(hidden)]
    pub fn predict_batch_matrix_scalar(&self, m: &FeatureMatrix) -> Vec<usize> {
        assert_eq!(m.n_features(), self.n_features, "feature matrix has wrong arity");
        let mut out = vec![0usize; m.n_rows()];
        walk_batch_scalar(&self.feature, &self.threshold, &self.children, m, None, |i, rows| {
            let class = self.children[2 * i] as usize;
            for &r in rows {
                out[r as usize] = class;
            }
        });
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Serializes to the same compact `MSDT` format as
    /// [`DecisionTree::to_bytes`] — the two forms are byte-compatible.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nodes: Vec<Node> = (0..self.feature.len()).map(|i| self.node(i)).collect();
        encode_nodes(&nodes, self.n_features, self.n_classes)
    }

    /// Deserializes an `MSDT` blob (from either tree form).
    ///
    /// # Errors
    ///
    /// Returns a [`ModelDecodeError`] pinpointing the first structural
    /// problem.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ModelDecodeError> {
        let (nodes, n_features, n_classes) = decode_nodes(data)?;
        let mut flat = FlatTree {
            feature: Vec::with_capacity(nodes.len()),
            threshold: Vec::with_capacity(nodes.len()),
            children: Vec::with_capacity(2 * nodes.len()),
            n_features,
            n_classes,
        };
        for n in &nodes {
            flat.push_node(n);
        }
        Ok(flat)
    }
}

/// A regression tree flattened for inference; leaves keep the predicted
/// value in the `threshold` slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatRegressionTree {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    children: Vec<u32>,
    n_features: usize,
}

impl FlatRegressionTree {
    /// Flattens a fitted regression tree. Predictions are bit-identical
    /// to the source tree's.
    pub fn from_tree(tree: &RegressionTree) -> Self {
        let nodes = tree.nodes();
        let mut feature = Vec::with_capacity(nodes.len());
        let mut threshold = Vec::with_capacity(nodes.len());
        let mut children = Vec::with_capacity(2 * nodes.len());
        for n in nodes {
            match *n {
                crate::regression::RNode::Split { feature: f, threshold: t, left, right } => {
                    feature.push(f);
                    threshold.push(t);
                    children.push(left);
                    children.push(right);
                }
                crate::regression::RNode::Leaf { value } => {
                    feature.push(LEAF);
                    threshold.push(value);
                    children.push(0);
                    children.push(0);
                }
            }
        }
        FlatRegressionTree { feature, threshold, children, n_features: tree.n_features() }
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            let go_right = !(features[f as usize] <= self.threshold[i]);
            i = self.children[2 * i + usize::from(go_right)] as usize;
        }
    }

    /// [`FlatRegressionTree::predict`] against an *unprojected* feature
    /// vector: node feature `f` reads `features[map[f]]`. Walking with
    /// the indirection is bit-identical to projecting `features` through
    /// `map` first — same comparisons against the same values — but
    /// touches only the ≤ depth features the path visits instead of
    /// copying the whole projection per tree.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != n_features` (the projected arity the
    /// tree was fit on).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn predict_mapped(&self, features: &[f64], map: &[usize]) -> f64 {
        assert_eq!(map.len(), self.n_features, "feature map has wrong arity");
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.threshold[i];
            }
            let go_right = !(features[map[f as usize]] <= self.threshold[i]);
            i = self.children[2 * i + usize::from(go_right)] as usize;
        }
    }

    /// Predicts a batch of row vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Adaptive batch prediction over row-major vectors — per-row walk
    /// below [`TRANSPOSE_MIN_ROWS`], transpose + frontier walk at or
    /// above it. Bit-identical to [`FlatRegressionTree::predict_batch`].
    pub fn predict_batch_rows(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if xs.len() < TRANSPOSE_MIN_ROWS {
            self.predict_batch(xs)
        } else {
            self.predict_batch_matrix(&FeatureMatrix::from_rows(xs))
        }
    }

    /// Predicts every row of a columnar matrix via the frontier walk
    /// ([`walk_batch`]); bit-identical to the per-row
    /// [`FlatRegressionTree::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `m.n_features() != n_features`.
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<f64> {
        assert_eq!(m.n_features(), self.n_features, "feature matrix has wrong arity");
        let mut out = vec![0.0f64; m.n_rows()];
        walk_batch(&self.feature, &self.threshold, &self.children, m, None, |i, rows| {
            let value = self.threshold[i];
            for &r in rows {
                out[r as usize] = value;
            }
        });
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Re-packs the tree for streaming inference against *unprojected*
    /// feature vectors of arity `raw_arity`: node records are
    /// interleaved (one cache line per visited node instead of three
    /// parallel arrays) and `map` is applied to every split's feature
    /// index at pack time, so the walk has zero per-node indirection.
    /// Predictions are bit-identical to
    /// [`FlatRegressionTree::predict_mapped`] with the same `map`.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != n_features` or `raw_arity >= u16::MAX`.
    pub fn pack_mapped(&self, map: &[usize], raw_arity: usize) -> PackedRegressionTree {
        assert_eq!(map.len(), self.n_features, "feature map has wrong arity");
        assert!(raw_arity < LEAF as usize, "raw feature arity must fit u16");
        let nodes = (0..self.feature.len())
            .map(|i| {
                let f = self.feature[i];
                PackedRNode {
                    threshold: self.threshold[i],
                    children: [self.children[2 * i], self.children[2 * i + 1]],
                    feature: if f == LEAF { LEAF } else { map[f as usize] as u16 },
                }
            })
            .collect();
        PackedRegressionTree { nodes, n_features: raw_arity }
    }
}

/// One node of a [`PackedRegressionTree`]: threshold (or leaf value),
/// both children, and the pre-mapped raw feature index in a single
/// record.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PackedRNode {
    threshold: f64,
    children: [u32; 2],
    feature: u16,
}

/// [`FlatRegressionTree`] interleaved for streaming inference (see
/// [`FlatRegressionTree::pack_mapped`]). Runtime-only — never
/// serialized; rebuild it from the flat form after loading a bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedRegressionTree {
    nodes: Vec<PackedRNode>,
    n_features: usize,
}

impl PackedRegressionTree {
    /// Predicts the target for one *unprojected* feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features` (the raw arity given at
    /// pack time).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.feature == LEAF {
                return n.threshold;
            }
            let go_right = !(features[n.feature as usize] <= n.threshold);
            i = n.children[usize::from(go_right)] as usize;
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Raw (unprojected) feature arity `predict` expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

/// A bagged forest flattened for inference: flat trees plus the per-tree
/// feature maps, voting exactly like [`RandomForest::predict`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    maps: Vec<Vec<u32>>,
    n_classes: usize,
    n_features: usize,
}

impl FlatForest {
    /// Flattens a fitted forest. Predictions are bit-identical to the
    /// source forest's.
    pub fn from_forest(forest: &RandomForest) -> Self {
        FlatForest {
            trees: forest.trees().iter().map(FlatTree::from_tree).collect(),
            maps: forest.maps().iter().map(|m| m.iter().map(|&f| f as u32).collect()).collect(),
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        }
    }

    /// Predicts by majority vote (ties break to the lower class index),
    /// replicating [`RandomForest::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut votes = vec![0usize; self.n_classes];
        let mut projected = Vec::new();
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            projected.clear();
            projected.extend(map.iter().map(|&f| features[f as usize]));
            votes[tree.predict(&projected)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, self.n_classes - i))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts a batch of row vectors.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Adaptive batch prediction over row-major vectors — per-row walk
    /// below [`TRANSPOSE_MIN_ROWS`], one shared transpose + per-tree
    /// frontier walks at or above it (a forest amortizes the transpose
    /// across its trees, so the columnar side pays off sooner the more
    /// trees there are). Identical to [`FlatForest::predict_batch`].
    pub fn predict_batch_rows(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        if xs.len() * self.trees.len().max(1) < TRANSPOSE_MIN_ROWS {
            self.predict_batch(xs)
        } else {
            self.predict_batch_matrix(&FeatureMatrix::from_rows(xs))
        }
    }

    /// Predicts every row of a columnar matrix: each tree runs the
    /// frontier walk ([`walk_batch`]) with its feature map applied on
    /// the fly, then votes are tallied per row.
    ///
    /// # Panics
    ///
    /// Panics if `m.n_features() != n_features`.
    pub fn predict_batch_matrix(&self, m: &FeatureMatrix) -> Vec<usize> {
        assert_eq!(m.n_features(), self.n_features, "feature matrix has wrong arity");
        let n = m.n_rows();
        let mut votes = vec![0usize; n * self.n_classes];
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            walk_batch(&tree.feature, &tree.threshold, &tree.children, m, Some(map), |i, rows| {
                let class = tree.children[2 * i] as usize;
                for &r in rows {
                    votes[r as usize * self.n_classes + class] += 1;
                }
            });
        }
        (0..n)
            .map(|r| {
                votes[r * self.n_classes..(r + 1) * self.n_classes]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &v)| (v, self.n_classes - i))
                    .map(|(i, _)| i)
                    .expect("at least one class")
            })
            .collect()
    }

    /// [`FlatForest::predict_batch_matrix`] pinned to the scalar
    /// (branchy) partition — the kernel bench baseline. Bit-identical
    /// output.
    #[doc(hidden)]
    pub fn predict_batch_matrix_scalar(&self, m: &FeatureMatrix) -> Vec<usize> {
        assert_eq!(m.n_features(), self.n_features, "feature matrix has wrong arity");
        let n = m.n_rows();
        let mut votes = vec![0usize; n * self.n_classes];
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            let (f, t, c) = (&tree.feature, &tree.threshold, &tree.children);
            walk_batch_scalar(f, t, c, m, Some(map), |i, rows| {
                let class = tree.children[2 * i] as usize;
                for &r in rows {
                    votes[r as usize * self.n_classes + class] += 1;
                }
            });
        }
        (0..n)
            .map(|r| {
                votes[r * self.n_classes..(r + 1) * self.n_classes]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &v)| (v, self.n_classes - i))
                    .map(|(i, _)| i)
                    .expect("at least one class")
            })
            .collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Serializes to the compact `MSFF` wire format: a 16-byte header
    /// (magic, tree count, feature count, class count), then per tree
    /// its feature map (length-prefixed `u32`s) and its `MSDT` blob
    /// (length-prefixed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"MSFF");
        out.extend_from_slice(&(self.trees.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_features as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_classes as u32).to_le_bytes());
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for &f in map {
                out.extend_from_slice(&f.to_le_bytes());
            }
            let blob = tree.to_bytes();
            out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out
    }

    /// Deserializes a forest written by [`FlatForest::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`ModelDecodeError`] pinpointing the first structural
    /// problem; tree-level failures are wrapped with the tree index and
    /// blob offset.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ModelDecodeError> {
        if data.len() < 4 || &data[0..4] != b"MSFF" {
            let mut found = [0u8; 4];
            let take = data.len().min(4);
            found[..take].copy_from_slice(&data[..take]);
            return Err(ModelDecodeError::BadMagic { expected: *b"MSFF", found });
        }
        if data.len() < 16 {
            return Err(ModelDecodeError::Truncated { expected: 16, found: data.len(), offset: 0 });
        }
        let n_trees = u32::from_le_bytes(data[4..8].try_into().expect("sliced")) as usize;
        let n_features = u32::from_le_bytes(data[8..12].try_into().expect("sliced")) as usize;
        let n_classes = u32::from_le_bytes(data[12..16].try_into().expect("sliced")) as usize;

        let mut o = 16usize;
        let need = |o: usize, bytes: usize, len: usize| -> Result<(), ModelDecodeError> {
            if o + bytes > len {
                Err(ModelDecodeError::Truncated { expected: o + bytes, found: len, offset: o })
            } else {
                Ok(())
            }
        };
        let mut trees = Vec::with_capacity(n_trees);
        let mut maps = Vec::with_capacity(n_trees);
        for t in 0..n_trees {
            need(o, 4, data.len())?;
            let map_len = u32::from_le_bytes(data[o..o + 4].try_into().expect("sliced")) as usize;
            o += 4;
            need(o, 4 * map_len, data.len())?;
            let mut map = Vec::with_capacity(map_len);
            for k in 0..map_len {
                let f =
                    u32::from_le_bytes(data[o + 4 * k..o + 4 * k + 4].try_into().expect("sliced"));
                if f as usize >= n_features {
                    return Err(ModelDecodeError::FeatureOutOfRange {
                        tree: t,
                        feature: f,
                        n_features,
                        offset: o + 4 * k,
                    });
                }
                map.push(f);
            }
            o += 4 * map_len;
            need(o, 4, data.len())?;
            let blob_len = u32::from_le_bytes(data[o..o + 4].try_into().expect("sliced")) as usize;
            o += 4;
            need(o, blob_len, data.len())?;
            let tree = FlatTree::from_bytes(&data[o..o + blob_len])
                .map_err(|e| ModelDecodeError::Tree { tree: t, offset: o, source: Box::new(e) })?;
            trees.push(tree);
            maps.push(map);
            o += blob_len;
        }
        if o != data.len() {
            return Err(ModelDecodeError::Truncated { expected: o, found: data.len(), offset: o });
        }
        Ok(FlatForest { trees, maps, n_classes, n_features })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestParams;
    use crate::regression::RegParams;
    use crate::tree::TreeParams;

    fn demo_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 17) as f64;
            let b = ((i * 7) % 23) as f64;
            let c = ((i * 3) % 5) as f64;
            x.push(vec![a, b, c]);
            y.push(usize::from(a > 8.0) + usize::from(b > 11.0));
        }
        (x, y)
    }

    #[test]
    fn flat_tree_matches_boxed_tree() {
        let (x, y) = demo_data();
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams::default());
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.node_count(), tree.node_count());
        for xi in &x {
            assert_eq!(tree.predict(xi), flat.predict(xi));
            let (bc, bp) = tree.predict_with_purity(xi);
            let (fc, fp) = flat.predict_with_purity(xi);
            assert_eq!(bc, fc);
            assert_eq!(bp, fp, "purity must be bit-identical");
        }
        let m = FeatureMatrix::from_rows(&x);
        assert_eq!(flat.predict_batch_matrix(&m), tree.predict_batch(&x));
    }

    #[test]
    fn flat_tree_bytes_are_msdt_compatible() {
        let (x, y) = demo_data();
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams::default());
        let flat = FlatTree::from_tree(&tree);
        assert_eq!(flat.to_bytes(), tree.to_bytes(), "wire formats must be byte-identical");
        let back = FlatTree::from_bytes(&tree.to_bytes()).unwrap();
        let boxed_back = DecisionTree::from_bytes(&flat.to_bytes()).unwrap();
        for xi in &x {
            assert_eq!(back.predict(xi), boxed_back.predict(xi));
        }
        assert_eq!(back.to_tree(), boxed_back);
    }

    #[test]
    fn flat_regression_matches_boxed() {
        let x: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 31) as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].mul_add(2.0, r[1])).collect();
        let tree = RegressionTree::fit(&x, &y, &RegParams::default());
        let flat = FlatRegressionTree::from_tree(&tree);
        assert_eq!(flat.node_count(), tree.node_count());
        for xi in &x {
            let a = tree.predict(xi);
            let b = flat.predict(xi);
            assert!(a.to_bits() == b.to_bits(), "regression output must be bit-identical");
        }
        let m = FeatureMatrix::from_rows(&x);
        assert_eq!(flat.predict_batch_matrix(&m), tree.predict_batch(&x));
    }

    #[test]
    fn flat_forest_matches_boxed_and_roundtrips() {
        let (x, y) = demo_data();
        let params =
            ForestParams { n_trees: 8, features_per_tree: Some(2), ..ForestParams::default() };
        let forest = RandomForest::fit(&x, &y, 3, &params);
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.n_trees(), forest.n_trees());
        let m = FeatureMatrix::from_rows(&x);
        assert_eq!(flat.predict_batch(&x), forest.predict_batch(&x));
        assert_eq!(flat.predict_batch_matrix(&m), forest.predict_batch(&x));

        let bytes = flat.to_bytes();
        let back = FlatForest::from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        assert_eq!(back.predict_batch(&x), forest.predict_batch(&x));
    }

    #[test]
    fn adaptive_batch_agrees_on_both_sides_of_the_threshold() {
        let (x, y) = demo_data();
        let tree = DecisionTree::fit(&x, &y, 3, &TreeParams::default());
        let flat = FlatTree::from_tree(&tree);
        let reg_y: Vec<f64> = x.iter().map(|r| r[0].mul_add(2.0, r[1])).collect();
        let reg =
            FlatRegressionTree::from_tree(&RegressionTree::fit(&x, &reg_y, &RegParams::default()));

        // Below the threshold: the per-row walk, no transpose.
        let small: Vec<Vec<f64>> = x.iter().take(37).cloned().collect();
        assert!(small.len() < TRANSPOSE_MIN_ROWS);
        assert_eq!(flat.predict_batch_rows(&small), tree.predict_batch(&small));
        let reg_small = reg.predict_batch_rows(&small);
        for (a, b) in reg_small.iter().zip(reg.predict_batch(&small)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(flat.predict_batch_rows(&[]).is_empty(), "empty batch must not transpose");

        // At/above the threshold: transpose + frontier walk.
        let big: Vec<Vec<f64>> = x.iter().cycle().take(TRANSPOSE_MIN_ROWS + 100).cloned().collect();
        assert_eq!(flat.predict_batch_rows(&big), tree.predict_batch(&big));
        let reg_big = reg.predict_batch_rows(&big);
        for (a, b) in reg_big.iter().zip(reg.predict_batch(&big)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn adaptive_forest_batch_amortizes_the_transpose_across_trees() {
        let (x, y) = demo_data();
        let params =
            ForestParams { n_trees: 8, features_per_tree: Some(2), ..ForestParams::default() };
        let flat = FlatForest::from_forest(&RandomForest::fit(&x, &y, 3, &params));

        // 8 trees: the columnar side engages at TRANSPOSE_MIN_ROWS / 8
        // rows; check agreement just below and just above that point.
        let cross = TRANSPOSE_MIN_ROWS / flat.n_trees();
        let below: Vec<Vec<f64>> = x.iter().cycle().take(cross - 1).cloned().collect();
        let above: Vec<Vec<f64>> = x.iter().cycle().take(cross + 1).cloned().collect();
        assert_eq!(flat.predict_batch_rows(&below), flat.predict_batch(&below));
        assert_eq!(flat.predict_batch_rows(&above), flat.predict_batch(&above));
    }

    #[test]
    fn forest_decode_errors_carry_context() {
        assert!(matches!(
            FlatForest::from_bytes(b"zzzz0000"),
            Err(ModelDecodeError::BadMagic { .. })
        ));

        let (x, y) = demo_data();
        let forest = RandomForest::fit(
            &x,
            &y,
            3,
            &ForestParams { n_trees: 2, features_per_tree: Some(2), ..ForestParams::default() },
        );
        let good = FlatForest::from_forest(&forest).to_bytes();

        // Truncation mid-stream.
        let cut = &good[..good.len() - 5];
        assert!(matches!(FlatForest::from_bytes(cut), Err(ModelDecodeError::Truncated { .. })));

        // Out-of-range feature map entry (first map entry of tree 0 at
        // offset 20).
        let mut bad_map = good.clone();
        bad_map[20..24].copy_from_slice(&999u32.to_le_bytes());
        match FlatForest::from_bytes(&bad_map) {
            Err(ModelDecodeError::FeatureOutOfRange {
                tree: 0, feature: 999, offset: 20, ..
            }) => {}
            other => panic!("expected FeatureOutOfRange, got {other:?}"),
        }

        // Corrupt the nested tree blob's magic: wrapped with tree index.
        let map_len = 2usize;
        let blob_start = 16 + 4 + 4 * map_len + 4;
        let mut bad_tree = good.clone();
        bad_tree[blob_start] = b'X';
        match FlatForest::from_bytes(&bad_tree) {
            Err(ModelDecodeError::Tree { tree: 0, source, .. }) => {
                assert!(matches!(*source, ModelDecodeError::BadMagic { .. }));
            }
            other => panic!("expected nested Tree error, got {other:?}"),
        }
    }
}
