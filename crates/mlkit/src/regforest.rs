//! Bagged regression forest — the ensemble form of
//! [`crate::regression::RegressionTree`], built for the learned
//! cycle-level surrogate executor.
//!
//! The surrogate oracle (see `misam-oracle::surrogate`) predicts
//! per-design log-latency from pair features; a single regression tree
//! overfits the corpus shape grid, so the surrogate trains one bagged
//! forest per design. Induction mirrors [`crate::forest::RandomForest`]
//! exactly: every random draw (feature subsets, bootstrap indices) is
//! sequenced **serially** from the seeded RNG before any worker starts,
//! so the fitted forest is bit-identical at any thread count.
//! Prediction averages the member trees in tree order (a fixed
//! left-to-right sum, then one divide), so inference is deterministic
//! too.

use crate::flat::FlatRegressionTree;
use crate::matrix::FeatureMatrix;
use crate::regression::{RegParams, RegressionTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters for regression-forest induction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Parameters of each member tree.
    pub tree: RegParams,
    /// Fraction of the training set bootstrapped per tree.
    pub sample_fraction: f64,
    /// Features visible to each tree (a random subset per tree; `None`
    /// uses all features).
    pub features_per_tree: Option<usize>,
    /// Seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for RegForestParams {
    fn default() -> Self {
        RegForestParams {
            n_trees: 16,
            tree: RegParams::default(),
            sample_fraction: 0.8,
            features_per_tree: None,
            seed: 0,
        }
    }
}

/// A bagged ensemble of regression trees, averaged in tree order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionForest {
    trees: Vec<RegressionTree>,
    /// Per-tree feature index maps (tree i sees `features[maps[i][j]]`
    /// as its feature j).
    maps: Vec<Vec<usize>>,
    n_features: usize,
}

/// Pre-drawn randomness for one tree; drawn serially up front so the
/// parallel fit is deterministic (same pattern as the classifier
/// forest's `TreePlan`).
struct RegTreePlan {
    map: Vec<usize>,
    boot: Vec<usize>,
}

impl RegressionForest {
    /// Fits a forest to feature rows `x` and real-valued targets `y`,
    /// growing trees in parallel (worker count from `MISAM_THREADS`,
    /// default all cores). The result is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RegressionTree::fit`], or
    /// if `n_trees == 0`, `sample_fraction` is outside `(0, 1]`, or
    /// `features_per_tree` is 0 or exceeds the feature count.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: &RegForestParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest to an empty dataset");
        Self::fit_matrix(&FeatureMatrix::from_rows(x), y, params)
    }

    /// [`RegressionForest::fit`] with an explicit worker count (1 = serial).
    pub fn fit_with_threads(
        x: &[Vec<f64>],
        y: &[f64],
        params: &RegForestParams,
        threads: usize,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest to an empty dataset");
        Self::fit_inner(&FeatureMatrix::from_rows(x), y, params, threads)
    }

    /// Fits a forest to columnar features.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RegressionForest::fit`].
    pub fn fit_matrix(m: &FeatureMatrix, y: &[f64], params: &RegForestParams) -> Self {
        Self::fit_inner(m, y, params, misam_pool::default_threads())
    }

    fn fit_inner(m: &FeatureMatrix, y: &[f64], params: &RegForestParams, threads: usize) -> Self {
        assert!(params.n_trees > 0, "forest needs at least one tree");
        assert!(
            params.sample_fraction > 0.0 && params.sample_fraction <= 1.0,
            "sample fraction must be in (0, 1]"
        );
        let n_features = m.n_features();
        if let Some(f) = params.features_per_tree {
            assert!(f > 0 && f <= n_features, "features_per_tree out of range");
        }

        // Sequence every random draw serially, in the exact order a
        // serial loop would consume the RNG stream: per tree, the
        // feature subset first, then the bootstrap indices. The salt
        // differs from the classifier forest's so the two ensembles
        // never share bootstrap streams even at equal seeds.
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5e_66e57);
        let n_boot = ((m.n_rows() as f64 * params.sample_fraction).round() as usize).max(1);
        let plans: Vec<RegTreePlan> = (0..params.n_trees)
            .map(|_| {
                let map: Vec<usize> = match params.features_per_tree {
                    Some(k) => {
                        let mut all: Vec<usize> = (0..n_features).collect();
                        for i in 0..k {
                            let j = rng.gen_range(i..n_features);
                            all.swap(i, j);
                        }
                        all.truncate(k);
                        all
                    }
                    None => (0..n_features).collect(),
                };
                let boot: Vec<usize> = (0..n_boot).map(|_| rng.gen_range(0..m.n_rows())).collect();
                RegTreePlan { map, boot }
            })
            .collect();

        // Same parallel-crossover policy as the classifier forest:
        // clamp to the hardware, serial below the per-tree cell count
        // where scoped spawns stop paying for themselves.
        const MIN_PARALLEL_CELLS: usize = 1 << 14;
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let per_tree = n_boot * params.features_per_tree.unwrap_or(n_features);
        let threads = if per_tree < MIN_PARALLEL_CELLS { 1 } else { threads.min(cores) };

        let trees = misam_pool::par_map_with(&plans, threads, |plan| {
            let sub = m.gather_project(&plan.boot, Some(&plan.map));
            let ys: Vec<f64> = plan.boot.iter().map(|&i| y[i]).collect();
            RegressionTree::fit_matrix(&sub, &ys, &params.tree)
        });
        let maps = plans.into_iter().map(|p| p.map).collect();
        RegressionForest { trees, maps, n_features }
    }

    /// Predicts by averaging the member trees in tree order.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut sum = 0.0;
        let mut projected = Vec::new();
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            projected.clear();
            projected.extend(map.iter().map(|&f| features[f]));
            sum += tree.predict(&projected);
        }
        sum / self.trees.len() as f64
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|f| self.predict(f)).collect()
    }

    /// Flattens every member tree into the branch-light inference form.
    /// Predictions through the flat form are bit-identical to
    /// [`RegressionForest::predict`].
    pub fn flatten(&self) -> FlatRegressionForest {
        FlatRegressionForest {
            trees: self.trees.iter().map(FlatRegressionTree::from_tree).collect(),
            maps: self.maps.clone(),
            n_features: self.n_features,
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total node count across all trees (footprint proxy).
    pub fn node_count(&self) -> usize {
        self.trees.iter().map(RegressionTree::node_count).sum()
    }
}

/// Flattened inference form of [`RegressionForest`]: every member tree
/// as a [`FlatRegressionTree`], walked in tree order with the same
/// left-to-right sum, so predictions are bit-identical to the boxed
/// forest's. [`FlatRegressionForest::pack`] turns it into the
/// interleaved form the surrogate oracle keeps hot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatRegressionForest {
    trees: Vec<FlatRegressionTree>,
    maps: Vec<Vec<usize>>,
    n_features: usize,
}

impl FlatRegressionForest {
    /// Predicts by averaging the member trees in tree order.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut sum = 0.0;
        for (tree, map) in self.trees.iter().zip(&self.maps) {
            // Walk with the map indirection instead of materialising the
            // projection: bit-identical (same comparisons, same tree
            // order) but allocation-free — this is the surrogate
            // oracle's per-pair hot path.
            sum += tree.predict_mapped(features, map);
        }
        sum / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Re-packs every member tree for streaming inference: interleaved
    /// node records with the per-tree feature maps baked in (see
    /// [`FlatRegressionTree::pack_mapped`]). Predictions through the
    /// packed form are bit-identical to
    /// [`FlatRegressionForest::predict`].
    pub fn pack(&self) -> PackedRegressionForest {
        PackedRegressionForest {
            trees: self
                .trees
                .iter()
                .zip(&self.maps)
                .map(|(t, m)| t.pack_mapped(m, self.n_features))
                .collect(),
            n_features: self.n_features,
        }
    }
}

/// [`FlatRegressionForest`] re-packed for streaming inference — the
/// form the surrogate oracle walks per query. Runtime-only, never
/// serialized: rebuild via [`FlatRegressionForest::pack`] after loading
/// a bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedRegressionForest {
    trees: Vec<crate::flat::PackedRegressionTree>,
    n_features: usize,
}

impl PackedRegressionForest {
    /// Predicts by averaging the member trees in tree order —
    /// bit-identical to [`FlatRegressionForest::predict`] (same trees,
    /// same left-to-right sum).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training arity.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature vector has wrong arity");
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.predict(features);
        }
        sum / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_curve(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..1.0)).collect();
            let target = 3.0 * f[0] + f[1] * f[1] + 0.05 * rng.gen_range(-1.0..1.0);
            x.push(f);
            y.push(target);
        }
        (x, y)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (x, y) = noisy_curve(400, 1);
        let forest = RegressionForest::fit(&x, &y, &RegForestParams::default());
        let mae = x.iter().zip(&y).map(|(xi, yi)| (forest.predict(xi) - yi).abs()).sum::<f64>()
            / x.len() as f64;
        assert!(mae < 0.25, "train MAE {mae:.3}");
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (x, y) = noisy_curve(150, 2);
        let a = RegressionForest::fit(&x, &y, &RegForestParams { seed: 9, ..Default::default() });
        let b = RegressionForest::fit(&x, &y, &RegForestParams { seed: 9, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_forest() {
        let (x, y) = noisy_curve(200, 3);
        let params = RegForestParams { n_trees: 10, seed: 3, ..Default::default() };
        let serial = RegressionForest::fit_with_threads(&x, &y, &params, 1);
        let parallel = RegressionForest::fit_with_threads(&x, &y, &params, 4);
        assert_eq!(serial, parallel);
        // And inference through either form agrees to the bit.
        let flat = serial.flatten();
        for xi in x.iter().take(32) {
            assert_eq!(serial.predict(xi).to_bits(), flat.predict(xi).to_bits());
        }
    }

    #[test]
    fn packed_form_is_bit_identical_including_feature_subsets() {
        let (x, y) = noisy_curve(250, 7);
        for features_per_tree in [None, Some(2), Some(5)] {
            let params =
                RegForestParams { n_trees: 6, features_per_tree, seed: 7, ..Default::default() };
            let forest = RegressionForest::fit(&x, &y, &params);
            let flat = forest.flatten();
            let packed = flat.pack();
            assert_eq!(packed.n_trees(), 6);
            assert_eq!(packed.n_features(), forest.n_features());
            for xi in x.iter().take(64) {
                let reference = forest.predict(xi).to_bits();
                assert_eq!(reference, flat.predict(xi).to_bits());
                assert_eq!(reference, packed.predict(xi).to_bits());
            }
        }
    }

    #[test]
    fn feature_subsampling_restricts_visibility() {
        let (x, y) = noisy_curve(300, 4);
        let forest = RegressionForest::fit(
            &x,
            &y,
            &RegForestParams { n_trees: 8, features_per_tree: Some(2), ..Default::default() },
        );
        let _ = forest.predict(&x[0]);
        assert_eq!(forest.n_trees(), 8);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let (x, y) = noisy_curve(120, 5);
        let forest =
            RegressionForest::fit(&x, &y, &RegForestParams { n_trees: 6, ..Default::default() });
        let json = serde_json::to_string(&forest).unwrap();
        let back: RegressionForest = serde_json::from_str(&json).unwrap();
        assert_eq!(forest, back);
        assert_eq!(forest.predict(&x[0]).to_bits(), back.predict(&x[0]).to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        RegressionForest::fit(
            &[vec![1.0]],
            &[0.5],
            &RegForestParams { n_trees: 0, ..Default::default() },
        );
    }
}
