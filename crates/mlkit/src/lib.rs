//! Machine-learning toolkit for Misam: decision trees and evaluation
//! utilities, implemented from scratch.
//!
//! The paper deliberately avoids heavyweight inference stacks ("instead of
//! using a Python inference library … we implemented a custom inference
//! function", §5.5); this crate is that custom implementation. It
//! provides:
//!
//! - [`tree::DecisionTree`] — a CART classifier with gini impurity,
//!   inverse-frequency class weighting (§3.1's imbalance mitigation),
//!   depth/leaf-size/gain pruning, gini feature importance, and a compact
//!   flat-array representation whose serialized size realises the paper's
//!   6 KB model footprint.
//! - [`regression::RegressionTree`] — a variance-reduction regression
//!   tree, the latency predictor inside the reconfiguration engine
//!   (§3.3, Figure 9).
//! - [`forest::RandomForest`] — the bagged-ensemble counterfactual, used
//!   by the model-ablation experiment to measure what the single-tree
//!   choice trades away.
//! - [`regforest::RegressionForest`] — the bagged regression ensemble
//!   behind the learned cycle-level surrogate oracle (per-design
//!   log-latency prediction, deterministic at any thread count).
//! - [`metrics`] — accuracy, confusion matrices, MAE, R², geometric
//!   means and class weights.
//! - [`cv`] — seeded train/validation splits and k-fold cross-validation
//!   (the paper's 70/30 split and 10-fold protocol), serial or parallel.
//! - [`matrix::FeatureMatrix`] — columnar (structure-of-arrays) feature
//!   storage shared by every training path; induction is sort-once over
//!   pre-argsorted per-feature index rows instead of re-sorting at every
//!   node.
//! - [`flat`] — flattened SoA inference forms ([`flat::FlatTree`],
//!   [`flat::FlatForest`], [`flat::FlatRegressionTree`]) with
//!   branch-light traversal, byte-compatible with the boxed trees'
//!   compact serialization; what `misam-serve` runs on its flush path.
//! - [`error::ModelDecodeError`] — typed decode failures with byte
//!   offsets for every compact wire format.
//! - [`reference`] — the original per-node-sorting induction algorithms,
//!   kept verbatim for equivalence tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use misam_mlkit::tree::{DecisionTree, TreeParams};
//!
//! // XOR-ish toy problem.
//! let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let y = vec![0, 1, 1, 0];
//! let tree = DecisionTree::fit(&x, &y, 2, &TreeParams::default());
//! assert_eq!(tree.predict(&[1.0, 0.0]), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cv;
pub mod error;
pub mod flat;
pub mod forest;
pub mod matrix;
pub mod metrics;
pub mod reference;
pub mod regforest;
pub mod regression;
pub mod simd;
pub mod tree;
