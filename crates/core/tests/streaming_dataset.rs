//! End-to-end invariants of the streaming corpus pipeline.
//!
//! These live in their own test binary (own process) because they
//! observe the process-global materialization counters of
//! `misam_sparse::lazy`, which the crate's unit tests — many of which
//! materialize CSRs on purpose — would perturb.

use misam::dataset::Dataset;
use misam_sparse::lazy;

#[test]
fn streaming_generation_never_materializes_and_is_thread_invariant() {
    let before = lazy::materialization_stats();
    let serial = Dataset::generate_with_threads(30, 4242, 1);
    let after = lazy::materialization_stats();
    assert_eq!(
        before.materialized, after.materialized,
        "labeling-only generation must not materialize any CSR"
    );

    // The per-index seed discipline makes every sample a pure function
    // of (seed, index), so any worker count yields the same corpus.
    for threads in [2, 5, 8] {
        assert_eq!(serial, Dataset::generate_with_threads(30, 4242, threads));
    }
}
