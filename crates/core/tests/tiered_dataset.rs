//! End-to-end invariants of tiered (surrogate-gated) corpus labeling.
//!
//! The tiered oracle must be a drop-in labeler: byte-identical output
//! at any worker count, and byte-identical to the sim-only path when no
//! bundle is installed. Own binary so the private oracles here never
//! share caches with other tests.

use misam::dataset::Dataset;
use misam::training;
use misam_oracle::{RegForestParams, SurrogateTrainParams, TieredOracle};
use std::sync::Arc;

#[test]
fn tiered_generation_is_thread_invariant_and_degrades_to_sim() {
    // No bundle installed: the tiered labeler must reproduce the
    // sim-only corpus bit for bit (fallback on every pair).
    let sim_only = Dataset::generate_with_threads(24, 7331, 1);
    let bare = TieredOracle::new();
    assert_eq!(sim_only, Dataset::generate_with_threads_via(24, 7331, 1, &bare));
    let stats = bare.stats();
    assert_eq!(stats.surrogate_pairs, 0);
    assert_eq!(stats.fallback_pairs, 0, "no-model pairs are unmodeled, not fallbacks");
    assert_eq!(stats.unmodeled_pairs, 24);

    // With a trained bundle the corpus is a pure function of
    // (seed, index) — the per-pair gate decision depends only on the
    // pair, never on worker interleaving.
    let base = Dataset::generate_with_threads(60, 9001, 1);
    let params = SurrogateTrainParams {
        forest: RegForestParams { n_trees: 4, ..Default::default() },
        ..Default::default()
    };
    let model = Arc::new(training::train_surrogate(&base, &params).into_model());

    let label = |threads: usize| {
        let tiered = TieredOracle::new();
        tiered.install(model.clone());
        Dataset::generate_with_threads_via(24, 7331, threads, &tiered)
    };
    let serial = label(1);
    for threads in [2, 5, 8] {
        assert_eq!(serial, label(threads), "threads={threads}");
    }
}
