//! Ablations of the design choices the paper (and DESIGN.md) call out:
//! feature pruning (§5.5's four-feature deployed model), the
//! single-tree-vs-ensemble choice (§3.1), the reconfiguration threshold
//! (§3.3), reconfiguration-cost regimes (§6.1's partial-reconfig and
//! CGRA directions), and the simulator mechanisms that create each
//! design's niche.

use crate::dataset::{self, Dataset, Objective};
use crate::training::{self};
use misam_features::{feature_index, TileConfig, FEATURE_NAMES};
use misam_mlkit::cv;
use misam_mlkit::forest::{ForestParams, RandomForest};
use misam_mlkit::metrics;
use misam_oracle::{pool, CustomFpga, Executor};
use misam_recon::cost::ReconfigCost;
use misam_recon::engine::ReconfigEngine;
use misam_recon::stream::{self, StreamConfig};
use misam_sim::{DesignConfig, DesignId, Operand};
use misam_sparse::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

// ------------------------------------------------------------------
// Feature pruning (§5.5).
// ------------------------------------------------------------------

/// Accuracy/footprint of a selector trained on the top-`k` features.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturePruningRow {
    /// Number of features kept.
    pub k: usize,
    /// The kept feature names, importance-ranked.
    pub names: Vec<&'static str>,
    /// Held-out accuracy.
    pub accuracy: f64,
    /// Compact model bytes.
    pub model_bytes: usize,
}

/// Trains selectors on progressively pruned feature sets (ranked by a
/// full-model importance pass), reproducing the paper's claim that the
/// top four features carry the accuracy.
pub fn feature_pruning(dataset: &Dataset, seed: u64) -> Vec<FeaturePruningRow> {
    let full = training::train_selector(dataset, Objective::Latency, seed);
    let ranked: Vec<usize> =
        full.selector.ranked_importances().iter().map(|(n, _)| feature_index(n)).collect();

    [1usize, 2, 4, 8, FEATURE_NAMES.len()]
        .iter()
        .map(|&k| {
            let subset: Vec<usize> = ranked.iter().take(k).copied().collect();
            let t = if k == FEATURE_NAMES.len() {
                training::train_selector(dataset, Objective::Latency, seed)
            } else {
                training::train_selector_on_features(dataset, Objective::Latency, seed, &subset)
            };
            FeaturePruningRow {
                k,
                names: t.selector.feature_names(),
                accuracy: t.accuracy,
                model_bytes: t.model_bytes,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Tree vs forest (§3.1's footprint argument).
// ------------------------------------------------------------------

/// Measured comparison of the deployed single tree against a bagged
/// forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// Held-out accuracy of the single tree.
    pub tree_accuracy: f64,
    /// Compact bytes of the single tree.
    pub tree_bytes: usize,
    /// Mean wall nanoseconds per single-tree prediction.
    pub tree_ns_per_inference: f64,
    /// Held-out accuracy of the forest.
    pub forest_accuracy: f64,
    /// Compact bytes of the forest.
    pub forest_bytes: usize,
    /// Mean wall nanoseconds per forest prediction.
    pub forest_ns_per_inference: f64,
}

/// Trains both models on the same split and measures accuracy, footprint
/// and inference latency — the §3.1 trade the paper asserts.
pub fn model_choice(dataset: &Dataset, seed: u64) -> ModelComparison {
    let m = misam_mlkit::matrix::FeatureMatrix::from_rows(&dataset.features());
    let y = dataset.labels(Objective::Latency);
    let split = cv::train_test_split(m.n_rows(), 0.7, seed);
    let xt = m.gather(&split.train);
    let yt = cv::gather(&y, &split.train);
    let xv = m.gather(&split.validation);
    let yv = cv::gather(&y, &split.validation);

    let tree_params = training::selector_params(&yt);
    let tree = misam_mlkit::tree::DecisionTree::fit_matrix(&xt, &yt, 4, &tree_params);
    let forest = RandomForest::fit_matrix(
        &xt,
        &yt,
        4,
        &ForestParams { n_trees: 25, tree: tree_params, seed, ..Default::default() },
    );

    let tree_accuracy = metrics::accuracy(&tree.predict_batch_matrix(&xv), &yv);
    let forest_accuracy = metrics::accuracy(&forest.predict_batch_matrix(&xv), &yv);

    // Per-inference timing exercises the row-vector entry points the
    // serving layer uses.
    let probe: Vec<Vec<f64>> = (0..xv.n_rows()).map(|r| xv.row(r)).collect();
    let time_per = |f: &dyn Fn(&[f64]) -> usize| {
        let reps = 2000usize;
        let t0 = Instant::now();
        let mut acc = 0usize;
        for i in 0..reps {
            acc += f(&probe[i % probe.len()]);
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as f64 / reps as f64
    };
    let tree_ns = time_per(&|v| tree.predict(v));
    let forest_ns = time_per(&|v| forest.predict(v));

    ModelComparison {
        tree_accuracy,
        tree_bytes: tree.serialized_size(),
        tree_ns_per_inference: tree_ns,
        forest_accuracy,
        forest_bytes: forest.serialized_size(),
        forest_ns_per_inference: forest_ns,
    }
}

// ------------------------------------------------------------------
// Reconfiguration threshold and cost regimes (§3.3, §6.1).
// ------------------------------------------------------------------

/// Outcome of one engine policy on the reference workload stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Policy label (threshold value or cost-regime name).
    pub label: String,
    /// Reconfigurations performed across the stream.
    pub reconfig_count: usize,
    /// End-to-end seconds (execution + switching).
    pub total_time_s: f64,
    /// Ratio to the free-switching oracle's execution time.
    pub vs_oracle: f64,
}

/// A compact stream of alternating workload characters used by the
/// policy sweeps: dense-B phases (SpMM designs) interleaved with
/// sparse-B phases (Design 4), so a well-tuned engine must switch a few
/// times and a trigger-happy one thrashes.
struct PolicyStream {
    a: Vec<misam_sparse::CsrMatrix>,
    b_sparse: Vec<Option<misam_sparse::CsrMatrix>>,
}

fn policy_stream(rows: usize, seed: u64) -> PolicyStream {
    let mut a = Vec::new();
    let mut b_sparse = Vec::new();
    for i in 0..6u64 {
        let m = gen::regular_degree(rows, rows, 8, seed ^ (i * 7 + 1));
        if i % 2 == 0 {
            b_sparse.push(None);
        } else {
            b_sparse.push(Some(gen::regular_degree(rows, rows, 8, seed ^ (i * 7 + 2))));
        }
        a.push(m);
    }
    PolicyStream { a, b_sparse }
}

fn run_policy<L: misam_recon::engine::LatencyModel>(
    stream_data: &PolicyStream,
    engine: &mut ReconfigEngine<L>,
    tile_rows: (usize, usize),
    seed: u64,
) -> (usize, f64) {
    let cfg = StreamConfig {
        tile_min_rows: tile_rows.0,
        tile_max_rows: tile_rows.1,
        seed,
        features: TileConfig::default(),
    };
    let mut total = 0.0;
    let mut count = 0usize;
    for (a, b) in stream_data.a.iter().zip(&stream_data.b_sparse) {
        let op = match b {
            Some(bm) => Operand::Sparse(bm),
            None => Operand::Dense { rows: a.cols(), cols: 512 },
        };
        let before = engine.reconfig_count();
        let out = stream::run(a, op, &cfg, misam_oracle::global(), engine, |f| {
            // Selector assumed ideal here; the sweep isolates the engine.
            if f.b.sparsity > 0.5 {
                DesignId::D4
            } else {
                DesignId::D2
            }
        });
        total += out.total_time_s();
        count += (engine.reconfig_count() - before) as usize;
    }
    (count, total)
}

/// Sweeps the switch threshold (paper default 0.2) over the reference
/// stream with the real U55C cost model. The engine uses the analytic
/// latency model so the sweep isolates the *policy*, not predictor
/// coverage.
pub fn threshold_sweep(rows: usize, seed: u64, thresholds: &[f64]) -> Vec<PolicyOutcome> {
    let stream_data = policy_stream(rows, seed);
    let tiles = ((rows / 8).max(500), (rows / 3).max(1000));

    // Free-switching oracle reference.
    let mut oracle =
        ReconfigEngine::new(misam_recon::engine::AnalyticLatencyModel, ReconfigCost::zero(), 0.2);
    oracle.force_load(DesignId::D2);
    let (_, oracle_time) = run_policy(&stream_data, &mut oracle, tiles, seed);

    thresholds
        .iter()
        .map(|&th| {
            let mut engine = ReconfigEngine::new(
                misam_recon::engine::AnalyticLatencyModel,
                ReconfigCost::default(),
                th,
            );
            engine.force_load(DesignId::D2);
            let (count, total) = run_policy(&stream_data, &mut engine, tiles, seed);
            PolicyOutcome {
                label: format!("threshold {th}"),
                reconfig_count: count,
                total_time_s: total,
                vs_oracle: total / oracle_time,
            }
        })
        .collect()
}

/// Compares reconfiguration-cost regimes at the paper's default
/// threshold: the measured U55C full cost, a small partial-reconfig
/// region, a CGRA-class microsecond switch, and free switching (§6.1).
pub fn cost_regimes(rows: usize, seed: u64) -> Vec<PolicyOutcome> {
    let stream_data = policy_stream(rows, seed);
    let tiles = ((rows / 8).max(500), (rows / 3).max(1000));

    let mut oracle =
        ReconfigEngine::new(misam_recon::engine::AnalyticLatencyModel, ReconfigCost::zero(), 0.2);
    oracle.force_load(DesignId::D2);
    let (_, oracle_time) = run_policy(&stream_data, &mut oracle, tiles, seed);

    let regimes: Vec<(String, ReconfigCost)> = vec![
        ("u55c full (3-4 s)".into(), ReconfigCost::default()),
        (
            "partial region (~0.2 s)".into(),
            ReconfigCost {
                program_base_s: 0.05,
                program_per_mib_s: 0.002,
                ..ReconfigCost::default()
            },
        ),
        (
            "cgra-class (~1 ms)".into(),
            ReconfigCost {
                program_base_s: 1e-3,
                program_per_mib_s: 0.0,
                ..ReconfigCost::default()
            },
        ),
        ("free".into(), ReconfigCost::zero()),
    ];

    regimes
        .into_iter()
        .map(|(label, cost)| {
            let mut engine =
                ReconfigEngine::new(misam_recon::engine::AnalyticLatencyModel, cost, 0.2);
            engine.force_load(DesignId::D2);
            let (count, total) = run_policy(&stream_data, &mut engine, tiles, seed);
            PolicyOutcome {
                label,
                reconfig_count: count,
                total_time_s: total,
                vs_oracle: total / oracle_time,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Objective sweep (§3.1's tunable decision-making).
// ------------------------------------------------------------------

/// One point of the latency/energy objective sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveRow {
    /// Latency weight `w` of `Objective::Weighted(w)`.
    pub latency_weight: f64,
    /// Label histogram under this objective.
    pub histogram: [usize; 4],
    /// Selector accuracy trained and validated under this objective.
    pub accuracy: f64,
    /// Geomean time cost vs the pure-latency oracle (>= 1).
    pub time_cost: f64,
    /// Geomean energy saving vs the pure-latency oracle (>= 1).
    pub energy_saving: f64,
}

/// Sweeps the latency/energy blend of §3.1: "a user may choose to
/// optimize exclusively for performance, prioritize energy efficiency,
/// or apply a weighted combination". Reports how labels, selector
/// accuracy and the latency-vs-energy trade move with the weight.
pub fn objective_sweep(dataset: &Dataset, seed: u64, weights: &[f64]) -> Vec<ObjectiveRow> {
    weights
        .iter()
        .map(|&w| {
            let objective = Objective::Weighted(w);
            let histogram = dataset.label_histogram(objective);
            let t = training::train_selector(dataset, objective, seed);
            let mut time_ratio = Vec::new();
            let mut energy_ratio = Vec::new();
            for s in &dataset.samples {
                let lat = s.label(Objective::Latency);
                let lab = s.label(objective);
                time_ratio.push(s.times_s[lab] / s.times_s[lat]);
                energy_ratio.push(s.energies_j[lat] / s.energies_j[lab]);
            }
            ObjectiveRow {
                latency_weight: w,
                histogram,
                accuracy: t.accuracy,
                time_cost: metrics::geomean(&time_ratio),
                energy_saving: metrics::geomean(&energy_ratio),
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Simulator-mechanism sensitivity.
// ------------------------------------------------------------------

/// Label histogram of a corpus under a modified simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismRow {
    /// Variant label.
    pub label: String,
    /// Optimal-design histogram (D1..D4).
    pub histogram: [usize; 4],
}

/// Re-labels a corpus of random pairs under modified design configs to
/// show which microarchitectural mechanism creates each design's niche:
/// removing the load/store dependency, neutralizing Design 4's gather
/// penalty, and removing the PEG-scaled launch overhead.
pub fn simulator_mechanisms(n: usize, seed: u64) -> Vec<MechanismRow> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00ab_1a7e);
    let pairs: Vec<(misam_sparse::CsrMatrix, dataset::OperandSpec)> = (0..n)
        .map(|_| {
            let (a, spec, _) = dataset::random_pair(&mut rng);
            (a, spec)
        })
        .collect();

    type Variant = (String, Box<dyn Fn(DesignId) -> DesignConfig>);
    let variants: Vec<Variant> = vec![
        ("baseline".into(), Box::new(DesignConfig::of)),
        (
            "no load/store dependency".into(),
            Box::new(|d| DesignConfig { dep_distance: 0, ..DesignConfig::of(d) }),
        ),
        (
            "no gather penalty (D4)".into(),
            Box::new(|d| DesignConfig {
                gather_factor: 1.0,
                meta_lookup: 0,
                ..DesignConfig::of(d)
            }),
        ),
        (
            "uniform tile sizes".into(),
            Box::new(|d| DesignConfig { bram_entries: 4096, ..DesignConfig::of(d) }),
        ),
    ];

    variants
        .into_iter()
        .map(|(label, mk)| {
            // One knocked-out design space per variant, fanned out over
            // the pair corpus through the Executor abstraction.
            let executor = CustomFpga::new(DesignId::ALL.iter().map(|&d| mk(d)).collect());
            let winners = pool::par_map(&pairs, |(a, spec)| {
                executor
                    .execute_all(a, spec.operand())
                    .iter()
                    .enumerate()
                    .min_by(|x, y| x.1.time_s.partial_cmp(&y.1.time_s).expect("finite"))
                    .expect("four designs")
                    .0
            });
            let mut histogram = [0usize; 4];
            for w in winners {
                histogram[w] += 1;
            }
            MechanismRow { label, histogram }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> &'static Dataset {
        static C: std::sync::OnceLock<Dataset> = std::sync::OnceLock::new();
        C.get_or_init(|| Dataset::generate(300, 808))
    }

    #[test]
    fn four_features_carry_most_of_the_accuracy() {
        let rows = feature_pruning(corpus(), 1);
        let full = rows.last().unwrap();
        let four = rows.iter().find(|r| r.k == 4).unwrap();
        assert!(
            four.accuracy > full.accuracy - 0.08,
            "top-4 accuracy {:.2} vs full {:.2}",
            four.accuracy,
            full.accuracy
        );
        let one = rows.iter().find(|r| r.k == 1).unwrap();
        assert!(one.accuracy <= four.accuracy + 0.05, "one feature should not beat four");
    }

    #[test]
    fn forest_costs_far_more_footprint_for_marginal_accuracy() {
        let m = model_choice(corpus(), 2);
        assert!(m.forest_bytes > 5 * m.tree_bytes);
        assert!(m.tree_accuracy > 0.6);
        // The paper's claim: a single tree is the right trade.
        assert!(
            m.forest_accuracy - m.tree_accuracy < 0.15,
            "tree {:.2} vs forest {:.2}",
            m.tree_accuracy,
            m.forest_accuracy
        );
    }

    #[test]
    fn stricter_thresholds_switch_less() {
        // Small matrices: only very permissive thresholds can justify a
        // multi-second switch, so the sweep must be monotone and end
        // with at least one switch.
        let rows = 20_000;
        let out = threshold_sweep(rows, 3, &[0.2, 50.0, 2000.0]);
        assert_eq!(out.len(), 3);
        for w in out.windows(2) {
            assert!(
                w[0].reconfig_count <= w[1].reconfig_count,
                "looser thresholds must switch at least as often: {w:?}"
            );
        }
        assert!(
            out.last().unwrap().reconfig_count > 0,
            "an effectively unconstrained threshold must switch: {out:?}"
        );
    }

    #[test]
    fn cheaper_reconfiguration_enables_more_switching() {
        let out = cost_regimes(20_000, 4);
        assert_eq!(out.len(), 4);
        let full = &out[0];
        let free = &out[3];
        assert!(free.reconfig_count >= full.reconfig_count);
        // Free switching is the oracle by construction.
        assert!((free.vs_oracle - 1.0).abs() < 1e-9);
        for o in &out {
            assert!(o.vs_oracle >= 1.0 - 1e-9, "{}: {:.3}", o.label, o.vs_oracle);
        }
    }

    #[test]
    fn objective_sweep_trades_time_for_energy_monotonically() {
        let rows = objective_sweep(corpus(), 6, &[0.0, 0.5, 1.0]);
        assert_eq!(rows.len(), 3);
        // Pure latency: no time cost, no energy saving by construction.
        let pure = rows.last().unwrap();
        assert!((pure.time_cost - 1.0).abs() < 1e-9);
        assert!((pure.energy_saving - 1.0).abs() < 1e-9);
        // Moving weight toward energy can only increase both the time
        // cost and the energy saving.
        for w in rows.windows(2) {
            assert!(w[0].time_cost >= w[1].time_cost - 1e-9);
            assert!(w[0].energy_saving >= w[1].energy_saving - 1e-9);
        }
        for r in &rows {
            assert_eq!(r.histogram.iter().sum::<usize>(), corpus().len());
            assert!(r.accuracy > 0.5);
        }
    }

    #[test]
    fn gather_penalty_creates_design4_boundary() {
        let rows = simulator_mechanisms(120, 5);
        let base = &rows[0];
        let no_gather = rows.iter().find(|r| r.label.contains("gather")).unwrap();
        // Without the compressed-format gather penalty, Design 4 absorbs
        // strictly more of the label space.
        assert!(
            no_gather.histogram[3] > base.histogram[3],
            "baseline {:?} vs no-gather {:?}",
            base.histogram,
            no_gather.histogram
        );
        // Each variant labels every pair.
        for r in &rows {
            assert_eq!(r.histogram.iter().sum::<usize>(), 120);
        }
    }
}
