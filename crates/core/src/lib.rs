//! # Misam — ML-assisted dataflow selection for sparse matrix
//! multiplication accelerators
//!
//! A reproduction of *"Misam: Machine Learning Assisted Dataflow Selection
//! in Accelerators for Sparse Matrix Multiplication"* (MICRO 2025). Misam
//! pairs a lightweight decision-tree classifier that predicts the best
//! hardware design for an operand pair with an intelligent reconfiguration
//! engine that switches FPGA bitstreams only when the projected gain
//! justifies the multi-second switch cost.
//!
//! This crate is the framework facade tying the substrates together:
//!
//! - [`dataset`] — synthetic training corpora: operand pairs simulated on
//!   all four designs, labeled with the objective-optimal design;
//! - [`training`] — fits the design selector (decision tree) and the
//!   latency predictor (regression tree) and evaluates them;
//! - [`pipeline`] — the end-to-end [`pipeline::Misam`] system: extract
//!   features → predict design → reconfiguration decision → execute, with
//!   the preprocessing/inference timing hooks behind the paper's
//!   Figure 12;
//! - [`workloads`] — the 113-workload evaluation suite (15 MS×D, 38
//!   MS×MS, 12 HS×D, 36 HS×MS, 12 HS×HS);
//! - [`experiments`] — one entry point per table/figure of the paper's
//!   evaluation, consumed by the `misam-bench` binaries;
//! - [`hetero`] — the §6.3 extension: routing workloads across
//!   CPU / GPU / Misam-FPGA with the same classifier machinery;
//! - [`ablation`] — sensitivity studies of the design choices DESIGN.md
//!   calls out (feature pruning, tree-vs-forest, switch threshold,
//!   reconfiguration cost, simulator mechanisms).
//!
//! # Quickstart
//!
//! ```
//! use misam::pipeline::Misam;
//! use misam_sim::Operand;
//! use misam_sparse::gen;
//!
//! // Train a small system (larger corpora => paper-scale accuracy).
//! let mut misam = Misam::builder()
//!     .classifier_samples(300)
//!     .latency_samples(400)
//!     .seed(7)
//!     .train();
//!
//! let a = gen::power_law(1024, 1024, 5.0, 1.4, 1);
//! let report = misam.execute(&a, Operand::Dense { rows: 1024, cols: 256 });
//! println!("ran on {} in {:.3} ms", report.decision.execute_on,
//!          report.sim.time_s * 1e3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod dataset;
pub mod experiments;
pub mod hetero;
pub mod persist;
pub mod pipeline;
pub mod training;
pub mod workloads;

pub use dataset::{Dataset, DatasetError, Objective, Sample};
pub use pipeline::{ExecutionReport, Misam, MisamBuilder};
pub use training::{LatencyPredictor, TrainedSelector};
