//! The end-to-end Misam system (paper Figure 7).
//!
//! `features → design classifier → reconfiguration engine → execution`,
//! with wall-clock timing of the host-side stages so the Figure 12
//! breakdown (preprocessing ≈ 2%, inference ≈ 0.1% of end-to-end time)
//! can be measured rather than asserted.

use crate::dataset::{Dataset, Objective};
use crate::training::{self, LatencyPredictor, TrainedSelector};
use misam_features::{PairFeatures, TileConfig};
use misam_oracle::Executor;
use misam_recon::cost::ReconfigCost;
use misam_recon::engine::{Decision, ReconfigEngine};
use misam_recon::stream::{self, StreamConfig, StreamOutcome};
use misam_sim::{DesignId, Operand, SimReport};
use misam_sparse::CsrMatrix;
use std::time::Instant;

/// Host-side stage timings of one execution (measured wall clock).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Timings {
    /// Feature-extraction (preprocessing) seconds.
    pub preprocess_s: f64,
    /// Classifier + engine inference seconds.
    pub inference_s: f64,
}

/// Result of running one multiplication through the pipeline.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Extracted operand features.
    pub features: PairFeatures,
    /// Design nominated by the classifier.
    pub predicted: DesignId,
    /// The reconfiguration engine's decision.
    pub decision: Decision,
    /// Simulated execution on the decided design.
    pub sim: SimReport,
    /// Host-side stage timings.
    pub timings: Timings,
}

impl ExecutionReport {
    /// End-to-end seconds: host stages + reconfiguration + execution.
    pub fn total_s(&self) -> f64 {
        self.timings.preprocess_s
            + self.timings.inference_s
            + self.decision.reconfig_time_s
            + self.sim.time_s
    }
}

/// The trained, stateful Misam system.
#[derive(Debug)]
pub struct Misam {
    selector: TrainedSelector,
    engine: ReconfigEngine<LatencyPredictor>,
    tile_cfg: TileConfig,
}

impl Misam {
    /// Starts a builder with the default (fast) training configuration.
    pub fn builder() -> MisamBuilder {
        MisamBuilder::default()
    }

    /// Assembles a system from already-trained parts.
    pub fn from_parts(
        selector: TrainedSelector,
        predictor: LatencyPredictor,
        cost: ReconfigCost,
        threshold: f64,
        tile_cfg: TileConfig,
    ) -> Self {
        Misam { selector, engine: ReconfigEngine::new(predictor, cost, threshold), tile_cfg }
    }

    /// The design classifier.
    pub fn selector(&self) -> &TrainedSelector {
        &self.selector
    }

    /// The currently loaded design, if any.
    pub fn current_design(&self) -> Option<DesignId> {
        self.engine.current()
    }

    /// Loads a design without charging reconfiguration time (models the
    /// state of the board before a workload stream starts).
    pub fn preload(&mut self, design: DesignId) {
        self.engine.force_load(design);
    }

    /// Total reconfigurations performed so far.
    pub fn reconfig_count(&self) -> u64 {
        self.engine.reconfig_count()
    }

    /// Runs one multiplication through the full pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn execute(&mut self, a: &CsrMatrix, b: Operand<'_>) -> ExecutionReport {
        let t0 = Instant::now();
        let features = match &b {
            Operand::Sparse(bm) => PairFeatures::extract(a, bm, &self.tile_cfg),
            Operand::Dense { rows, cols } => {
                PairFeatures::extract_dense_b(a, *rows, *cols, &self.tile_cfg)
            }
        };
        let preprocess_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let predicted = self.selector.select(&features);
        let decision = self.engine.decide(&features, predicted);
        let inference_s = t1.elapsed().as_secs_f64();

        let sim = misam_oracle::global().execute(a, b, decision.execute_on.index());
        ExecutionReport {
            features,
            predicted,
            decision,
            sim,
            timings: Timings { preprocess_s, inference_s },
        }
    }

    /// Streams a large multiplication tile by tile (§3.3), reconfiguring
    /// between tiles when beneficial.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an empty/reversed tile range.
    pub fn stream(&mut self, a: &CsrMatrix, b: Operand<'_>, cfg: &StreamConfig) -> StreamOutcome {
        // Disjoint field borrows: the closure reads the selector while
        // the engine is mutated — no per-call model clone.
        let selector = &self.selector;
        stream::run(a, b, cfg, misam_oracle::global(), &mut self.engine, |f| selector.select(f))
    }
}

/// Builder configuring and training a [`Misam`] system.
#[derive(Debug, Clone)]
pub struct MisamBuilder {
    classifier_samples: usize,
    latency_samples: usize,
    seed: u64,
    objective: Objective,
    threshold: f64,
    cost: ReconfigCost,
    tile_cfg: TileConfig,
}

impl Default for MisamBuilder {
    fn default() -> Self {
        MisamBuilder {
            classifier_samples: 1200,
            latency_samples: 2400,
            seed: 0xA15A,
            objective: Objective::Latency,
            threshold: 0.2,
            cost: ReconfigCost::default(),
            tile_cfg: TileConfig::default(),
        }
    }
}

impl MisamBuilder {
    /// Number of corpus samples for the design classifier (the paper
    /// uses 6,219).
    pub fn classifier_samples(mut self, n: usize) -> Self {
        self.classifier_samples = n;
        self
    }

    /// Number of corpus samples for the latency predictor (the paper
    /// uses 19,000).
    pub fn latency_samples(mut self, n: usize) -> Self {
        self.latency_samples = n;
        self
    }

    /// Seed for corpus generation and splits.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selection objective (latency, energy, or weighted).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Reconfiguration threshold (default 0.2 — switch only when the
    /// overhead is under 20% of the projected gain).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Reconfiguration cost model ([`ReconfigCost::zero`] makes the
    /// engine always chase the optimum).
    pub fn reconfig_cost(mut self, cost: ReconfigCost) -> Self {
        self.cost = cost;
        self
    }

    /// Tiling geometry for feature extraction.
    pub fn tile_config(mut self, cfg: TileConfig) -> Self {
        self.tile_cfg = cfg;
        self
    }

    /// Generates the corpora, trains both models, and assembles the
    /// system.
    pub fn train(self) -> Misam {
        let (misam, _, _) = self.train_with_reports();
        misam
    }

    /// Like [`MisamBuilder::train`], also returning the training
    /// evaluations.
    pub fn train_with_reports(
        self,
    ) -> (Misam, training::SelectorTraining, training::LatencyTraining) {
        let classifier_ds = Dataset::generate(self.classifier_samples, self.seed);
        let latency_ds = Dataset::generate(self.latency_samples, self.seed ^ 0x1a7e);
        let sel = training::train_selector(&classifier_ds, self.objective, self.seed);
        let lat = training::train_latency_predictor(&latency_ds, self.seed);
        let misam = Misam::from_parts(
            sel.selector.clone(),
            lat.predictor.clone(),
            self.cost,
            self.threshold,
            self.tile_cfg,
        );
        (misam, sel, lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_sparse::gen;

    fn small_system(seed: u64) -> Misam {
        Misam::builder().classifier_samples(200).latency_samples(250).seed(seed).train()
    }

    #[test]
    fn execute_produces_consistent_report() {
        let mut m = small_system(1);
        let a = gen::uniform_random(512, 512, 0.02, 2);
        let r = m.execute(&a, Operand::Dense { rows: 512, cols: 256 });
        assert_eq!(r.sim.design, r.decision.execute_on);
        assert!(r.timings.preprocess_s >= 0.0);
        assert!(r.total_s() >= r.sim.time_s);
        assert_eq!(m.current_design(), Some(r.decision.execute_on));
    }

    #[test]
    fn host_overheads_are_small_fraction_for_big_workloads() {
        // The Figure 12 property: preprocessing and inference are tiny
        // next to execution for realistically sized workloads.
        let mut m = small_system(3);
        let a = gen::power_law(4000, 4000, 12.0, 1.5, 4);
        let r = m.execute(&a, Operand::Dense { rows: 4000, cols: 512 });
        // Wall-clock host timings wobble under load; assert the robust
        // Figure 12 structure: inference is a sliver, preprocessing is
        // the same order as execution or below.
        let total = r.timings.preprocess_s + r.timings.inference_s + r.sim.time_s;
        assert!(
            r.timings.inference_s < 0.05 * total,
            "inference {:.2e}s vs total {:.2e}s",
            r.timings.inference_s,
            total
        );
        assert!(
            r.timings.preprocess_s < 3.0 * r.sim.time_s,
            "preprocess {:.2e}s vs exec {:.2e}s",
            r.timings.preprocess_s,
            r.sim.time_s
        );
    }

    #[test]
    fn sticky_design_without_reconfig_budget() {
        let mut m = small_system(5);
        m.preload(DesignId::D2);
        let a = gen::uniform_random(256, 256, 0.02, 6);
        // Tiny workloads: any cross-bitstream gain is microseconds,
        // never justifying a multi-second reconfiguration.
        let r = m.execute(&a, Operand::Dense { rows: 256, cols: 64 });
        assert!(!r.decision.reconfigured);
        assert!(matches!(r.decision.execute_on, DesignId::D2 | DesignId::D3));
    }

    #[test]
    fn zero_cost_system_follows_the_selector() {
        let mut m = Misam::builder()
            .classifier_samples(200)
            .latency_samples(250)
            .seed(7)
            .reconfig_cost(ReconfigCost::zero())
            .train();
        m.preload(DesignId::D1);
        let a = gen::power_law(2000, 2000, 4.0, 1.4, 8);
        let b = gen::power_law(2000, 2000, 4.0, 1.4, 9);
        let r = m.execute(&a, Operand::Sparse(&b));
        assert_eq!(r.decision.execute_on, r.sim.design);
        // With free switching the engine executes the predicted design
        // whenever the latency model agrees it helps; either way the
        // decision is internally consistent.
        if r.decision.reconfigured {
            assert_eq!(r.decision.execute_on, r.predicted);
        }
    }

    #[test]
    fn stream_reuses_engine_state() {
        let mut m = small_system(10);
        m.preload(DesignId::D2);
        let a = gen::uniform_random(900, 512, 0.01, 11);
        let cfg =
            StreamConfig { tile_min_rows: 200, tile_max_rows: 400, seed: 1, ..Default::default() };
        let out = m.stream(&a, Operand::Dense { rows: 512, cols: 128 }, &cfg);
        assert!(!out.tiles.is_empty());
        assert_eq!(out.tiles.last().unwrap().row_end, 900);
    }
}
