//! Model training and evaluation: the design selector (§3.1) and the
//! reconfiguration engine's latency predictor (§3.3).

use crate::dataset::{Dataset, Objective};
use misam_features::{PairFeatures, FEATURE_NAMES};
use misam_mlkit::cv;
use misam_mlkit::flat::{FlatRegressionTree, FlatTree};
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::metrics::{self, ConfusionMatrix};
use misam_mlkit::regression::{RegParams, RegressionTree};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_recon::engine::LatencyModel;
use misam_sim::DesignId;
use serde::{Deserialize, Serialize};

/// The fitted design classifier. Optionally restricted to a feature
/// subset (the paper's deployed model "is pruned and uses only the top
/// four features", §5.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedSelector {
    tree: DecisionTree,
    /// When present, the tree was trained on `full[feature_map[i]]`.
    feature_map: Option<Vec<usize>>,
}

impl TrainedSelector {
    /// Predicts the optimal design for an operand pair's features.
    pub fn select(&self, features: &PairFeatures) -> DesignId {
        self.select_vector(&features.to_vector())
    }

    /// Predicts from an already-flattened **full** feature vector (the
    /// selector projects to its training subset internally).
    ///
    /// # Panics
    ///
    /// Panics if the vector arity differs from the training features.
    pub fn select_vector(&self, v: &[f64]) -> DesignId {
        match &self.feature_map {
            None => DesignId::from_index(self.tree.predict(v)),
            Some(map) => {
                let projected: Vec<f64> = map.iter().map(|&i| v[i]).collect();
                DesignId::from_index(self.tree.predict(&projected))
            }
        }
    }

    /// Names of the features this selector consumes, in training order.
    pub fn feature_names(&self) -> Vec<&'static str> {
        match &self.feature_map {
            None => FEATURE_NAMES.to_vec(),
            Some(map) => map.iter().map(|&i| FEATURE_NAMES[i]).collect(),
        }
    }

    /// The underlying decision tree (importances, size, serialization).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Converts to the flat SoA inference form used on serving hot
    /// paths; predictions are bit-identical to [`TrainedSelector::select_vector`].
    pub fn to_flat(&self) -> FlatSelector {
        FlatSelector {
            tree: FlatTree::from_tree(&self.tree),
            feature_map: self.feature_map.clone(),
        }
    }

    /// Incremental refresh for online learning: reduced-error-prunes a
    /// *copy* of the selector against a freshly labeled validation
    /// window (full feature vectors — the selector projects to its
    /// training subset internally) and returns it with the number of
    /// splits removed. The serving selector is never mutated; when
    /// nothing prunes (`removed == 0`) the copy equals the original and
    /// callers can skip publishing.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or features/labels are mismatched.
    pub fn refreshed_with_validation(
        &self,
        x_val: &[Vec<f64>],
        y_val: &[usize],
    ) -> (TrainedSelector, usize) {
        assert!(!x_val.is_empty(), "refresh needs a non-empty validation window");
        let projected: Vec<Vec<f64>> = match &self.feature_map {
            None => x_val.to_vec(),
            Some(map) => x_val.iter().map(|v| map.iter().map(|&i| v[i]).collect()).collect(),
        };
        let m = FeatureMatrix::from_rows(&projected);
        let (tree, removed) = self.tree.refreshed_with_validation_matrix(&m, y_val);
        (TrainedSelector { tree, feature_map: self.feature_map.clone() }, removed)
    }

    /// Feature importances paired with their names, sorted descending —
    /// the content of the paper's Figure 4.
    pub fn ranked_importances(&self) -> Vec<(&'static str, f64)> {
        let mut pairs: Vec<(&'static str, f64)> = self
            .feature_names()
            .into_iter()
            .zip(self.tree.feature_importances().iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
        pairs
    }
}

/// Outcome of selector training: the model plus held-out evaluation.
#[derive(Debug, Clone)]
pub struct SelectorTraining {
    /// The fitted selector.
    pub selector: TrainedSelector,
    /// Validation accuracy on the held-out 30%.
    pub accuracy: f64,
    /// Validation confusion matrix (predicted × actual).
    pub confusion: ConfusionMatrix,
    /// Model footprint in bytes (compact serialization).
    pub model_bytes: usize,
}

/// Default tree hyperparameters for the design selector: deep enough to
/// carve the four regimes, pruned to stay in the paper's ~6 KB budget.
pub fn selector_params(labels: &[usize]) -> TreeParams {
    TreeParams {
        max_depth: 10,
        min_samples_leaf: 3,
        min_samples_split: 6,
        min_gain: 1e-6,
        class_weights: Some(metrics::inverse_frequency_weights(labels, 4)),
    }
}

/// Trains the design selector on 70% of `dataset` and evaluates on the
/// remaining 30% (the paper's split).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn train_selector(dataset: &Dataset, objective: Objective, seed: u64) -> SelectorTraining {
    train_selector_impl(dataset, objective, seed, None)
}

/// Trains the selector on a feature *subset* — the paper's deployed
/// configuration prunes to the top four features of Figure 4 with "no
/// measurable impact on accuracy" (§3.1, §5.5). `features` holds indices
/// into `misam_features::FEATURE_NAMES`.
///
/// # Panics
///
/// Panics if the dataset is empty, `features` is empty, or any index is
/// out of range.
pub fn train_selector_on_features(
    dataset: &Dataset,
    objective: Objective,
    seed: u64,
    features: &[usize],
) -> SelectorTraining {
    assert!(!features.is_empty(), "feature subset must be non-empty");
    assert!(features.iter().all(|&i| i < FEATURE_NAMES.len()), "feature index out of range");
    train_selector_impl(dataset, objective, seed, Some(features.to_vec()))
}

fn train_selector_impl(
    dataset: &Dataset,
    objective: Objective,
    seed: u64,
    feature_map: Option<Vec<usize>>,
) -> SelectorTraining {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    // One columnar matrix over the full corpus; splits and the feature
    // subset are gathered column-at-a-time from it.
    let m = FeatureMatrix::from_rows(&dataset.features());
    let y = dataset.labels(objective);
    let split = cv::train_test_split(m.n_rows(), 0.7, seed);

    // The paper's deployed tree is post-pruned (§3.1); hold back a
    // fifth of the training split as the pruning set so the 30%
    // validation accuracy stays honest. Tiny corpora skip pruning — the
    // holdback would cost more fit data than pruning saves.
    let cut = if split.train.len() >= 400 { split.train.len() * 4 / 5 } else { split.train.len() };
    let (fit_idx, prune_idx) = split.train.split_at(cut);
    let xt = m.gather_project(fit_idx, feature_map.as_deref());
    let yt = cv::gather(&y, fit_idx);
    let params = selector_params(&yt);
    let mut tree = DecisionTree::fit_matrix(&xt, &yt, 4, &params);
    if !prune_idx.is_empty() {
        let xp = m.gather_project(prune_idx, feature_map.as_deref());
        let yp = cv::gather(&y, prune_idx);
        tree.prune_with_validation_matrix(&xp, &yp);
    }

    let xv = m.gather_project(&split.validation, feature_map.as_deref());
    let yv = cv::gather(&y, &split.validation);
    let pred = tree.predict_batch_matrix(&xv);
    let accuracy = metrics::accuracy(&pred, &yv);
    let confusion = ConfusionMatrix::new(&pred, &yv, 4);
    let model_bytes = tree.serialized_size();

    SelectorTraining {
        selector: TrainedSelector { tree, feature_map },
        accuracy,
        confusion,
        model_bytes,
    }
}

/// K-fold cross-validated selector accuracy (the paper's 10-fold
/// protocol). Rounds run in parallel on `misam_oracle::pool` workers;
/// scores are identical to the serial protocol.
pub fn kfold_selector_accuracy(
    dataset: &Dataset,
    objective: Objective,
    k: usize,
    seed: u64,
) -> Vec<f64> {
    let m = FeatureMatrix::from_rows(&dataset.features());
    let y = dataset.labels(objective);
    cv::cross_validate_par(m.n_rows(), k, seed, |train, val| {
        let xt = m.gather(train);
        let yt = cv::gather(&y, train);
        let tree = DecisionTree::fit_matrix(&xt, &yt, 4, &selector_params(&yt));
        let xv = m.gather(val);
        let yv = cv::gather(&y, val);
        metrics::accuracy(&tree.predict_batch_matrix(&xv), &yv)
    })
}

/// Flat SoA inference form of [`TrainedSelector`]: the same projection
/// and tree walk over dense arrays, used by `misam-serve` on every
/// micro-batch flush. Build via [`TrainedSelector::to_flat`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlatSelector {
    tree: FlatTree,
    feature_map: Option<Vec<usize>>,
}

impl FlatSelector {
    /// Predicts the optimal design for an operand pair's features.
    pub fn select(&self, features: &PairFeatures) -> DesignId {
        self.select_vector(&features.to_vector())
    }

    /// Predicts from an already-flattened **full** feature vector;
    /// bit-identical to [`TrainedSelector::select_vector`].
    ///
    /// # Panics
    ///
    /// Panics if the vector arity differs from the training features.
    pub fn select_vector(&self, v: &[f64]) -> DesignId {
        match &self.feature_map {
            None => DesignId::from_index(self.tree.predict(v)),
            Some(map) => {
                let projected: Vec<f64> = map.iter().map(|&i| v[i]).collect();
                DesignId::from_index(self.tree.predict(&projected))
            }
        }
    }

    /// Columnar batch form of [`FlatSelector::select_vector`] over a
    /// matrix of **full** feature vectors (one row per operand pair);
    /// per-row results are bit-identical to the vector entry point.
    ///
    /// # Panics
    ///
    /// Panics if the matrix arity differs from the training features.
    pub fn select_batch_matrix(&self, m: &FeatureMatrix) -> Vec<DesignId> {
        let classes = match &self.feature_map {
            None => self.tree.predict_batch_matrix(m),
            Some(map) => self.tree.predict_batch_matrix(&m.project(map)),
        };
        classes.into_iter().map(DesignId::from_index).collect()
    }
}

/// The reconfiguration engine's latency model: one regression tree per
/// design, fitted on log10(latency) so residuals are relative errors —
/// the scale on which the paper reports MAE 0.344 and R² 0.978.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPredictor {
    trees: Vec<RegressionTree>,
}

impl LatencyPredictor {
    /// Predicted log10(seconds) for a feature vector on one design.
    pub fn predict_log10(&self, v: &[f64], design: DesignId) -> f64 {
        self.trees[design.index()].predict(v)
    }

    /// Converts to the flat SoA inference form; predictions are
    /// bit-identical to [`LatencyPredictor::predict_log10`].
    pub fn to_flat(&self) -> FlatLatencyPredictor {
        FlatLatencyPredictor {
            trees: self.trees.iter().map(FlatRegressionTree::from_tree).collect(),
        }
    }
}

/// Flat SoA inference form of [`LatencyPredictor`] (one flat regression
/// tree per design), used by `misam-serve` on every micro-batch flush.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatLatencyPredictor {
    trees: Vec<FlatRegressionTree>,
}

impl FlatLatencyPredictor {
    /// Predicted log10(seconds) for a feature vector on one design;
    /// bit-identical to [`LatencyPredictor::predict_log10`].
    pub fn predict_log10(&self, v: &[f64], design: DesignId) -> f64 {
        self.trees[design.index()].predict(v)
    }

    /// Columnar batch form of [`FlatLatencyPredictor::predict_log10`]
    /// for one design across every row of `m`; per-row results are
    /// bit-identical to the vector entry point.
    pub fn predict_log10_batch(&self, m: &FeatureMatrix, design: DesignId) -> Vec<f64> {
        self.trees[design.index()].predict_batch_matrix(m)
    }
}

impl LatencyModel for LatencyPredictor {
    fn predict_seconds(&self, features: &PairFeatures, design: DesignId) -> f64 {
        10f64.powf(self.predict_log10(&features.to_vector(), design))
    }
}

/// Outcome of latency-predictor training: the model plus held-out
/// residual statistics (Figure 9's metrics).
#[derive(Debug, Clone)]
pub struct LatencyTraining {
    /// The fitted predictor.
    pub predictor: LatencyPredictor,
    /// Mean absolute error of log10(latency) on the held-out set.
    pub mae: f64,
    /// R² of log10(latency) on the held-out set.
    pub r2: f64,
    /// Held-out residuals `(predicted - actual)` in log10 space.
    pub residuals: Vec<f64>,
}

/// Trains the latency predictor on 70% of `dataset` and reports residual
/// statistics on the remaining 30%.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn train_latency_predictor(dataset: &Dataset, seed: u64) -> LatencyTraining {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    let m = FeatureMatrix::from_rows(&dataset.features());
    let split = cv::train_test_split(m.n_rows(), 0.7, seed);
    let params = RegParams { max_depth: 16, min_samples_leaf: 2, ..RegParams::default() };

    // The four per-design targets share the same rows; gather the
    // feature split once instead of once per design.
    let xt = m.gather(&split.train);
    let xv = m.gather(&split.validation);

    let mut trees = Vec::with_capacity(4);
    let mut all_pred = Vec::new();
    let mut all_actual = Vec::new();

    for d in DesignId::ALL {
        let y: Vec<f64> = dataset.samples.iter().map(|s| s.times_s[d.index()].log10()).collect();
        let yt = cv::gather(&y, &split.train);
        let tree = RegressionTree::fit_matrix(&xt, &yt, &params);

        all_pred.extend(tree.predict_batch_matrix(&xv));
        all_actual.extend(split.validation.iter().map(|&i| y[i]));
        trees.push(tree);
    }

    let mae = metrics::mae(&all_pred, &all_actual);
    let r2 = metrics::r2(&all_pred, &all_actual);
    let residuals = all_pred.iter().zip(&all_actual).map(|(p, a)| p - a).collect();
    LatencyTraining { predictor: LatencyPredictor { trees }, mae, r2, residuals }
}

/// Trains the learned cycle-level surrogate (per-design regression
/// forests + calibrated confidence band) on a sim-labeled corpus. Thin
/// adapter over [`misam_oracle::SurrogateBundle::fit`]: the oracle
/// crate sits below this one, so it takes raw feature/latency arrays
/// and this function builds them from a [`Dataset`].
///
/// # Panics
///
/// Panics if the dataset is empty (see
/// [`misam_oracle::SurrogateBundle::fit`]).
pub fn train_surrogate(
    dataset: &Dataset,
    params: &misam_oracle::SurrogateTrainParams,
) -> misam_oracle::SurrogateBundle {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    let features = dataset.features();
    let times: Vec<[f64; 4]> = dataset.samples.iter().map(|s| s.times_s).collect();
    misam_oracle::SurrogateBundle::fit(&features, &times, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use misam_features::TileConfig;
    use misam_sparse::gen;

    fn small_dataset() -> Dataset {
        Dataset::generate(250, 42)
    }

    #[test]
    fn selector_beats_majority_baseline() {
        let ds = small_dataset();
        let hist = ds.label_histogram(Objective::Latency);
        let majority = *hist.iter().max().unwrap() as f64 / ds.len() as f64;
        let t = train_selector(&ds, Objective::Latency, 1);
        assert!(
            t.accuracy > majority.max(0.5),
            "accuracy {:.2} should beat majority {:.2}",
            t.accuracy,
            majority
        );
    }

    #[test]
    fn selector_model_is_compact() {
        let t = train_selector(&small_dataset(), Objective::Latency, 2);
        assert!(t.model_bytes < 64 * 1024, "model is {} bytes", t.model_bytes);
    }

    #[test]
    fn selector_accepts_real_features() {
        let t = train_selector(&small_dataset(), Objective::Latency, 3);
        let a = gen::power_law(512, 512, 6.0, 1.5, 9);
        let b = gen::uniform_random(512, 256, 0.1, 10);
        let f = PairFeatures::extract(&a, &b, &TileConfig::default());
        let _design = t.selector.select(&f); // any valid design is fine
        assert!(DesignId::ALL.contains(&t.selector.select(&f)));
    }

    #[test]
    fn ranked_importances_are_sorted_and_named() {
        let t = train_selector(&small_dataset(), Objective::Latency, 4);
        let ranked = t.selector.ranked_importances();
        assert_eq!(ranked.len(), misam_features::FEATURE_NAMES.len());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(ranked[0].1 > 0.0, "top feature must carry importance");
    }

    #[test]
    fn latency_predictor_tracks_simulator() {
        let ds = small_dataset();
        let t = train_latency_predictor(&ds, 5);
        // 250 samples is far below the paper's 19,000; the quality
        // claims are asserted at larger scale in the integration tests
        // and measured in the fig09 binary (R2 ~0.96).
        assert!(t.r2 > 0.6, "R2 {:.3} too low", t.r2);
        assert!(t.mae < 0.7, "log10 MAE {:.3} too high", t.mae);
        assert_eq!(t.residuals.len(), (ds.len() - ds.len() * 7 / 10) * 4);
    }

    #[test]
    fn latency_predictor_returns_positive_seconds() {
        let ds = small_dataset();
        let t = train_latency_predictor(&ds, 6);
        let a = gen::uniform_random(256, 256, 0.05, 11);
        let f = PairFeatures::extract_dense_b(&a, 256, 128, &TileConfig::default());
        for d in DesignId::ALL {
            let s = t.predictor.predict_seconds(&f, d);
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    fn kfold_scores_are_plausible() {
        let ds = Dataset::generate(150, 43);
        let scores = kfold_selector_accuracy(&ds, Objective::Latency, 5, 7);
        assert_eq!(scores.len(), 5);
        let mean = scores.iter().sum::<f64>() / 5.0;
        assert!(mean > 0.5, "5-fold mean accuracy {mean:.2} too low");
    }

    #[test]
    fn energy_objective_trains_too() {
        let ds = small_dataset();
        let t = train_selector(&ds, Objective::Energy, 8);
        assert!(t.accuracy > 0.4);
    }
}
