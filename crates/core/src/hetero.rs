//! Heterogeneous device routing (paper §6.3).
//!
//! "Misam is also extensible to heterogeneous environments involving
//! CPUs, GPUs, FPGAs … the model can route workloads to the most
//! suitable device; for instance, it correctly routes workloads to the
//! GPU when it consistently offers better performance." This module
//! implements that extension: a three-class selector over
//! {Misam-FPGA, CPU, GPU}, trained on the same feature vector, with the
//! baselines' analytical models supplying the ground truth.

use crate::dataset;
use misam_features::TileConfig;
use misam_mlkit::cv;
use misam_mlkit::metrics::{self, ConfusionMatrix};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_oracle::{pool, CpuExecutor, Executor, GpuExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A routing target in the heterogeneous deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// The Misam FPGA system (oracle-best of its four designs).
    MisamFpga,
    /// The MKL-class CPU.
    Cpu,
    /// The cuSPARSE-class GPU.
    Gpu,
}

impl Device {
    /// All devices, in label order.
    pub const ALL: [Device; 3] = [Device::MisamFpga, Device::Cpu, Device::Gpu];

    /// Zero-based class label.
    pub fn index(self) -> usize {
        match self {
            Device::MisamFpga => 0,
            Device::Cpu => 1,
            Device::Gpu => 2,
        }
    }

    /// Inverse of [`Device::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 3`.
    pub fn from_index(idx: usize) -> Self {
        Self::ALL[idx]
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Device::MisamFpga => "misam-fpga",
            Device::Cpu => "cpu",
            Device::Gpu => "gpu",
        })
    }
}

/// The trained device router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRouter {
    tree: DecisionTree,
}

impl DeviceRouter {
    /// Routes a feature vector to a device.
    pub fn route(&self, features: &[f64]) -> Device {
        Device::from_index(self.tree.predict(features))
    }

    /// The underlying tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }
}

/// Training outcome of the device router.
#[derive(Debug, Clone)]
pub struct RouterTraining {
    /// The fitted router.
    pub router: DeviceRouter,
    /// Held-out routing accuracy.
    pub accuracy: f64,
    /// Held-out confusion matrix (predicted × actual device).
    pub confusion: ConfusionMatrix,
    /// Geomean of `t_routed / t_best` on the held-out set (1.0 = always
    /// optimal; the cost of routing mistakes).
    pub routed_over_best: f64,
    /// Held-out label histogram.
    pub label_histogram: [usize; 3],
}

/// Generates a routing corpus of `n` random operand pairs and trains the
/// device router on 70% of it.
///
/// # Panics
///
/// Panics if `n < 10`.
pub fn train_router(n: usize, seed: u64) -> RouterTraining {
    assert!(n >= 10, "router corpus too small");
    let tile_cfg = TileConfig::default();
    let cpu = CpuExecutor::default();
    let gpu = GpuExecutor::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0004_e7e0);

    // Serial draws, then every device is priced in parallel; the FPGA
    // side shares the process-wide memoized oracle.
    let pairs: Vec<(misam_sparse::CsrMatrix, dataset::OperandSpec)> = (0..n)
        .map(|_| {
            let (a, spec, _) = dataset::random_pair(&mut rng);
            (a, spec)
        })
        .collect();
    let priced = pool::par_map(&pairs, |(a, spec)| {
        let t_fpga = misam_oracle::global()
            .execute_all(a, spec.operand())
            .iter()
            .map(|r| r.time_s)
            .fold(f64::INFINITY, f64::min);
        let t_cpu = cpu.execute(a, spec.operand(), 0).time_s;
        let t_gpu = gpu.execute(a, spec.operand(), 0).time_s;
        (spec.features(a, &tile_cfg).to_vector(), [t_fpga, t_cpu, t_gpu])
    });
    let mut x = Vec::with_capacity(n);
    let mut times: Vec<[f64; 3]> = Vec::with_capacity(n);
    for (f, t) in priced {
        x.push(f);
        times.push(t);
    }
    let y: Vec<usize> = times
        .iter()
        .map(|t| {
            (0..3).min_by(|&i, &j| t[i].partial_cmp(&t[j]).expect("finite")).expect("three devices")
        })
        .collect();

    let m = misam_mlkit::matrix::FeatureMatrix::from_rows(&x);
    let split = cv::train_test_split(n, 0.7, seed);
    let xt = m.gather(&split.train);
    let yt = cv::gather(&y, &split.train);
    let params = TreeParams {
        max_depth: 10,
        min_samples_leaf: 3,
        min_samples_split: 6,
        min_gain: 1e-6,
        class_weights: Some(metrics::inverse_frequency_weights(&yt, 3)),
    };
    let tree = DecisionTree::fit_matrix(&xt, &yt, 3, &params);

    let xv = m.gather(&split.validation);
    let yv = cv::gather(&y, &split.validation);
    let pred = tree.predict_batch_matrix(&xv);
    let accuracy = metrics::accuracy(&pred, &yv);
    let confusion = ConfusionMatrix::new(&pred, &yv, 3);

    let ratios: Vec<f64> = split
        .validation
        .iter()
        .zip(&pred)
        .map(|(&i, &p)| {
            let t = times[i];
            let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
            t[p] / best
        })
        .collect();
    let routed_over_best = metrics::geomean(&ratios);

    let mut label_histogram = [0usize; 3];
    for &l in &yv {
        label_histogram[l] += 1;
    }

    RouterTraining {
        router: DeviceRouter { tree },
        accuracy,
        confusion,
        routed_over_best,
        label_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_beats_any_fixed_device_policy() {
        let t = train_router(400, 7);
        // Routing accuracy must beat the majority-class baseline implied
        // by its own histogram.
        let total: usize = t.label_histogram.iter().sum();
        let majority = *t.label_histogram.iter().max().unwrap() as f64 / total as f64;
        assert!(
            t.accuracy > majority - 0.02,
            "accuracy {:.2} vs majority {:.2}",
            t.accuracy,
            majority
        );
        // Misrouting cost stays small: near-oracle end-to-end.
        assert!(
            t.routed_over_best < 2.0,
            "routed/best geomean {:.2} too lossy",
            t.routed_over_best
        );
        assert!(t.routed_over_best >= 1.0 - 1e-9);
    }

    #[test]
    fn corpus_contains_multiple_devices() {
        let t = train_router(400, 8);
        let present = t.label_histogram.iter().filter(|&&c| c > 0).count();
        assert!(present >= 2, "expected device diversity, got {:?}", t.label_histogram);
    }

    #[test]
    fn device_index_roundtrips() {
        for d in Device::ALL {
            assert_eq!(Device::from_index(d.index()), d);
        }
        assert_eq!(Device::Gpu.to_string(), "gpu");
    }

    #[test]
    fn router_routes_real_features() {
        use misam_features::PairFeatures;
        use misam_sparse::gen;
        let t = train_router(300, 9);
        let a = gen::power_law(800, 800, 5.0, 1.4, 1);
        let f = PairFeatures::extract_dense_b(&a, 800, 512, &TileConfig::default());
        let _device = t.router.route(&f.to_vector());
    }
}
