//! Model persistence: save and load a trained Misam system.
//!
//! The deployed artifact the paper describes is tiny — a ~6 KB decision
//! tree plus the reconfiguration engine's latency model — and lives on
//! the host. This module serializes both (plus the configuration needed
//! to reproduce feature extraction) into a single JSON bundle, so a
//! system trained once can be shipped and reloaded without regenerating
//! corpora.

use crate::training::{LatencyPredictor, TrainedSelector};
use misam_features::TileConfig;
use misam_recon::cost::ReconfigCost;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

/// Why a bundle failed to save or load.
///
/// The variants split along the axis a serving `Reload` endpoint cares
/// about: [`PersistError::Io`] and [`PersistError::Json`] are *retryable*
/// (a file mid-write, a transient filesystem error — the previous bundle
/// stays live and the caller may try again), while
/// [`PersistError::Version`] is *fatal* for that file (no amount of
/// retrying makes an incompatible format load).
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the bundle file failed.
    Io(std::io::Error),
    /// The bundle text was not valid JSON of the expected shape.
    Json(serde_json::Error),
    /// The bundle's format version is not supported.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl PersistError {
    /// Whether retrying the same operation later could succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, PersistError::Version { .. })
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "bundle i/o error: {e}"),
            PersistError::Json(e) => write!(f, "bundle json error: {e}"),
            PersistError::Version { found, expected } => {
                write!(f, "bundle version {found} unsupported (expected {expected})")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
            PersistError::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Existing call sites accumulate errors as `String`; keep `?` working
/// for them.
impl From<PersistError> for String {
    fn from(e: PersistError) -> Self {
        e.to_string()
    }
}

/// A serializable bundle of everything a host runtime needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format version (checked on load).
    pub version: u32,
    /// The design classifier.
    pub selector: TrainedSelector,
    /// The reconfiguration engine's latency model.
    pub predictor: LatencyPredictor,
    /// Switch threshold the system was configured with.
    pub threshold: f64,
    /// Reconfiguration cost constants.
    pub cost: ReconfigCost,
    /// Tile geometry used for feature extraction (rows, cols).
    pub tile_rows: usize,
    /// Columns of the feature-extraction tile.
    pub tile_cols: usize,
}

impl ModelBundle {
    /// Assembles a bundle from trained parts.
    pub fn new(
        selector: TrainedSelector,
        predictor: LatencyPredictor,
        threshold: f64,
        cost: ReconfigCost,
        tile_cfg: TileConfig,
    ) -> Self {
        ModelBundle {
            version: BUNDLE_VERSION,
            selector,
            predictor,
            threshold,
            cost,
            tile_rows: tile_cfg.tile_rows,
            tile_cols: tile_cfg.tile_cols,
        }
    }

    /// The tile configuration stored in the bundle.
    pub fn tile_config(&self) -> TileConfig {
        TileConfig { tile_rows: self.tile_rows, tile_cols: self.tile_cols }
    }

    /// Reassembles a runnable [`crate::pipeline::Misam`] system.
    pub fn into_system(self) -> crate::pipeline::Misam {
        crate::pipeline::Misam::from_parts(
            self.selector.clone(),
            self.predictor.clone(),
            self.cost,
            self.threshold,
            self.tile_config(),
        )
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Json`] on serializer failure.
    pub fn to_json(&self) -> Result<String, PersistError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a bundle, checking the version.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Json`] for malformed JSON and
    /// [`PersistError::Version`] for a version mismatch.
    pub fn from_json(s: &str) -> Result<Self, PersistError> {
        let bundle: ModelBundle = serde_json::from_str(s)?;
        if bundle.version != BUNDLE_VERSION {
            return Err(PersistError::Version { found: bundle.version, expected: BUNDLE_VERSION });
        }
        Ok(bundle)
    }

    /// Writes the bundle to a file.
    ///
    /// # Errors
    ///
    /// Returns serializer or I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        Ok(std::fs::write(path, self.to_json()?)?)
    }

    /// Reads a bundle from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse or version errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Objective};
    use crate::training;
    use misam_sim::Operand;
    use misam_sparse::gen;

    fn bundle() -> ModelBundle {
        let ds = Dataset::generate(150, 55);
        let sel = training::train_selector(&ds, Objective::Latency, 1);
        let lat = training::train_latency_predictor(&ds, 1);
        ModelBundle::new(
            sel.selector,
            lat.predictor,
            0.2,
            ReconfigCost::default(),
            TileConfig::default(),
        )
    }

    #[test]
    fn json_roundtrip_preserves_bundle() {
        let b = bundle();
        let back = ModelBundle::from_json(&b.to_json().unwrap()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn loaded_system_predicts_like_the_original() {
        let b = bundle();
        let json = b.to_json().unwrap();
        let mut original = b.clone().into_system();
        let mut restored = ModelBundle::from_json(&json).unwrap().into_system();

        let a = gen::power_law(600, 600, 6.0, 1.5, 3);
        let r1 = original.execute(&a, Operand::Dense { rows: 600, cols: 256 });
        let r2 = restored.execute(&a, Operand::Dense { rows: 600, cols: 256 });
        assert_eq!(r1.predicted, r2.predicted);
        assert_eq!(r1.decision.execute_on, r2.decision.execute_on);
        assert_eq!(r1.sim.cycles, r2.sim.cycles);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let b = bundle();
        let json = b.to_json().unwrap().replace("\"version\": 1", "\"version\": 99");
        let err = ModelBundle::from_json(&json).unwrap_err();
        assert!(matches!(err, PersistError::Version { found: 99, expected: BUNDLE_VERSION }));
        assert!(!err.is_retryable(), "a format mismatch never heals on retry");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn io_and_json_failures_are_retryable() {
        let io = ModelBundle::load("/nonexistent/misam.json").unwrap_err();
        assert!(matches!(io, PersistError::Io(_)));
        assert!(io.is_retryable());

        let json = ModelBundle::from_json("{ truncated").unwrap_err();
        assert!(matches!(json, PersistError::Json(_)));
        assert!(json.is_retryable());

        // String conversion keeps legacy `Result<_, String>` callers alive.
        let msg: String = json.into();
        assert!(msg.contains("json"), "{msg}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("misam_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        let b = bundle();
        b.save(&path).unwrap();
        let back = ModelBundle::load(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        assert!(ModelBundle::load("/nonexistent/misam.json").is_err());
    }
}
