//! Model persistence: save and load a trained Misam system.
//!
//! The deployed artifact the paper describes is tiny — a ~6 KB decision
//! tree plus the reconfiguration engine's latency model — and lives on
//! the host. This module serializes both (plus the configuration needed
//! to reproduce feature extraction) into a single JSON bundle, so a
//! system trained once can be shipped and reloaded without regenerating
//! corpora.

use crate::training::{LatencyPredictor, TrainedSelector};
use misam_features::TileConfig;
use misam_recon::cost::ReconfigCost;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current bundle format version.
pub const BUNDLE_VERSION: u32 = 1;

/// A serializable bundle of everything a host runtime needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format version (checked on load).
    pub version: u32,
    /// The design classifier.
    pub selector: TrainedSelector,
    /// The reconfiguration engine's latency model.
    pub predictor: LatencyPredictor,
    /// Switch threshold the system was configured with.
    pub threshold: f64,
    /// Reconfiguration cost constants.
    pub cost: ReconfigCost,
    /// Tile geometry used for feature extraction (rows, cols).
    pub tile_rows: usize,
    /// Columns of the feature-extraction tile.
    pub tile_cols: usize,
}

impl ModelBundle {
    /// Assembles a bundle from trained parts.
    pub fn new(
        selector: TrainedSelector,
        predictor: LatencyPredictor,
        threshold: f64,
        cost: ReconfigCost,
        tile_cfg: TileConfig,
    ) -> Self {
        ModelBundle {
            version: BUNDLE_VERSION,
            selector,
            predictor,
            threshold,
            cost,
            tile_rows: tile_cfg.tile_rows,
            tile_cols: tile_cfg.tile_cols,
        }
    }

    /// The tile configuration stored in the bundle.
    pub fn tile_config(&self) -> TileConfig {
        TileConfig { tile_rows: self.tile_rows, tile_cols: self.tile_cols }
    }

    /// Reassembles a runnable [`crate::pipeline::Misam`] system.
    pub fn into_system(self) -> crate::pipeline::Misam {
        crate::pipeline::Misam::from_parts(
            self.selector.clone(),
            self.predictor.clone(),
            self.cost,
            self.threshold,
            self.tile_config(),
        )
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serializer's message on failure.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Parses a bundle, checking the version.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a version mismatch.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let bundle: ModelBundle = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if bundle.version != BUNDLE_VERSION {
            return Err(format!(
                "bundle version {} unsupported (expected {BUNDLE_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Writes the bundle to a file.
    ///
    /// # Errors
    ///
    /// Returns serializer or I/O messages.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        std::fs::write(path, self.to_json()?).map_err(|e| e.to_string())
    }

    /// Reads a bundle from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O, parse or version messages.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let s = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Objective};
    use crate::training;
    use misam_sim::Operand;
    use misam_sparse::gen;

    fn bundle() -> ModelBundle {
        let ds = Dataset::generate(150, 55);
        let sel = training::train_selector(&ds, Objective::Latency, 1);
        let lat = training::train_latency_predictor(&ds, 1);
        ModelBundle::new(
            sel.selector,
            lat.predictor,
            0.2,
            ReconfigCost::default(),
            TileConfig::default(),
        )
    }

    #[test]
    fn json_roundtrip_preserves_bundle() {
        let b = bundle();
        let back = ModelBundle::from_json(&b.to_json().unwrap()).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn loaded_system_predicts_like_the_original() {
        let b = bundle();
        let json = b.to_json().unwrap();
        let mut original = b.clone().into_system();
        let mut restored = ModelBundle::from_json(&json).unwrap().into_system();

        let a = gen::power_law(600, 600, 6.0, 1.5, 3);
        let r1 = original.execute(&a, Operand::Dense { rows: 600, cols: 256 });
        let r2 = restored.execute(&a, Operand::Dense { rows: 600, cols: 256 });
        assert_eq!(r1.predicted, r2.predicted);
        assert_eq!(r1.decision.execute_on, r2.decision.execute_on);
        assert_eq!(r1.sim.cycles, r2.sim.cycles);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let b = bundle();
        let json = b.to_json().unwrap().replace("\"version\": 1", "\"version\": 99");
        let err = ModelBundle::from_json(&json).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("misam_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        let b = bundle();
        b.save(&path).unwrap();
        let back = ModelBundle::load(&path).unwrap();
        assert_eq!(b, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        assert!(ModelBundle::load("/nonexistent/misam.json").is_err());
    }
}
