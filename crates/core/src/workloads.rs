//! The 113-workload evaluation suite (paper §4, *Workloads*).
//!
//! Categories and counts follow Trapezoid's methodology exactly:
//! 15 MS×D, 38 MS×MS, 12 HS×D, 36 HS×MS and 12 HS×HS. (The paper's text
//! says "116" but its own per-category counts sum to 113; we follow the
//! explicit counts.) MS operands are
//! structured-pruned DNN layers (ResNet-50 for MS×D, VGG-16 for MS×MS) at
//! weight densities 0.1 and 0.2 with sequence length 512; HS operands are
//! the twelve Table 3 matrices (regenerated synthetically); HS×MS pairs
//! each HS matrix with 512-column random sparse B at three sparsity
//! levels; HS×HS squares each HS matrix.

use misam_oracle::pool;
use misam_sim::Operand;
use misam_sparse::{gen, suitesparse, CsrMatrix};

/// Workload category, named as in the paper (left operand × right
/// operand regime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Moderately sparse × dense (pruned ResNet-50 × activations).
    MsD,
    /// Moderately sparse × moderately sparse (pruned VGG-16 pairs).
    MsMs,
    /// Highly sparse × dense (SuiteSparse × multi-RHS solver block).
    HsD,
    /// Highly sparse × moderately sparse.
    HsMs,
    /// Highly sparse × highly sparse (A × A self-multiplication).
    HsHs,
}

impl Category {
    /// All categories in paper order.
    pub const ALL: [Category; 5] =
        [Category::MsD, Category::MsMs, Category::HsD, Category::HsMs, Category::HsHs];

    /// The paper's label, e.g. `"HSxMS"`.
    pub fn label(self) -> &'static str {
        match self {
            Category::MsD => "MSxD",
            Category::MsMs => "MSxMS",
            Category::HsD => "HSxD",
            Category::HsMs => "HSxMS",
            Category::HsHs => "HSxHS",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The right-hand operand of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadB {
    /// Dense operand described by shape only.
    Dense {
        /// Rows (= A columns).
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Sparse operand.
    Sparse(CsrMatrix),
}

/// One evaluation workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name (`"resnet50-L3-d0.1"`, `"p2p x p2p"`, …).
    pub name: String,
    /// Sparsity category.
    pub category: Category,
    /// Left operand.
    pub a: CsrMatrix,
    /// Right operand.
    pub b: WorkloadB,
}

impl Workload {
    /// The right operand as a simulator [`Operand`].
    pub fn b_operand(&self) -> Operand<'_> {
        match &self.b {
            WorkloadB::Dense { rows, cols } => Operand::Dense { rows: *rows, cols: *cols },
            WorkloadB::Sparse(m) => Operand::Sparse(m),
        }
    }

    /// True when B is sparse (the SpGEMM path of the baselines).
    pub fn b_is_sparse(&self) -> bool {
        matches!(self.b, WorkloadB::Sparse(_))
    }
}

/// GEMM shapes `(rows, cols)` of representative ResNet-50 layers
/// (filters × im2col depth).
const RESNET50_LAYERS: &[(usize, usize)] = &[
    (64, 147),
    (64, 256),
    (128, 512),
    (256, 512),
    (128, 1152),
    (256, 1024),
    (512, 1024),
    (512, 2048),
];

/// GEMM shapes of representative VGG-16 layers.
const VGG16_LAYERS: &[(usize, usize)] = &[
    (64, 27),
    (64, 576),
    (128, 576),
    (128, 1152),
    (256, 1152),
    (256, 2304),
    (512, 2304),
    (512, 4608),
    (256, 2304),
    (512, 2304),
    (128, 1152),
    (256, 1152),
    (64, 576),
    (512, 4608),
    (128, 576),
    (256, 2304),
    (512, 2304),
    (512, 4608),
    (256, 1152),
];

/// IDs of the twelve Table 3 matrices used in the HS categories (the
/// four heaviest are catalog-only, as in Trapezoid's selection).
pub const HS_IDS: [&str; 12] =
    ["p2p", "sx", "cond", "ore", "em", "sc", "sme", "poi", "wiki", "astro", "cage", "good"];

/// Sequence length of the dense/MS right-hand sides (the paper fixes
/// 512).
pub const SEQ_LEN: usize = 512;

/// Pruning densities applied to DNN layers (STR at 0.1 and 0.2).
pub const DNN_DENSITIES: [f64; 2] = [0.1, 0.2];

/// Sparsity levels of the HS×MS right-hand sides.
pub const HSMS_SPARSITIES: [f64; 3] = [0.2, 0.4, 0.6];

/// Builds the full 113-workload suite. `hs_scale` scales the row count
/// of the SuiteSparse-class matrices (1.0 = published size; tests use
/// small fractions), and `seed` drives every generator. Construction
/// fans out over [`pool::default_threads`] workers.
///
/// # Panics
///
/// Panics if `hs_scale` is not positive.
pub fn suite(hs_scale: f64, seed: u64) -> Vec<Workload> {
    suite_with_threads(hs_scale, seed, pool::default_threads())
}

/// [`suite`] with an explicit worker count.
///
/// Every workload's generator parameters are derived from `seed` and
/// the workload's own name, so each one is an independent job: the
/// twelve shared HS matrices are generated in parallel first, then the
/// per-workload generator calls fan out over the pool. Results come
/// back in input order, so the suite is byte-identical at any thread
/// count (1 = the plain serial loop).
pub fn suite_with_threads(hs_scale: f64, seed: u64, threads: usize) -> Vec<Workload> {
    assert!(hs_scale > 0.0, "scale must be positive");

    // HS matrices shared by the three HS categories, generated once.
    let hs: Vec<(&str, CsrMatrix)> = pool::par_map_with(&HS_IDS, threads, |id| {
        let rec = suitesparse::by_id(id).expect("catalog id");
        (*id, rec.generate_scaled(hs_scale, seed ^ hash(id)))
    });

    // Everything else is an independent job; list them in paper order.
    type Spec<'a> = Box<dyn Fn() -> Workload + Send + Sync + 'a>;
    let mut specs: Vec<Spec<'_>> = Vec::with_capacity(113);

    // 15 MSxD: 8 ResNet-50 shapes x 2 densities, minus the smallest.
    let mut msd = 0;
    'msd: for &(m, k) in RESNET50_LAYERS {
        for d in DNN_DENSITIES {
            if msd == 15 {
                break 'msd;
            }
            specs.push(Box::new(move || Workload {
                name: format!("resnet50-{m}x{k}-d{d}"),
                category: Category::MsD,
                a: gen::pruned_dnn(m, k, d, seed ^ hash(&format!("msd{m}x{k}d{d}"))),
                b: WorkloadB::Dense { rows: k, cols: SEQ_LEN },
            }));
            msd += 1;
        }
    }

    // 38 MSxMS: 19 VGG-16 shapes x 2 densities.
    for (i, &(m, k)) in VGG16_LAYERS.iter().enumerate() {
        for d in DNN_DENSITIES {
            specs.push(Box::new(move || {
                let sa = seed ^ hash(&format!("msmsA{i}d{d}"));
                let sb = seed ^ hash(&format!("msmsB{i}d{d}"));
                Workload {
                    name: format!("vgg16-{m}x{k}-d{d}"),
                    category: Category::MsMs,
                    a: gen::pruned_dnn(m, k, d, sa),
                    b: WorkloadB::Sparse(gen::pruned_dnn(k, SEQ_LEN, d, sb)),
                }
            }));
        }
    }

    // 12 HSxD.
    for (id, a) in &hs {
        specs.push(Box::new(move || Workload {
            name: format!("{id} x dense{SEQ_LEN}"),
            category: Category::HsD,
            a: a.clone(),
            b: WorkloadB::Dense { rows: a.cols(), cols: SEQ_LEN },
        }));
    }

    // 36 HSxMS: each HS matrix x 3 sparsity levels of a 512-column B.
    for (id, a) in &hs {
        for s in HSMS_SPARSITIES {
            specs.push(Box::new(move || {
                let b = gen::uniform_random(
                    a.cols(),
                    SEQ_LEN,
                    1.0 - s,
                    seed ^ hash(&format!("hsms{id}{s}")),
                );
                Workload {
                    name: format!("{id} x ms-s{s}"),
                    category: Category::HsMs,
                    a: a.clone(),
                    b: WorkloadB::Sparse(b),
                }
            }));
        }
    }

    // 12 HSxHS: A x A.
    for (id, a) in &hs {
        specs.push(Box::new(move || Workload {
            name: format!("{id} x {id}"),
            category: Category::HsHs,
            a: a.clone(),
            b: WorkloadB::Sparse(a.clone()),
        }));
    }

    pool::par_map_with(&specs, threads, |spec| spec())
}

/// Tiers of the scale-tiered real-matrix corpus for a `--scale` value in
/// `1..=10000`: the powers of ten up to `scale`, plus `scale` itself when
/// it is not a power of ten. Scale units are 1/10000 of published size,
/// so `scale = 10000` tops out at the full Table 3 dimensions.
///
/// # Panics
///
/// Panics if `scale` is outside `1..=10000`.
pub fn corpus_tiers(scale: u32) -> Vec<u32> {
    assert!((1..=10_000).contains(&scale), "scale must be in 1..=10000, got {scale}");
    let mut tiers: Vec<u32> =
        [1u32, 10, 100, 1_000, 10_000].into_iter().filter(|&t| t <= scale).collect();
    if *tiers.last().expect("tier 1 always present") != scale {
        tiers.push(scale);
    }
    tiers
}

/// The scale-tiered real-matrix corpus: for every tier of
/// [`corpus_tiers`]`(scale)`, the twelve Table 3 matrices regenerated at
/// `tier / 10000` of their published size, each paired with a dense
/// 512-column right-hand side (the HS×D shape out-of-core deployments
/// hit). Tiering gives one corpus spanning four orders of magnitude in
/// matrix size, so ingest/profile pipelines are exercised from
/// cache-resident up to bigger-than-budget matrices with a single
/// integer knob.
pub fn real_matrix_corpus(scale: u32, seed: u64) -> Vec<Workload> {
    real_matrix_corpus_with_threads(scale, seed, pool::default_threads())
}

/// [`real_matrix_corpus`] with an explicit worker count. Each (tier, id)
/// entry is an independent job seeded by `(seed, id, tier)`, so the
/// corpus is byte-identical at any thread count and matrices repeated
/// across tiers still differ (each tier reseeds its generator).
pub fn real_matrix_corpus_with_threads(scale: u32, seed: u64, threads: usize) -> Vec<Workload> {
    let specs: Vec<(u32, &str)> = corpus_tiers(scale)
        .into_iter()
        .flat_map(|t| HS_IDS.into_iter().map(move |id| (t, id)))
        .collect();
    pool::par_map_with(&specs, threads, |&(tier, id)| {
        let rec = suitesparse::by_id(id).expect("catalog id");
        let a = rec.generate_scaled(
            tier as f64 / 10_000.0,
            seed ^ hash(id) ^ hash(&format!("tier{tier}")),
        );
        let b_rows = a.cols();
        Workload {
            name: format!("{id}@{tier}"),
            category: Category::HsD,
            a,
            b: WorkloadB::Dense { rows: b_rows, cols: SEQ_LEN },
        }
    })
}

fn hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_paper_counts() {
        let ws = suite(0.01, 1);
        // The paper's per-category counts sum to 113 (its text says 116).
        assert_eq!(ws.len(), 113);
        let count = |c: Category| ws.iter().filter(|w| w.category == c).count();
        assert_eq!(count(Category::MsD), 15);
        assert_eq!(count(Category::MsMs), 38);
        assert_eq!(count(Category::HsD), 12);
        assert_eq!(count(Category::HsMs), 36);
        assert_eq!(count(Category::HsHs), 12);
    }

    #[test]
    fn dims_are_compatible() {
        for w in suite(0.01, 2) {
            match &w.b {
                WorkloadB::Dense { rows, .. } => assert_eq!(w.a.cols(), *rows, "{}", w.name),
                WorkloadB::Sparse(b) => assert_eq!(w.a.cols(), b.rows(), "{}", w.name),
            }
        }
    }

    #[test]
    fn categories_match_operand_regimes() {
        use misam_sparse::gen::SparsityRegime;
        for w in suite(0.02, 3) {
            let a_regime = SparsityRegime::classify(w.a.density());
            match w.category {
                Category::MsD | Category::MsMs => {
                    assert_eq!(a_regime, SparsityRegime::ModeratelySparse, "{}", w.name)
                }
                // HS matrices scaled down gain density but stay non-dense.
                _ => assert_ne!(a_regime, SparsityRegime::Dense, "{}", w.name),
            }
            if w.category == Category::HsHs {
                if let WorkloadB::Sparse(b) = &w.b {
                    assert_eq!(b, &w.a, "HSxHS must square A");
                }
            }
        }
    }

    #[test]
    fn hsxhs_names_and_self_pairs() {
        let ws = suite(0.01, 4);
        let hshs: Vec<_> = ws.iter().filter(|w| w.category == Category::HsHs).collect();
        assert_eq!(hshs.len(), HS_IDS.len());
        for w in hshs {
            assert!(w.b_is_sparse());
        }
    }

    #[test]
    fn suite_is_deterministic() {
        assert_eq!(suite(0.01, 9), suite(0.01, 9));
        assert_ne!(suite(0.01, 9), suite(0.01, 10));
    }

    #[test]
    fn parallel_suite_is_bit_identical_to_sequential() {
        let serial = suite_with_threads(0.01, 6, 1);
        for threads in [2, 5, 16] {
            assert_eq!(serial, suite_with_threads(0.01, 6, threads));
        }
    }

    #[test]
    fn corpus_tiers_follow_powers_of_ten() {
        assert_eq!(corpus_tiers(1), vec![1]);
        assert_eq!(corpus_tiers(7), vec![1, 7]);
        assert_eq!(corpus_tiers(10), vec![1, 10]);
        assert_eq!(corpus_tiers(250), vec![1, 10, 100, 250]);
        assert_eq!(corpus_tiers(10_000), vec![1, 10, 100, 1_000, 10_000]);
    }

    #[test]
    #[should_panic(expected = "scale must be in 1..=10000")]
    fn corpus_tiers_reject_zero() {
        corpus_tiers(0);
    }

    #[test]
    fn real_matrix_corpus_has_per_tier_entries() {
        let ws = real_matrix_corpus(25, 3);
        // Tiers [1, 10, 25] x 12 catalog matrices.
        assert_eq!(ws.len(), 3 * HS_IDS.len());
        for w in &ws {
            assert_eq!(w.category, Category::HsD);
            assert!(!w.b_is_sparse());
            match &w.b {
                WorkloadB::Dense { rows, cols } => {
                    assert_eq!(*rows, w.a.cols(), "{}", w.name);
                    assert_eq!(*cols, SEQ_LEN);
                }
                WorkloadB::Sparse(_) => unreachable!(),
            }
        }
        // Higher tiers regenerate at larger published fractions.
        let at = |name: &str| ws.iter().find(|w| w.name == name).unwrap();
        assert!(at("p2p@25").a.rows() > at("p2p@1").a.rows());
        assert!(at("p2p@25").a.nnz() > at("p2p@10").a.nnz());
    }

    #[test]
    fn real_matrix_corpus_is_deterministic_and_parallel_safe() {
        let serial = real_matrix_corpus_with_threads(12, 8, 1);
        assert_eq!(serial, real_matrix_corpus(12, 8));
        for threads in [2, 7] {
            assert_eq!(serial, real_matrix_corpus_with_threads(12, 8, threads));
        }
        assert_ne!(serial, real_matrix_corpus(12, 9));
    }

    #[test]
    fn b_operand_matches_variant() {
        let ws = suite(0.01, 5);
        let dense = ws.iter().find(|w| !w.b_is_sparse()).unwrap();
        assert!(matches!(dense.b_operand(), Operand::Dense { .. }));
        let sparse = ws.iter().find(|w| w.b_is_sparse()).unwrap();
        assert!(matches!(sparse.b_operand(), Operand::Sparse(_)));
    }
}
