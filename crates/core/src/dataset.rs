//! Training-corpus generation.
//!
//! The paper curates 6,219 matrices (classifier) and 19,000 matrices
//! (latency predictor) spanning sparsity from 1% to 99%, mixing
//! SuiteSparse-style scientific/graph structure with pruned-DNN layers
//! (§4, *Datasets*). This module regenerates that corpus synthetically:
//! every sample is an `(A, B)` operand pair drawn from the structural
//! families of `misam_sparse::gen`, simulated on all four designs, and
//! recorded with its per-design latency and energy so any [`Objective`]
//! can label it.
//!
//! Generation is **structure-first and streaming**: each sample index
//! derives its own RNG seed (splitmix64 of the corpus seed and the
//! index), so workers claim indices from a shared counter and run the
//! whole pipeline — structure generation, O(rows + cols) profile
//! synthesis, feature extraction, four-design labeling — per sample
//! with no materialized CSR and no serial generation phase. The corpus
//! is byte-identical at any thread count because every sample is a pure
//! function of `(seed, index)`.

use misam_features::{PairFeatures, TileConfig};
use misam_oracle::{pool, LazyLabeler};
use misam_sim::DesignId;
use misam_sparse::{gen, LazyMatrix, LazyOperand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the selector optimizes for — the paper's tunable objective knob
/// (§3.1: "users can prioritize performance metrics based on their
/// application requirements").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Minimize execution latency.
    #[default]
    Latency,
    /// Minimize energy.
    Energy,
    /// Minimize `w * norm_latency + (1 - w) * norm_energy`; the field is
    /// the latency weight in `[0, 1]`.
    Weighted(f64),
}

impl Objective {
    /// Index of the optimal design under this objective.
    pub fn best_design(&self, times_s: &[f64; 4], energies_j: &[f64; 4]) -> usize {
        let score = |i: usize| -> f64 {
            match self {
                Objective::Latency => times_s[i],
                Objective::Energy => energies_j[i],
                Objective::Weighted(w) => {
                    let t_min = times_s.iter().cloned().fold(f64::INFINITY, f64::min);
                    let e_min = energies_j.iter().cloned().fold(f64::INFINITY, f64::min);
                    w * times_s[i] / t_min + (1.0 - w) * energies_j[i] / e_min
                }
            }
        };
        (0..4)
            .min_by(|&a, &b| score(a).partial_cmp(&score(b)).expect("finite scores"))
            .expect("four designs")
    }
}

/// One labeled operand pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Flattened feature vector (`misam_features::FEATURE_NAMES` layout).
    pub features: Vec<f64>,
    /// Simulated latency per design (indexed by `DesignId::index`).
    pub times_s: [f64; 4],
    /// Simulated energy per design.
    pub energies_j: [f64; 4],
    /// Generator family of A (provenance, not a model input).
    pub a_kind: String,
    /// Whether B was dense.
    pub b_dense: bool,
}

impl Sample {
    /// The optimal design label under `objective`.
    pub fn label(&self, objective: Objective) -> usize {
        objective.best_design(&self.times_s, &self.energies_j)
    }
}

/// A labeled corpus.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

/// A corpus serialization or parse failure.
#[derive(Debug)]
pub enum DatasetError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// A CSV line did not parse; `line` is 1-based.
    Csv {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Json(e) => write!(f, "dataset JSON error: {e}"),
            DatasetError::Csv { line, reason } => {
                write!(f, "dataset CSV error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Json(e) => Some(e),
            DatasetError::Csv { .. } => None,
        }
    }
}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Json(e)
    }
}

/// Upper bound on generated nonzeros per operand, keeping corpus
/// generation O(seconds) while spanning the full density range at
/// smaller dimensions.
const MAX_OPERAND_NNZ: f64 = 200_000.0;

/// Mix constant folded into the corpus seed before per-sample
/// derivation.
const CORPUS_SEED_SALT: u64 = 0x0da7_a5e7;

/// Per-sample seed: a splitmix64 finalizer over the corpus seed and the
/// sample index, so sample `i` is a pure function of `(seed, i)` and
/// workers need no shared RNG stream.
fn sample_seed(base: u64, index: usize) -> u64 {
    let mut z =
        base.wrapping_add((index as u64).wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Dataset {
    /// Generates `n` samples with the paper's regime mix, deterministic
    /// in `seed`. The whole pipeline fans out across
    /// [`pool::default_threads`] workers (`MISAM_THREADS` overrides).
    pub fn generate(n: usize, seed: u64) -> Dataset {
        Self::generate_with_threads(n, seed, pool::default_threads())
    }

    /// [`Dataset::generate`] with an explicit worker count.
    ///
    /// Each worker claims a sample index from a shared counter, derives
    /// that index's seed, and runs generation, profile synthesis,
    /// feature extraction and four-design labeling for the sample
    /// before claiming the next — the stages overlap across samples
    /// instead of running as serial phases. No CSR is materialized on
    /// this path (`misam_sparse::lazy::materialization_stats` counts
    /// any fallback), and the corpus is byte-identical for any
    /// `threads` value (1 = the plain serial loop).
    pub fn generate_with_threads(n: usize, seed: u64, threads: usize) -> Dataset {
        Self::generate_with_threads_via(n, seed, threads, misam_oracle::global())
    }

    /// [`Dataset::generate_with_threads`] labeling through an explicit
    /// oracle tier instead of the process-global memoized sim — the
    /// seam that lets corpus generation label via
    /// [`misam_oracle::TieredOracle`] (gated surrogate with cycle-sim
    /// fallback) or a fresh [`misam_oracle::SimOracle`] with its own
    /// cache. A labeler that is a pure function of the operands (every
    /// [`LazyLabeler`] must be) keeps the corpus byte-identical at any
    /// thread count.
    pub fn generate_with_threads_via<L: LazyLabeler>(
        n: usize,
        seed: u64,
        threads: usize,
        labeler: L,
    ) -> Dataset {
        let tile_cfg = TileConfig::default();
        let base = seed ^ CORPUS_SEED_SALT;
        let samples = pool::par_map_indices(n, threads, |i| {
            let mut rng = StdRng::seed_from_u64(sample_seed(base, i));
            let (a, spec, a_kind) = random_pair_lazy(&mut rng);
            let features = spec.features(&a, &tile_cfg).to_vector();
            // Hand the labeler the features just extracted: a tiered
            // labeler gates on them without a second store round-trip.
            let (times_s, energies_j) =
                label_all_lazy(&labeler, &a, spec.lazy_operand(), &features, &tile_cfg);
            Sample { features, times_s, energies_j, a_kind, b_dense: spec.is_dense() }
        });
        Dataset { samples }
    }

    /// [`Dataset::generate`] labeling through the process-global tiered
    /// oracle ([`misam_oracle::tiered_global`]): gated surrogate
    /// predictions with cycle-sim fallback when a bundle is installed,
    /// byte-identical to plain [`Dataset::generate`] when none is.
    pub fn generate_tiered(n: usize, seed: u64) -> Dataset {
        Self::generate_with_threads_via(
            n,
            seed,
            pool::default_threads(),
            misam_oracle::tiered_global(),
        )
    }

    /// Feature rows of every sample.
    pub fn features(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.features.clone()).collect()
    }

    /// Labels of every sample under `objective`.
    pub fn labels(&self, objective: Objective) -> Vec<usize> {
        self.samples.iter().map(|s| s.label(objective)).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Distribution of labels under `objective` (index = design).
    pub fn label_histogram(&self, objective: Objective) -> [usize; 4] {
        let mut h = [0usize; 4];
        for s in &self.samples {
            h[s.label(objective)] += 1;
        }
        h
    }

    /// Renders the corpus as CSV (header + one row per sample): the
    /// feature columns in [`misam_features::FEATURE_NAMES`] order, the
    /// four per-design times and energies, the latency-optimal label,
    /// and the generator provenance. The export format for training
    /// models outside this crate; [`Dataset::from_csv`] parses it back.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for name in misam_features::FEATURE_NAMES {
            out.push_str(name);
            out.push(',');
        }
        out.push_str(
            "time_d1_s,time_d2_s,time_d3_s,time_d4_s,\
             energy_d1_j,energy_d2_j,energy_d3_j,energy_d4_j,\
             best_design,a_kind,b_dense\n",
        );
        for s in &self.samples {
            for v in &s.features {
                out.push_str(&format!("{v},"));
            }
            for v in &s.times_s {
                out.push_str(&format!("{v},"));
            }
            for v in &s.energies_j {
                out.push_str(&format!("{v},"));
            }
            out.push_str(&format!(
                "{},{},{}\n",
                s.label(Objective::Latency) + 1,
                s.a_kind,
                s.b_dense
            ));
        }
        out
    }

    /// Parses a corpus rendered by [`Dataset::to_csv`]. Floats are
    /// printed shortest-roundtrip, so the parse is bit-exact: the
    /// round-trip reconstructs the original dataset (the `best_design`
    /// column is derived, and is validated rather than stored).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Csv`] with the offending 1-based line
    /// for a missing/ragged header or row, or an unparsable field.
    pub fn from_csv(s: &str) -> Result<Self, DatasetError> {
        let nf = misam_features::FEATURE_NAMES.len();
        let expected = nf + 8 + 3;
        let mut lines = s.lines().enumerate();
        let (_, header) =
            lines.next().ok_or(DatasetError::Csv { line: 1, reason: "empty input".into() })?;
        let header_cols = header.split(',').count();
        if header_cols != expected {
            return Err(DatasetError::Csv {
                line: 1,
                reason: format!("header has {header_cols} columns, expected {expected}"),
            });
        }

        let mut samples = Vec::new();
        for (idx, row) in lines {
            let line = idx + 1;
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() != expected {
                return Err(DatasetError::Csv {
                    line,
                    reason: format!("row has {} fields, expected {expected}", fields.len()),
                });
            }
            let float = |j: usize| -> Result<f64, DatasetError> {
                fields[j].parse::<f64>().map_err(|e| DatasetError::Csv {
                    line,
                    reason: format!("column {} ({:?}): {e}", j + 1, fields[j]),
                })
            };
            let features = (0..nf).map(float).collect::<Result<Vec<f64>, _>>()?;
            let mut times_s = [0.0; 4];
            let mut energies_j = [0.0; 4];
            for d in 0..4 {
                times_s[d] = float(nf + d)?;
                energies_j[d] = float(nf + 4 + d)?;
            }
            let label: usize = fields[nf + 8].parse().map_err(|e| DatasetError::Csv {
                line,
                reason: format!("best_design ({:?}): {e}", fields[nf + 8]),
            })?;
            if !(1..=4).contains(&label) {
                return Err(DatasetError::Csv {
                    line,
                    reason: format!("best_design {label} outside 1..=4"),
                });
            }
            let b_dense: bool = fields[expected - 1].parse().map_err(|e| DatasetError::Csv {
                line,
                reason: format!("b_dense ({:?}): {e}", fields[expected - 1]),
            })?;
            samples.push(Sample {
                features,
                times_s,
                energies_j,
                a_kind: fields[nf + 9].to_string(),
                b_dense,
            });
        }
        Ok(Dataset { samples })
    }

    /// Serializes the corpus as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Json`] on serializer failure.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Parses a corpus serialized by [`Dataset::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Json`] on parse failure.
    pub fn from_json(s: &str) -> Result<Self, DatasetError> {
        Ok(serde_json::from_str(s)?)
    }
}

/// An owned right-hand operand drawn by the corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub enum OperandSpec {
    /// Dense operand described by shape.
    Dense {
        /// Rows (= A columns).
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Sparse operand.
    Sparse(misam_sparse::CsrMatrix),
}

impl OperandSpec {
    /// Borrowed simulator operand.
    pub fn operand(&self) -> misam_sim::Operand<'_> {
        match self {
            OperandSpec::Dense { rows, cols } => {
                misam_sim::Operand::Dense { rows: *rows, cols: *cols }
            }
            OperandSpec::Sparse(m) => misam_sim::Operand::Sparse(m),
        }
    }

    /// True for the dense variant.
    pub fn is_dense(&self) -> bool {
        matches!(self, OperandSpec::Dense { .. })
    }

    /// Extracts pair features for `a x self` via the shared profile
    /// store, so corpus labeling profiles each operand once for both
    /// feature extraction and simulation.
    pub fn features(&self, a: &misam_sparse::CsrMatrix, cfg: &TileConfig) -> PairFeatures {
        misam_oracle::profiles::global().pair_features(a, self.operand(), cfg)
    }
}

/// An owned right-hand operand in structure-stage form — the lazy
/// counterpart of [`OperandSpec`] the streaming pipeline draws, which
/// carries no element arrays until someone materializes it.
#[derive(Debug)]
pub enum LazyOperandSpec {
    /// Dense operand described by shape.
    Dense {
        /// Rows (= A columns).
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Sparse operand in structure-stage form.
    Sparse(LazyMatrix),
}

impl LazyOperandSpec {
    /// Borrowed lazy simulator operand.
    pub fn lazy_operand(&self) -> LazyOperand<'_> {
        match self {
            LazyOperandSpec::Dense { rows, cols } => {
                LazyOperand::Dense { rows: *rows, cols: *cols }
            }
            LazyOperandSpec::Sparse(m) => LazyOperand::Sparse(m),
        }
    }

    /// True for the dense variant.
    pub fn is_dense(&self) -> bool {
        matches!(self, LazyOperandSpec::Dense { .. })
    }

    /// Pair features for `a x self` from synthesized profiles alone —
    /// no CSR is materialized.
    pub fn features(&self, a: &LazyMatrix, cfg: &TileConfig) -> PairFeatures {
        misam_oracle::profiles::global().pair_features_lazy(a, self.lazy_operand(), cfg)
    }

    /// Runs the fill stage, converting into the eager [`OperandSpec`].
    pub fn materialize(self) -> OperandSpec {
        match self {
            LazyOperandSpec::Dense { rows, cols } => OperandSpec::Dense { rows, cols },
            LazyOperandSpec::Sparse(m) => OperandSpec::Sparse(m.into_csr()),
        }
    }
}

/// Draws one random operand pair with the corpus's regime mix, in
/// structure-stage form: no element arrays are built. Public so other
/// corpora (e.g. the Figure 13 Trapezoid-dataflow dataset) can use the
/// identical distribution.
pub fn random_pair_lazy(rng: &mut StdRng) -> (LazyMatrix, LazyOperandSpec, String) {
    // Log-uniform dimensions; nnz capped for generation speed.
    let a_rows = log_uniform(rng, 64.0, 4096.0);
    let a_cols = if rng.gen_bool(0.5) { a_rows } else { log_uniform(rng, 64.0, 4096.0) };
    let (a, a_kind) = random_matrix_lazy(rng, a_rows, a_cols);

    let b_dense = rng.gen_bool(0.45);
    let b_cols =
        *[64usize, 128, 256, 512, 1024, 2048].get(rng.gen_range(0..6)).expect("index in range");
    let spec = if b_dense {
        LazyOperandSpec::Dense { rows: a_cols, cols: b_cols }
    } else {
        let (b, _) = random_matrix_lazy(rng, a_cols, b_cols);
        LazyOperandSpec::Sparse(b)
    };
    (a, spec, a_kind)
}

/// [`random_pair_lazy`] with both operands materialized — same RNG
/// stream, same matrices. Kept for consumers that walk elements
/// (ablation sweeps, heterogeneity studies).
pub fn random_pair(rng: &mut StdRng) -> (misam_sparse::CsrMatrix, OperandSpec, String) {
    let (a, spec, a_kind) = random_pair_lazy(rng);
    (a.into_csr(), spec.materialize(), a_kind)
}

fn label_all_lazy<L: LazyLabeler>(
    labeler: &L,
    a: &LazyMatrix,
    b: LazyOperand<'_>,
    features: &[f64],
    tile: &TileConfig,
) -> ([f64; 4], [f64; 4]) {
    let reports = labeler.label_all_lazy_with_features(a, b, features, tile);
    let mut times = [0.0; 4];
    let mut energies = [0.0; 4];
    for (d, r) in DesignId::ALL.iter().zip(&reports) {
        times[d.index()] = r.time_s;
        energies[d.index()] = r.energy_j;
    }
    (times, energies)
}

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> usize {
    let u: f64 = rng.gen_range(lo.ln()..hi.ln());
    u.exp().round() as usize
}

/// Draws a random structure-stage matrix from the structural family
/// mix, with its family name. Density spans the paper's 1%–99%
/// sparsity range, capped so nnz stays tractable.
fn random_matrix_lazy(rng: &mut StdRng, rows: usize, cols: usize) -> (LazyMatrix, String) {
    let cells = (rows * cols) as f64;
    let cap = (MAX_OPERAND_NNZ / cells).min(0.99);
    let seed: u64 = rng.gen();
    let family = rng.gen_range(0..100);
    match family {
        0..=29 => {
            // Uniform across the whole density range (log-uniform).
            let d = log_uniform_f(rng, 1e-4, cap.max(1e-4));
            (gen::uniform_random_lazy(rows, cols, d, seed), "uniform".into())
        }
        30..=41 => {
            let avg = log_uniform_f(rng, 2.0, (cap * cols as f64).max(2.0)).min(cols as f64);
            let alpha = rng.gen_range(1.2..1.8);
            (gen::power_law_lazy(rows, cols, avg, alpha, seed), "power_law".into())
        }
        42..=49 => {
            let target =
                (log_uniform_f(rng, 2.0, (cap * cols as f64).max(2.0)) * rows as f64) as usize;
            (
                gen::rmat_lazy(rows, cols, target.max(1), (0.57, 0.19, 0.19, 0.05), seed),
                "rmat".into(),
            )
        }
        50..=64 => {
            let d = rng.gen_range(0.05f64..0.35).min(cap.max(0.05));
            (gen::pruned_dnn_lazy(rows, cols, d, seed), "pruned_dnn".into())
        }
        65..=76 => {
            let bw = rng.gen_range(1..(cols / 8).max(2));
            let fill = rng.gen_range(0.3..0.9);
            (gen::banded_lazy(rows, cols, bw, fill, seed), "banded".into())
        }
        77..=86 => {
            let heavy = rng.gen_range(0.005f64..0.05);
            let heavy_nnz = ((cap * cols as f64 * 8.0) as usize).clamp(16, cols);
            let light = rng.gen_range(1..8usize);
            (
                gen::imbalanced_rows_lazy(rows, cols, heavy, heavy_nnz, light, seed),
                "imbalanced".into(),
            )
        }
        87..=94 => {
            let deg = rng.gen_range(2..((cap * cols as f64) as usize).clamp(3, 64));
            (gen::regular_degree_lazy(rows, cols, deg, seed), "regular".into())
        }
        _ => {
            let avg = rng.gen_range(1.0..6.0);
            (gen::circuit_lazy(rows, cols, avg, (rows / 256).max(1), seed), "circuit".into())
        }
    }
}

fn log_uniform_f(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo.ln()..hi.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(20, 3);
        let b = Dataset::generate(20, 3);
        assert_eq!(a, b);
        assert_ne!(a, Dataset::generate(20, 4));
    }

    #[test]
    fn parallel_generation_is_bit_identical_to_sequential() {
        let serial = Dataset::generate_with_threads(40, 77, 1);
        for threads in [2, 3, 8] {
            assert_eq!(serial, Dataset::generate_with_threads(40, 77, threads));
        }
    }

    #[test]
    fn lazy_and_eager_pair_draws_agree() {
        // Same RNG stream, same matrices: the eager draw is the lazy
        // draw materialized.
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let (a, spec, kind) = random_pair_lazy(&mut r1);
            let (ea, espec, ekind) = random_pair(&mut r2);
            assert_eq!(kind, ekind);
            assert_eq!(&a.into_csr(), &ea);
            match (spec.materialize(), espec) {
                (OperandSpec::Dense { rows, cols }, OperandSpec::Dense { rows: er, cols: ec }) => {
                    assert_eq!((rows, cols), (er, ec));
                }
                (OperandSpec::Sparse(b), OperandSpec::Sparse(eb)) => assert_eq!(b, eb),
                (lhs, rhs) => panic!("operand kinds diverged: {lhs:?} vs {rhs:?}"),
            }
        }
    }

    #[test]
    fn samples_have_consistent_shape() {
        let ds = Dataset::generate(30, 1);
        assert_eq!(ds.len(), 30);
        for s in &ds.samples {
            assert_eq!(s.features.len(), misam_features::FEATURE_NAMES.len());
            assert!(s.times_s.iter().all(|t| *t > 0.0 && t.is_finite()));
            assert!(s.energies_j.iter().all(|e| *e > 0.0 && e.is_finite()));
        }
    }

    #[test]
    fn corpus_contains_multiple_label_classes() {
        let ds = Dataset::generate(150, 2);
        let hist = ds.label_histogram(Objective::Latency);
        let present = hist.iter().filter(|&&c| c > 0).count();
        assert!(present >= 3, "expected >= 3 design classes, histogram {hist:?}");
    }

    #[test]
    fn objectives_can_disagree() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let energies = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(Objective::Latency.best_design(&times, &energies), 0);
        assert_eq!(Objective::Energy.best_design(&times, &energies), 3);
        let w = Objective::Weighted(0.5).best_design(&times, &energies);
        assert!(w == 1 || w == 2 || w == 0 || w == 3);
    }

    #[test]
    fn weighted_objective_extremes_match_pure_objectives() {
        let ds = Dataset::generate(40, 5);
        for s in &ds.samples {
            assert_eq!(s.label(Objective::Weighted(1.0)), s.label(Objective::Latency));
            assert_eq!(s.label(Objective::Weighted(0.0)), s.label(Objective::Energy));
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = Dataset::generate(5, 6);
        let back = Dataset::from_json(&ds.to_json().unwrap()).unwrap();
        assert_eq!(ds, back);
        assert!(matches!(Dataset::from_json("not json"), Err(DatasetError::Json(_))));
    }

    #[test]
    fn csv_roundtrip_is_bit_exact() {
        let ds = Dataset::generate(12, 21);
        let back = Dataset::from_csv(&ds.to_csv()).unwrap();
        assert_eq!(ds, back, "shortest-roundtrip floats must parse back bit-identical");
    }

    #[test]
    fn csv_parse_reports_typed_errors_with_line_numbers() {
        let ds = Dataset::generate(3, 22);
        let csv = ds.to_csv();

        match Dataset::from_csv("") {
            Err(DatasetError::Csv { line: 1, .. }) => {}
            other => panic!("empty input should fail on line 1, got {other:?}"),
        }
        match Dataset::from_csv("a,b,c\n") {
            Err(DatasetError::Csv { line: 1, reason }) => {
                assert!(reason.contains("header"), "{reason}")
            }
            other => panic!("short header should fail, got {other:?}"),
        }

        // Corrupt one float field of the second data row.
        let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
        let broken = lines[2].replacen(',', ",not-a-number-", 1);
        lines[2] = format!("not-a-float{broken}");
        match Dataset::from_csv(&(lines.join("\n") + "\n")) {
            Err(DatasetError::Csv { line: 3, reason }) => {
                assert!(reason.contains("column 1"), "{reason}")
            }
            other => panic!("corrupt field should fail on line 3, got {other:?}"),
        }

        // A ragged row reports its own line.
        let ragged = format!("{csv}1.0,2.0\n");
        match Dataset::from_csv(&ragged) {
            Err(DatasetError::Csv { line, reason }) => {
                assert_eq!(line, 5);
                assert!(reason.contains("fields"), "{reason}");
            }
            other => panic!("ragged row should fail, got {other:?}"),
        }

        // Errors render through Display and implement Error.
        let err = Dataset::from_csv("").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn csv_export_has_consistent_shape() {
        let ds = Dataset::generate(8, 9);
        let csv = ds.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 9, "header + one row per sample");
        let header_cols = lines[0].split(',').count();
        assert_eq!(header_cols, misam_features::FEATURE_NAMES.len() + 8 + 3);
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header_cols, "ragged row: {row}");
        }
        // Labels are 1-based design numbers.
        for row in &lines[1..] {
            let label: usize = row.split(',').nth(header_cols - 3).unwrap().parse().unwrap();
            assert!((1..=4).contains(&label));
        }
    }

    #[test]
    fn density_mix_spans_regimes() {
        let ds = Dataset::generate(120, 7);
        // A_sparsity is feature 0.
        let sparse = ds.samples.iter().filter(|s| s.features[0] > 0.98).count();
        let densish = ds.samples.iter().filter(|s| s.features[0] < 0.8).count();
        assert!(sparse > 5, "want hypersparse representation, got {sparse}");
        assert!(densish > 4, "want dense-ish representation, got {densish}");
    }
}
