//! One entry point per table/figure of the paper's evaluation.
//!
//! Every function takes an [`ExperimentScale`] so the same code path runs
//! at paper scale from the `misam-bench` binaries and at a reduced scale
//! from the test suite. Results are plain data structs; rendering lives
//! in the binaries. `EXPERIMENTS.md` records paper-vs-measured for each.

use crate::dataset::{self, Dataset, Objective};
use crate::pipeline::Misam;
use crate::training::{self, LatencyTraining, SelectorTraining};
use crate::workloads::{self, Category, Workload};
use misam_baselines::cpu::CpuModel;
use misam_baselines::gpu::GpuModel;
use misam_baselines::trapezoid::{Dataflow, TrapezoidSim};
use misam_features::TileConfig;
use misam_mlkit::cv;
use misam_mlkit::metrics::{self, ConfusionMatrix};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_oracle::{pool, Executor, SimOracle, TrapezoidExecutor};
use misam_recon::cost::ReconfigCost;
use misam_recon::engine::ReconfigEngine;
use misam_recon::stream::{self, StreamConfig};
use misam_sim::{DesignId, Operand};
use misam_sparse::{gen, CsrMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs scaling every experiment between test speed and paper fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Classifier corpus size (paper: 6,219).
    pub classifier_samples: usize,
    /// Latency-predictor corpus size (paper: 19,000).
    pub latency_samples: usize,
    /// Trapezoid-dataflow corpus size for Figure 13.
    pub trapezoid_samples: usize,
    /// Row-count scale of the SuiteSparse-class matrices (1.0 = published
    /// size).
    pub hs_scale: f64,
    /// Cross-validation folds (paper: 10).
    pub kfold: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper-fidelity scale, used by the `misam-bench` binaries.
    pub fn paper() -> Self {
        ExperimentScale {
            classifier_samples: 6219,
            latency_samples: 19_000,
            trapezoid_samples: 4000,
            hs_scale: 0.25,
            kfold: 10,
            seed: 2025,
        }
    }

    /// Reduced scale for the test suite.
    pub fn quick() -> Self {
        ExperimentScale {
            classifier_samples: 250,
            latency_samples: 300,
            trapezoid_samples: 250,
            hs_scale: 0.015,
            kfold: 5,
            seed: 2025,
        }
    }
}

// ------------------------------------------------------------------
// Figure 1: applications across the sparsity space.
// ------------------------------------------------------------------

/// One point of the Figure 1 sparsity map.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityPoint {
    /// Workload name.
    pub name: String,
    /// Category label.
    pub category: Category,
    /// Density of A.
    pub a_density: f64,
    /// Density of B.
    pub b_density: f64,
}

/// Figure 1: where the evaluation workloads sit in (sparsity A,
/// sparsity B) space.
pub fn fig01_sparsity_space(scale: &ExperimentScale) -> Vec<SparsityPoint> {
    workloads::suite(scale.hs_scale, scale.seed)
        .into_iter()
        .map(|w| {
            let b_density = match &w.b {
                workloads::WorkloadB::Dense { .. } => 1.0,
                workloads::WorkloadB::Sparse(b) => b.density(),
            };
            SparsityPoint {
                name: w.name,
                category: w.category,
                a_density: w.a.density(),
                b_density,
            }
        })
        .collect()
}

// ------------------------------------------------------------------
// Figure 3: no single design wins across application workloads.
// ------------------------------------------------------------------

/// One workload's normalized latencies on Designs 1–3 (1.0 = best).
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedRow {
    /// Workload name.
    pub name: String,
    /// Category label.
    pub category: Category,
    /// Normalized latency per design (D1, D2, D3).
    pub normalized: [f64; 3],
}

/// Figure 3: D1/D2/D3 performance normalized to the best design per
/// workload, across a diverse application slice of the suite.
pub fn fig03_design_suite(scale: &ExperimentScale) -> Vec<NormalizedRow> {
    let suite = workloads::suite(scale.hs_scale, scale.seed);
    // A diverse slice: every 7th workload plus all HSxD (the figure's
    // CFD/graph emphasis).
    let selected: Vec<&Workload> = suite
        .iter()
        .enumerate()
        .filter(|(i, w)| i % 7 == 0 || w.category == Category::HsD)
        .map(|(_, w)| w)
        .collect();
    pool::par_map(&selected, |w| {
        let times: Vec<f64> = [DesignId::D1, DesignId::D2, DesignId::D3]
            .iter()
            .map(|&d| misam_oracle::global().execute(&w.a, w.b_operand(), d.index()).time_s)
            .collect();
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        NormalizedRow {
            name: w.name.clone(),
            category: w.category,
            normalized: [times[0] / best, times[1] / best, times[2] / best],
        }
    })
}

// ------------------------------------------------------------------
// Figure 4 / Table 5: selector training.
// ------------------------------------------------------------------

/// Figure 4 and Table 5 artifacts: the trained selector with its ranked
/// feature importances, held-out confusion matrix, accuracy, model size,
/// and k-fold scores.
#[derive(Debug, Clone)]
pub struct SelectorExperiment {
    /// The 70/30 training outcome.
    pub training: SelectorTraining,
    /// K-fold cross-validated accuracies.
    pub kfold_accuracies: Vec<f64>,
    /// Label histogram of the corpus.
    pub label_histogram: [usize; 4],
}

/// Trains and evaluates the design selector (Figure 4 importances,
/// Table 5 confusion, §3.1's 90% accuracy and 6 KB footprint).
pub fn selector_experiment(scale: &ExperimentScale) -> SelectorExperiment {
    let ds = Dataset::generate(scale.classifier_samples, scale.seed);
    let training = training::train_selector(&ds, Objective::Latency, scale.seed);
    let kfold_accuracies =
        training::kfold_selector_accuracy(&ds, Objective::Latency, scale.kfold, scale.seed);
    SelectorExperiment {
        training,
        kfold_accuracies,
        label_histogram: ds.label_histogram(Objective::Latency),
    }
}

// ------------------------------------------------------------------
// Table 4: geomean speedup of the optimal design over the others.
// ------------------------------------------------------------------

/// Table 4: `cell[i][j]` = geometric-mean speedup of design `i+1` over
/// design `j+1`, over the workloads where design `i+1` is optimal
/// (among Designs 1–3; Design 4 is excluded as in the paper).
pub fn tab04_design_speedups(scale: &ExperimentScale) -> [[f64; 3]; 3] {
    let ds = Dataset::generate(scale.classifier_samples, scale.seed);
    let mut ratios: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 3];
    for s in &ds.samples {
        let spmm_times = [s.times_s[0], s.times_s[1], s.times_s[2]];
        let label = s.label(Objective::Latency);
        if label == DesignId::D4.index() {
            continue; // Design 4's niche is disjoint (paper §5.1).
        }
        for j in 0..3 {
            ratios[label][j].push(spmm_times[j] / spmm_times[label]);
        }
    }
    let mut out = [[1.0; 3]; 3];
    for (i, row) in ratios.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            out[i][j] = if cell.is_empty() { f64::NAN } else { metrics::geomean(cell) };
        }
    }
    out
}

// ------------------------------------------------------------------
// Figure 8: the reconfiguration-overhead analysis.
// ------------------------------------------------------------------

/// One Figure 8 workload outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Row {
    /// Workload name (paper uses SuiteSparse-style IDs).
    pub name: String,
    /// Design loaded when the workload arrived.
    pub current: DesignId,
    /// Oracle-best design for the workload.
    pub best: DesignId,
    /// Streamed time staying on `current`, seconds.
    pub t_current_s: f64,
    /// Streamed time on the oracle design (no switch charged), seconds.
    pub t_best_s: f64,
    /// Streamed time of the engine's actual run (switch included).
    pub t_engine_s: f64,
    /// Whether the engine reconfigured.
    pub reconfigured: bool,
    /// Speedup of the engine's run over staying put.
    pub speedup_vs_current: f64,
    /// Slowdown of the engine's run versus the oracle.
    pub slowdown_vs_best: f64,
}

/// Figure 8 output: per-workload rows plus the two headline geomeans
/// (paper: 2.74x where reconfiguration occurs, 1.02x slowdown where the
/// engine stays put; cg15 reaches 10.76x).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Result {
    /// Per-workload outcomes, in stream order.
    pub rows: Vec<Fig08Row>,
    /// Geomean speedup over rows where the engine reconfigured.
    pub geomean_speedup_reconfigured: f64,
    /// Geomean slowdown (vs oracle) over rows where it stayed put.
    pub geomean_slowdown_stayed: f64,
}

/// Figure 8: streams a sequence of large workloads through the engine,
/// comparing staying on the incumbent design, the oracle design, and the
/// engine's cost-aware choice.
pub fn fig08_reconfig(scale: &ExperimentScale) -> Fig08Result {
    // The engine's latency model here is the analytic (closed-form)
    // estimator: Figure 8's streamed matrices are orders of magnitude
    // larger than any training corpus, where a leaf-value regression
    // tree cannot extrapolate. Figure 9 separately validates the trained
    // tree inside its distribution.
    let mut engine = ReconfigEngine::new(
        misam_recon::engine::AnalyticLatencyModel,
        ReconfigCost::default(),
        0.2,
    );
    engine.force_load(DesignId::D1);

    // Figure 8's workloads are the largest in the paper (cg15 is 1.5M
    // rows) — reconfiguration only amortizes at size, so this experiment
    // runs at a larger matrix scale than the corpus-driven ones.
    let s = (scale.hs_scale * 10.0).min(1.0);
    let seed = scale.seed;
    let rows_of = |base: usize| ((base as f64 * s) as usize).max(1500);

    // Large streamed workloads in the spirit of the figure: cg15-like
    // (1.5M rows) plus graph/FEM/circuit matrices. The stream opens with
    // dense-B (SpMM) workloads whose best designs share the loaded
    // bitstream family, then turns sparse-sparse — the character change
    // the engine must judge.
    let mk: Vec<(String, CsrMatrix, Option<CsrMatrix>)> = vec![
        (
            "del19".into(),
            gen::regular_degree(rows_of(524_288), rows_of(524_288), 6, seed ^ 1),
            None,
        ),
        ("sme".into(), gen::banded(rows_of(300_000), rows_of(300_000), 36, 0.7, seed ^ 8), None),
        (
            "gup".into(),
            gen::imbalanced_rows(rows_of(420_000), rows_of(420_000), 0.02, 900, 4, seed ^ 9),
            None,
        ),
        ("poi".into(), gen::banded(rows_of(135_000), rows_of(135_000), 18, 0.7, seed ^ 12), None),
        (
            "cg15".into(),
            gen::regular_degree(rows_of(1_500_000), rows_of(1_500_000), 8, seed ^ 6),
            Some(gen::regular_degree(rows_of(1_500_000), rows_of(1_500_000), 8, seed ^ 7)),
        ),
        (
            "wiki".into(),
            gen::power_law(rows_of(220_000), rows_of(220_000), 12.0, 1.5, seed ^ 2),
            Some(gen::power_law(rows_of(220_000), rows_of(220_000), 12.0, 1.5, seed ^ 3)),
        ),
        (
            "apa2".into(),
            gen::banded(rows_of(715_176), rows_of(715_176), 2, 0.8, seed ^ 4),
            Some(gen::banded(rows_of(715_176), rows_of(715_176), 2, 0.8, seed ^ 5)),
        ),
        (
            "cond".into(),
            gen::power_law(rows_of(230_000), rows_of(230_000), 8.0, 1.45, seed ^ 10),
            Some(gen::power_law(rows_of(230_000), rows_of(230_000), 8.0, 1.45, seed ^ 11)),
        ),
    ];

    let mut rows = Vec::new();
    for (name, a, b_sparse) in &mk {
        let b = match b_sparse {
            Some(bm) => Operand::Sparse(bm),
            None => Operand::Dense { rows: a.cols(), cols: 512 },
        };
        let tile_cfg = StreamConfig {
            tile_min_rows: (a.rows() / 8).max(500),
            tile_max_rows: (a.rows() / 3).max(1000),
            seed,
            features: TileConfig::default(),
        };

        let current = engine.current().expect("engine preloaded");
        // The four fixed-design probes stream identical tiles (same
        // seed), so they fan out across cores and share the memoized
        // oracle's per-tile simulations with each other, the
        // `t_current_s` probe, and the engine's real run below.
        let probes = pool::par_map(&DesignId::ALL, |&d| stream_fixed(a, b, d, &tile_cfg));
        let t_current_s = probes[current.index()];
        let (best, t_best_s) = DesignId::ALL
            .iter()
            .zip(&probes)
            .map(|(&d, &t)| (d, t))
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("four designs");

        // The engine's actual run mutates its state for the next
        // workload, exactly like the figure's left-to-right sequence.
        let before = engine.reconfig_count();
        let selector_best = best; // classifier assumed right; §5.1 covers its errors
        let out =
            stream::run(a, b, &tile_cfg, misam_oracle::global(), &mut engine, |_| selector_best);
        let reconfigured = engine.reconfig_count() > before;
        let t_engine_s = out.total_time_s();

        rows.push(Fig08Row {
            name: name.clone(),
            current,
            best,
            t_current_s,
            t_best_s,
            t_engine_s,
            reconfigured,
            speedup_vs_current: t_current_s / t_engine_s,
            slowdown_vs_best: t_engine_s / t_best_s,
        });
    }

    let sp: Vec<f64> =
        rows.iter().filter(|r| r.reconfigured).map(|r| r.speedup_vs_current).collect();
    let sl: Vec<f64> =
        rows.iter().filter(|r| !r.reconfigured).map(|r| r.slowdown_vs_best).collect();
    Fig08Result {
        rows,
        geomean_speedup_reconfigured: if sp.is_empty() { f64::NAN } else { metrics::geomean(&sp) },
        geomean_slowdown_stayed: if sl.is_empty() { f64::NAN } else { metrics::geomean(&sl) },
    }
}

/// Streams a workload on one fixed design with free switching (oracle
/// probe used by the Figure 8 comparison).
fn stream_fixed(a: &CsrMatrix, b: Operand<'_>, design: DesignId, cfg: &StreamConfig) -> f64 {
    stream_probe(a, b, design, cfg, misam_oracle::global())
}

/// [`stream_fixed`] through an explicit oracle tier: the memoized cycle
/// sim for the figure probes, or [`misam_oracle::TieredOracle`] when a
/// sweep wants gated-surrogate answers with sim fallback.
pub fn stream_probe<E>(
    a: &CsrMatrix,
    b: Operand<'_>,
    design: DesignId,
    cfg: &StreamConfig,
    executor: &E,
) -> f64
where
    E: misam_oracle::Executor<Report = misam_sim::SimReport>,
{
    let flat = |_: &misam_features::PairFeatures, _: DesignId| 1.0;
    let mut e = ReconfigEngine::new(flat, ReconfigCost::zero(), 0.2);
    e.force_load(design);
    stream::run(a, b, cfg, executor, &mut e, |_| design).execute_time_s
}

// ------------------------------------------------------------------
// Figure 9: latency-predictor residuals.
// ------------------------------------------------------------------

/// Figure 9: trains the latency predictor and reports its held-out
/// residual statistics (paper: MAE 0.344, R² 0.978 on log-latency).
pub fn fig09_latency_predictor(scale: &ExperimentScale) -> LatencyTraining {
    let ds = Dataset::generate(scale.latency_samples, scale.seed ^ 0x1a7e);
    training::train_latency_predictor(&ds, scale.seed)
}

// ------------------------------------------------------------------
// Figures 10 & 11: performance and energy versus CPU / GPU / Trapezoid.
// ------------------------------------------------------------------

/// Per-category geometric-mean gains of Misam over the baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryGains {
    /// Workload category.
    pub category: Category,
    /// Geomean speedup over the MKL-class CPU.
    pub speedup_vs_cpu: f64,
    /// Geomean speedup over the cuSPARSE-class GPU.
    pub speedup_vs_gpu: f64,
    /// Geomean speedup over Trapezoid's fixed dataflows (geomean across
    /// the three fixed choices).
    pub speedup_vs_trapezoid: f64,
    /// Geomean energy-efficiency gain over the CPU.
    pub energy_vs_cpu: f64,
    /// Geomean energy-efficiency gain over the GPU.
    pub energy_vs_gpu: f64,
}

/// Figures 10 and 11: runs the 113-workload suite through Misam (free
/// switching, as each workload is standalone) and the three baselines.
pub fn fig10_fig11_gains(scale: &ExperimentScale) -> Vec<CategoryGains> {
    let suite = workloads::suite(scale.hs_scale, scale.seed);
    let (mut misam, _, _) = Misam::builder()
        .classifier_samples(scale.classifier_samples)
        .latency_samples(scale.latency_samples.min(scale.classifier_samples * 2))
        .seed(scale.seed)
        .reconfig_cost(ReconfigCost::zero())
        .train_with_reports();

    let cpu = CpuModel::default();
    let gpu = GpuModel::default();
    let trap = TrapezoidSim::default();

    let mut per_cat: std::collections::BTreeMap<Category, Vec<[f64; 5]>> =
        std::collections::BTreeMap::new();

    // Parallel pass: prewarm the process-wide oracle (all four designs
    // per workload) and price the baselines. The stateful Misam pass
    // below then answers every simulation from the cache.
    let baselines = pool::par_map(&suite, |w| {
        misam_oracle::global().execute_all(&w.a, w.b_operand());
        baseline_times(w, &cpu, &gpu, &trap)
    });

    for (w, (c, g, t)) in suite.iter().zip(baselines) {
        let r = misam.execute(&w.a, w.b_operand());
        let (t_m, e_m) = (r.sim.time_s, r.sim.energy_j);

        per_cat.entry(w.category).or_default().push([
            c.0 / t_m,
            g.0 / t_m,
            t / t_m,
            c.1 / e_m,
            g.1 / e_m,
        ]);
    }

    Category::ALL
        .iter()
        .filter_map(|&cat| {
            let rows = per_cat.get(&cat)?;
            let col = |i: usize| {
                let v: Vec<f64> = rows.iter().map(|r| r[i]).collect();
                metrics::geomean(&v)
            };
            Some(CategoryGains {
                category: cat,
                speedup_vs_cpu: col(0),
                speedup_vs_gpu: col(1),
                speedup_vs_trapezoid: col(2),
                energy_vs_cpu: col(3),
                energy_vs_gpu: col(4),
            })
        })
        .collect()
}

/// Baseline `(cpu (time, energy), gpu (time, energy), trapezoid-fixed
/// time)` for one workload.
fn baseline_times(
    w: &Workload,
    cpu: &CpuModel,
    gpu: &GpuModel,
    trap: &TrapezoidSim,
) -> ((f64, f64), (f64, f64), f64) {
    match &w.b {
        workloads::WorkloadB::Dense { rows, cols } => {
            let c = cpu.spmm(&w.a, *rows, *cols);
            let g = gpu.spmm(&w.a, *rows, *cols);
            let t_times: Vec<f64> = trap
                .run_all_dense_b(&w.a, *rows, *cols)
                .into_iter()
                .map(|(_, r)| r.time_s)
                .collect();
            ((c.time_s, c.energy_j), (g.time_s, g.energy_j), metrics::geomean(&t_times))
        }
        workloads::WorkloadB::Sparse(b) => {
            let c = cpu.spgemm(&w.a, b);
            let g = gpu.spgemm(&w.a, b);
            let t_times: Vec<f64> =
                trap.run_all(&w.a, b).into_iter().map(|(_, r)| r.time_s).collect();
            ((c.time_s, c.energy_j), (g.time_s, g.energy_j), metrics::geomean(&t_times))
        }
    }
}

// ------------------------------------------------------------------
// Figure 12: end-to-end breakdown.
// ------------------------------------------------------------------

/// One Figure 12 breakdown row.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Workload name.
    pub name: String,
    /// Category label.
    pub category: Category,
    /// Feature-extraction wall time, seconds.
    pub preprocess_s: f64,
    /// Classifier + engine wall time, seconds.
    pub inference_s: f64,
    /// Simulated hardware execution, seconds.
    pub execute_s: f64,
}

impl BreakdownRow {
    /// Host-stage fraction of end-to-end time.
    pub fn host_fraction(&self) -> f64 {
        let total = self.preprocess_s + self.inference_s + self.execute_s;
        if total > 0.0 {
            (self.preprocess_s + self.inference_s) / total
        } else {
            0.0
        }
    }
}

/// Figure 12: measured preprocessing/inference/execution breakdown on
/// one representative workload per category (paper: inference ≈ 0.1%,
/// preprocessing ≈ 2%).
pub fn fig12_breakdown(scale: &ExperimentScale) -> Vec<BreakdownRow> {
    let suite = workloads::suite(scale.hs_scale, scale.seed);
    let (mut misam, _, _) = Misam::builder()
        .classifier_samples(scale.classifier_samples.min(1200))
        .latency_samples(scale.latency_samples.min(1500))
        .seed(scale.seed)
        .reconfig_cost(ReconfigCost::zero())
        .train_with_reports();

    Category::ALL
        .iter()
        .filter_map(|&cat| {
            // Largest workload of the category = most representative of
            // the amortization the paper reports.
            let w = suite.iter().filter(|w| w.category == cat).max_by_key(|w| w.a.nnz())?;
            let r = misam.execute(&w.a, w.b_operand());
            Some(BreakdownRow {
                name: w.name.clone(),
                category: cat,
                preprocess_s: r.timings.preprocess_s,
                inference_s: r.timings.inference_s,
                execute_s: r.sim.time_s,
            })
        })
        .collect()
}

// ------------------------------------------------------------------
// Figure 13: Misam on Trapezoid's dataflows.
// ------------------------------------------------------------------

/// Figure 13 artifacts: the dataflow selector trained on Trapezoid's
/// three dataflows.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Validation accuracy of the 3-class dataflow selector (paper: 92%).
    pub accuracy: f64,
    /// Validation confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Maximum speedup of the optimal dataflow over the worst on a
    /// validation workload (paper reports up to 15.8x).
    pub max_speedup: f64,
    /// Normalized per-dataflow latencies for a slice of workloads
    /// (1.0 = best), the figure's bars.
    pub rows: Vec<NormalizedRow>,
}

/// Figure 13: trains Misam's selector against the Trapezoid simulator's
/// three dataflows, demonstrating the framework's portability (§6.3).
pub fn fig13_trapezoid(scale: &ExperimentScale) -> Fig13Result {
    let trap = TrapezoidSim::default();
    let tile_cfg = TileConfig::default();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x7a0e);

    // Serial draws, parallel labeling: the Trapezoid oracle answers each
    // (pair, dataflow) once even if the corpus repeats a pair.
    let pairs: Vec<(CsrMatrix, dataset::OperandSpec)> = (0..scale.trapezoid_samples)
        .map(|_| {
            let (a, spec, _) = dataset::random_pair(&mut rng);
            (a, spec)
        })
        .collect();
    let trap_oracle = SimOracle::new(TrapezoidExecutor { sim: trap.clone() });
    let labeled = pool::par_map(&pairs, |(a, spec)| {
        let t: Vec<f64> =
            trap_oracle.execute_all(a, spec.operand()).iter().map(|r| r.time_s).collect();
        let label = (0..3)
            .min_by(|&i, &j| t[i].partial_cmp(&t[j]).expect("finite"))
            .expect("three dataflows");
        (spec.features(a, &tile_cfg).to_vector(), label, [t[0], t[1], t[2]])
    });
    let mut x: Vec<Vec<f64>> = Vec::with_capacity(labeled.len());
    let mut y: Vec<usize> = Vec::with_capacity(labeled.len());
    let mut times: Vec<[f64; 3]> = Vec::with_capacity(labeled.len());
    for (f, label, t) in labeled {
        x.push(f);
        y.push(label);
        times.push(t);
    }

    let m = misam_mlkit::matrix::FeatureMatrix::from_rows(&x);
    let split = cv::train_test_split(x.len(), 0.7, scale.seed);
    let xt = m.gather(&split.train);
    let yt = cv::gather(&y, &split.train);
    let params = TreeParams {
        max_depth: 10,
        min_samples_leaf: 3,
        min_samples_split: 6,
        min_gain: 1e-6,
        class_weights: Some(metrics::inverse_frequency_weights(&yt, 3)),
    };
    let tree = DecisionTree::fit_matrix(&xt, &yt, 3, &params);

    let xv = m.gather(&split.validation);
    let yv = cv::gather(&y, &split.validation);
    let pred = tree.predict_batch_matrix(&xv);
    let accuracy = metrics::accuracy(&pred, &yv);
    let confusion = ConfusionMatrix::new(&pred, &yv, 3);

    let max_speedup = split
        .validation
        .iter()
        .map(|&i| {
            let t = times[i];
            let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst = t.iter().cloned().fold(0.0, f64::max);
            worst / best
        })
        .fold(0.0, f64::max);

    // Normalized bars on pruned ConvNeXt-style layers — the paper's
    // observation that "different layers of ConvNeXt benefit from
    // different dataflows". 1x1-conv GEMM shapes of ConvNeXt-T blocks.
    const CONVNEXT_LAYERS: &[(usize, usize)] =
        &[(96, 384), (384, 96), (192, 768), (768, 192), (384, 1536), (1536, 384), (768, 3072)];
    let rows = CONVNEXT_LAYERS
        .iter()
        .enumerate()
        .map(|(i, &(m, k))| {
            let a = gen::pruned_dnn(m, k, 0.2, scale.seed ^ (0xc0_0e + i as u64));
            let b = gen::pruned_dnn(k, 512, 0.2, scale.seed ^ (0xc1_0e + i as u64));
            let t: Vec<f64> = trap.run_all(&a, &b).into_iter().map(|(_, r)| r.time_s).collect();
            let best = t.iter().cloned().fold(f64::INFINITY, f64::min);
            NormalizedRow {
                name: format!("convnext-{m}x{k}-d0.2"),
                category: Category::MsMs,
                normalized: [t[0] / best, t[1] / best, t[2] / best],
            }
        })
        .collect();

    Fig13Result { accuracy, confusion, max_speedup, rows }
}

/// The Figure 13 dataflow names in index order (for rendering).
pub fn dataflow_names() -> [&'static str; 3] {
    ["row-wise", "inner-product", "outer-product"]
}

/// Sanity accessor: Dataflow order matches `dataflow_names`.
pub fn dataflow_order() -> [Dataflow; 3] {
    Dataflow::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn fig01_covers_all_categories_and_regimes() {
        let pts = fig01_sparsity_space(&quick());
        assert_eq!(pts.len(), 113);
        let dense_b = pts.iter().filter(|p| p.b_density == 1.0).count();
        assert_eq!(dense_b, 15 + 12); // MSxD + HSxD
        assert!(pts.iter().any(|p| p.a_density < 0.02));
    }

    #[test]
    fn fig03_shows_no_universal_winner() {
        let rows = fig03_design_suite(&quick());
        assert!(!rows.is_empty());
        for r in &rows {
            let best = r.normalized.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((best - 1.0).abs() < 1e-9, "{}: {:?}", r.name, r.normalized);
        }
        // At least two distinct designs win somewhere.
        let winners: std::collections::HashSet<usize> = rows
            .iter()
            .map(|r| {
                r.normalized
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
            })
            .collect();
        assert!(winners.len() >= 2, "winners {winners:?}");
    }

    #[test]
    fn tab04_diagonal_is_one_and_offdiag_ge_one() {
        let t = tab04_design_speedups(&quick());
        for (i, row) in t.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    continue; // class absent at this scale
                }
                if i == j {
                    assert!((v - 1.0).abs() < 1e-9);
                } else {
                    assert!(v >= 1.0, "optimal design must not lose: t[{i}][{j}] = {v}");
                }
            }
        }
    }

    #[test]
    fn fig09_predictor_quality_holds_at_small_scale() {
        let t = fig09_latency_predictor(&quick());
        assert!(t.r2 > 0.75, "R2 {:.3}", t.r2);
        assert!(t.mae < 0.7, "MAE {:.3}", t.mae);
    }

    #[test]
    fn fig12_host_stages_are_minor() {
        let rows = fig12_breakdown(&quick());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // The robust Figure 12 property at any scale: inference is a
            // sliver of end-to-end time (paper: ~0.1%). Preprocessing is
            // O(nnz) wall time, so its share only drops at the full
            // matrix scale the mid/paper binaries use.
            let total = r.preprocess_s + r.inference_s + r.execute_s;
            assert!(
                r.inference_s < 0.05 * total,
                "{}: inference fraction {:.3}",
                r.name,
                r.inference_s / total
            );
            assert!(r.preprocess_s > 0.0 && r.execute_s > 0.0);
        }
    }

    #[test]
    fn dataflow_rendering_tables_agree() {
        let names = dataflow_names();
        for (i, d) in dataflow_order().iter().enumerate() {
            assert_eq!(names[i], d.to_string());
        }
    }
}
