//! Criterion bench of the end-to-end pipeline: one trained system,
//! repeated execute() calls — the per-workload host cost of Misam.

use criterion::{criterion_group, criterion_main, Criterion};
use misam::pipeline::Misam;
use misam_recon::cost::ReconfigCost;
use misam_sim::Operand;
use misam_sparse::gen;
use std::hint::black_box;

fn bench_execute(c: &mut Criterion) {
    let mut misam = Misam::builder()
        .classifier_samples(400)
        .latency_samples(500)
        .seed(1)
        .reconfig_cost(ReconfigCost::zero())
        .train();
    let a = gen::power_law(4096, 4096, 8.0, 1.5, 2);
    let bs = gen::power_law(4096, 4096, 8.0, 1.5, 3);

    c.bench_function("pipeline_execute_dense_b", |b| {
        b.iter(|| misam.execute(black_box(&a), Operand::Dense { rows: 4096, cols: 512 }))
    });
    c.bench_function("pipeline_execute_sparse_b", |b| {
        b.iter(|| misam.execute(black_box(&a), Operand::Sparse(&bs)))
    });
}

fn bench_training(c: &mut Criterion) {
    c.bench_function("train_small_system", |b| {
        b.iter(|| {
            Misam::builder().classifier_samples(120).latency_samples(150).seed(black_box(9)).train()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_execute, bench_training
}
criterion_main!(benches);
