//! Criterion benches of the out-of-core storage path: streaming
//! `.mtx` → slab ingest and the chunked profile fold over the mmap
//! view. The `bench_ingest` binary is the JSON-writing twin with RSS
//! cap assertions; this harness gives statistical timings on a small
//! fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use misam_sim::{design_pe_counts, design_row_pe_counts};
use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::MatrixProfile;
use std::hint::black_box;
use std::io::Write;

/// Writes a small deterministic coordinate `.mtx` (2k × 2k, ~40k
/// entries) and returns its path alongside a slab ingested from it.
fn fixture(dir: &std::path::Path) -> (std::path::PathBuf, SlabMatrix) {
    let rows = 2_000usize;
    let nnz_of = |r: usize| 12 + (r % 17);
    let nnz: usize = (0..rows).map(nnz_of).sum();
    let mtx = dir.join("fixture.mtx");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&mtx).expect("create mtx"));
    writeln!(w, "%%MatrixMarket matrix coordinate real general").unwrap();
    writeln!(w, "{rows} {rows} {nnz}").unwrap();
    for r in 0..rows {
        for j in 0..nnz_of(r) {
            let c = (r + (j + 1) * 131) % rows;
            writeln!(w, "{} {} {}", r + 1, c + 1, (r + j) % 7 + 1).unwrap();
        }
    }
    w.flush().unwrap();
    drop(w);
    let msab = dir.join("fixture.msab");
    slab::ingest_matrix_market_with_budget(&mtx, &msab, nnz / 4).expect("ingest fixture");
    (mtx, SlabMatrix::open(&msab).expect("open fixture slab"))
}

fn bench_ingest(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("misam_bench_ingest_cr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let (mtx, slab_matrix) = fixture(&dir);

    let out = dir.join("rewritten.msab");
    c.bench_function("ingest_mtx_to_slab_2000", |b| {
        b.iter(|| slab::ingest_matrix_market_with_budget(black_box(&mtx), &out, 10_000).unwrap())
    });

    let (col_pes, row_pes) = (design_pe_counts(), design_row_pe_counts());
    c.bench_function("profile_streaming_slab_2000", |b| {
        b.iter(|| {
            MatrixProfile::build_streaming(black_box(slab_matrix.as_ref()), 256, &col_pes, &row_pes)
        })
    });

    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest
}
criterion_main!(benches);
