//! Criterion benches of the cycle-level simulator: the PE scheduler and
//! the end-to-end per-design engine (the cost that dominates corpus
//! generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use misam_sim::{
    design_pe_counts, schedule, simulate, simulate_profiled, DesignConfig, DesignId, Operand,
};
use misam_sparse::{gen, MatrixProfile};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let a = gen::power_law(8192, 8192, 12.0, 1.5, 1);
    let mut g = c.benchmark_group("schedule_98k_nnz");
    for id in [DesignId::D1, DesignId::D2, DesignId::D3] {
        let cfg = DesignConfig::of(id);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{id}")), &cfg, |b, cfg| {
            b.iter(|| schedule::schedule_uniform(black_box(&a), cfg, 64))
        });
    }
    g.finish();
}

fn bench_profiled_schedulers(c: &mut Criterion) {
    // The closed-form fold the profile layer substitutes for the walk
    // above — same matrix, same designs, O(PEs) instead of O(nnz).
    let a = gen::power_law(8192, 8192, 12.0, 1.5, 1);
    let p = MatrixProfile::build_with_pes(&a, &design_pe_counts());
    let mut g = c.benchmark_group("schedule_98k_nnz_profiled");
    for id in [DesignId::D1, DesignId::D2, DesignId::D3] {
        let cfg = DesignConfig::of(id);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{id}")), &cfg, |b, cfg| {
            b.iter(|| schedule::schedule_uniform_profiled(black_box(&p), cfg, 64))
        });
    }
    g.finish();
    c.bench_function("profile_build_98k_nnz", |b| {
        b.iter(|| MatrixProfile::build_with_pes(black_box(&a), &design_pe_counts()))
    });
}

fn bench_simulate(c: &mut Criterion) {
    let a = gen::uniform_random(4096, 4096, 0.005, 2);
    let bs = gen::uniform_random(4096, 512, 0.2, 3);
    let mut g = c.benchmark_group("simulate_design");
    for id in DesignId::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{id}")), &id, |b, &id| {
            b.iter(|| simulate(black_box(&a), Operand::Sparse(&bs), id))
        });
    }
    g.finish();
}

fn bench_simulate_profiled(c: &mut Criterion) {
    let a = gen::uniform_random(4096, 4096, 0.005, 2);
    let bs = gen::uniform_random(4096, 512, 0.2, 3);
    let pes = design_pe_counts();
    let ap = MatrixProfile::build_with_pes(&a, &pes);
    let bp = MatrixProfile::build_with_pes(&bs, &pes);
    let mut g = c.benchmark_group("simulate_design_profiled");
    for id in DesignId::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{id}")), &id, |b, &id| {
            b.iter(|| simulate_profiled(black_box(&a), &ap, Operand::Sparse(&bs), Some(&bp), id))
        });
    }
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators_100k_nnz");
    g.bench_function("uniform", |b| {
        b.iter(|| gen::uniform_random(black_box(2048), 2048, 0.024, 7))
    });
    g.bench_function("power_law", |b| {
        b.iter(|| gen::power_law(black_box(2048), 2048, 48.0, 1.5, 7))
    });
    g.bench_function("pruned_dnn", |b| b.iter(|| gen::pruned_dnn(black_box(2048), 2048, 0.024, 7)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers, bench_profiled_schedulers, bench_simulate,
        bench_simulate_profiled, bench_generators
}
criterion_main!(benches);
