//! Criterion benches of the SpGEMM reference kernels — the functional
//! substrate every simulated design is validated against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use misam_sparse::{gen, kernels};
use std::hint::black_box;

fn bench_dataflows(c: &mut Criterion) {
    let mut g = c.benchmark_group("spgemm_dataflows");
    for &(name, density) in &[("hs", 0.002), ("ms", 0.05)] {
        let a = gen::uniform_random(1024, 1024, density, 1);
        let b = gen::uniform_random(1024, 1024, density, 2);
        let b_csc = b.to_csc();
        let a_csc = a.to_csc();
        g.bench_with_input(BenchmarkId::new("rowwise", name), &(), |bench, ()| {
            bench.iter(|| kernels::spgemm_rowwise(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("inner", name), &(), |bench, ()| {
            bench.iter(|| kernels::spgemm_inner(black_box(&a), black_box(&b_csc)))
        });
        g.bench_with_input(BenchmarkId::new("outer", name), &(), |bench, ()| {
            bench.iter(|| kernels::spgemm_outer(black_box(&a_csc), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let a = gen::power_law(2048, 2048, 8.0, 1.5, 3);
    let b = gen::dense_buffer(2048, 128, 4);
    c.bench_function("spmm_2048x2048x128", |bench| {
        bench.iter(|| kernels::spmm(black_box(&a), black_box(&b), 2048, 128).unwrap())
    });
}

fn bench_flop_counting(c: &mut Criterion) {
    let a = gen::power_law(4096, 4096, 10.0, 1.5, 5);
    let b = gen::power_law(4096, 4096, 10.0, 1.5, 6);
    c.bench_function("spgemm_flops_symbolic", |bench| {
        bench.iter(|| kernels::spgemm_flops(black_box(&a), black_box(&b)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dataflows, bench_spmm, bench_flop_counting
}
criterion_main!(benches);
