//! Criterion bench of the execution-oracle layer: corpus labeling
//! throughput on one thread versus every core, plus the price of a
//! cache hit. `MISAM_THREADS` does not affect this bench — thread
//! counts are pinned explicitly so the two points are comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use misam::dataset::Dataset;
use misam_oracle::{pool, Executor, FpgaSim, SimOracle};
use misam_sim::Operand;
use misam_sparse::gen;
use std::hint::black_box;

fn bench_corpus_labeling(c: &mut Criterion) {
    let all = pool::default_threads();
    let mut g = c.benchmark_group("corpus_labeling");
    for threads in [1, all] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| Dataset::generate_with_threads(black_box(48), 1234, threads))
        });
    }
    g.finish();
}

fn bench_suite_fanout(c: &mut Criterion) {
    let suite: Vec<_> = (0..24)
        .map(|s| {
            (gen::power_law(512, 512, 6.0, 1.4, s), gen::power_law(512, 256, 6.0, 1.4, 90 + s))
        })
        .collect();
    let all = pool::default_threads();
    let mut g = c.benchmark_group("suite_fanout");
    for threads in [1, all] {
        // A fresh (uncached) executor per iteration measures raw
        // simulation fan-out, not memoization.
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                pool::par_map_with(&suite, threads, |(a, bm)| {
                    FpgaSim.execute_all(a, Operand::Sparse(bm))
                })
            })
        });
    }
    g.finish();
}

fn bench_profile_store(c: &mut Criterion) {
    // Steady-state profile lookup (fingerprint + sharded map read)
    // versus rebuilding the structural profile from scratch — the cost
    // the shared store removes from every feature/sim revisit.
    let a = gen::power_law(4096, 4096, 12.0, 1.5, 17);
    let store = misam_oracle::profiles::ProfileStore::new();
    store.of_matrix(&a);
    c.bench_function("profile_store_hit", |b| b.iter(|| store.of_matrix(black_box(&a))));
    c.bench_function("profile_build_cold", |b| {
        b.iter(|| misam_sparse::MatrixProfile::build(black_box(&a)))
    });
}

fn bench_cache_hit(c: &mut Criterion) {
    let a = gen::power_law(1024, 1024, 6.0, 1.4, 7);
    let bm = gen::power_law(1024, 512, 6.0, 1.4, 8);
    let oracle = SimOracle::new(FpgaSim);
    oracle.execute_all(&a, Operand::Sparse(&bm));
    c.bench_function("oracle_cache_hit", |b| {
        // Steady-state lookup: fingerprint + sharded map read.
        b.iter(|| oracle.execute(black_box(&a), Operand::Sparse(&bm), 0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus_labeling, bench_suite_fanout, bench_profile_store, bench_cache_hit
}
criterion_main!(benches);
