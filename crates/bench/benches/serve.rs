//! Criterion bench of the serving hot path, isolated from TCP: batched
//! inference against a model snapshot, wire encode/decode of a predict
//! round-trip, and the micro-batcher's submit-to-reply cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use misam::dataset::{Dataset, Objective};
use misam::persist::ModelBundle;
use misam::training;
use misam_features::{TileConfig, FEATURE_NAMES};
use misam_recon::cost::ReconfigCost;
use misam_serve::batch::{BatchConfig, MicroBatcher};
use misam_serve::client::synthetic_vector;
use misam_serve::protocol::{PredictRequest, Request, RequestEnvelope};
use misam_serve::state::{predict_vector, PreparedBundle, SharedModel};
use std::hint::black_box;
use std::sync::Arc;

fn bundle() -> ModelBundle {
    let ds = Dataset::generate(150, 55);
    let sel = training::train_selector(&ds, Objective::Latency, 1);
    let lat = training::train_latency_predictor(&ds, 1);
    ModelBundle::new(
        sel.selector,
        lat.predictor,
        0.2,
        ReconfigCost::default(),
        TileConfig::default(),
    )
}

fn bench_inference(c: &mut Criterion) {
    let prepared = PreparedBundle::new(bundle());
    let v = synthetic_vector(11);
    assert_eq!(v.len(), FEATURE_NAMES.len());
    c.bench_function("serve_predict_vector", |bch| {
        bch.iter(|| predict_vector(black_box(&prepared), black_box(&v)))
    });
}

fn bench_wire(c: &mut Criterion) {
    let env = RequestEnvelope {
        v: misam_serve::PROTOCOL_VERSION,
        id: 9,
        req: Request::Predict(PredictRequest { features: synthetic_vector(3) }),
    };
    let line = serde_json::to_string(&env).unwrap();
    c.bench_function("serve_wire_encode", |b| {
        b.iter(|| serde_json::to_string(black_box(&env)).unwrap())
    });
    c.bench_function("serve_wire_decode", |b| {
        b.iter(|| serde_json::from_str::<RequestEnvelope>(black_box(&line)).unwrap())
    });
}

fn bench_batcher(c: &mut Criterion) {
    let model = Arc::new(SharedModel::new(bundle()));
    let mut g = c.benchmark_group("serve_batcher_round_trip");
    for batch in [1usize, 16, 64] {
        let batcher = MicroBatcher::new(
            Arc::clone(&model),
            BatchConfig { batch_max: 64, batch_wait_us: 50, queue_cap: 4096 },
        );
        let vectors: Vec<Vec<f64>> = (0..batch).map(|i| synthetic_vector(i as u64)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| {
                let rx = batcher.try_submit(black_box(vectors.clone())).unwrap();
                rx.recv().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference, bench_wire, bench_batcher
}
criterion_main!(benches);
