//! Criterion benches of the ML components — the Figure 12 host stages:
//! feature extraction (preprocessing, paper ~2%) and tree inference
//! (paper 0.002 ms).

use criterion::{criterion_group, criterion_main, Criterion};
use misam_features::{PairFeatures, TileConfig};
use misam_mlkit::regression::{RegParams, RegressionTree};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_sparse::gen;
use std::hint::black_box;

fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let f: Vec<f64> = (0..24).map(|j| ((i * 37 + j * 13) % 101) as f64).collect();
        y.push(((f[0] > 50.0) as usize) * 2 + ((f[5] > 50.0) as usize));
        x.push(f);
    }
    (x, y)
}

fn bench_tree_inference(c: &mut Criterion) {
    let (x, y) = training_data(4000);
    let tree = DecisionTree::fit(&x, &y, 4, &TreeParams::default());
    let probe = &x[17];
    c.bench_function("tree_inference_single", |b| b.iter(|| tree.predict(black_box(probe))));
    // The paper's reported 0.002 ms is amortized over 1,800 cases.
    c.bench_function("tree_inference_batch1800", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for row in x.iter().take(1800) {
                acc += tree.predict(black_box(row));
            }
            acc
        })
    });
}

fn bench_tree_training(c: &mut Criterion) {
    let (x, y) = training_data(2000);
    c.bench_function("tree_fit_2000x24", |b| {
        b.iter(|| DecisionTree::fit(black_box(&x), black_box(&y), 4, &TreeParams::default()))
    });
    let yr: Vec<f64> = y.iter().map(|&v| v as f64).collect();
    c.bench_function("regression_fit_2000x24", |b| {
        b.iter(|| RegressionTree::fit(black_box(&x), black_box(&yr), &RegParams::default()))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let a = gen::power_law(8192, 8192, 12.0, 1.5, 1);
    let bs = gen::uniform_random(8192, 512, 0.2, 2);
    let cfg = TileConfig::default();
    c.bench_function("features_sparse_pair_98k_nnz", |b| {
        b.iter(|| PairFeatures::extract(black_box(&a), black_box(&bs), &cfg))
    });
    c.bench_function("features_dense_b", |b| {
        b.iter(|| PairFeatures::extract_dense_b(black_box(&a), 8192, 512, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tree_inference, bench_tree_training, bench_feature_extraction
}
criterion_main!(benches);
