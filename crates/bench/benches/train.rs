//! Criterion benches of the rebuilt mlkit kernels: seed per-node-sort
//! induction vs sort-once columnar fit, and the boxed row walk vs the
//! flat SoA batch walk. The `bench_train` binary is the JSON-writing
//! twin with equality gates; this harness gives statistical timings.

use criterion::{criterion_group, criterion_main, Criterion};
use misam_mlkit::flat::FlatTree;
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::reference;
use misam_mlkit::tree::{DecisionTree, TreeParams};
use std::hint::black_box;

/// Noise labels over 24 binned features: the tree grows to its bounds,
/// the worst case for induction (see `bench_train` for rationale).
fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let f: Vec<f64> = (0..24).map(|j| ((i * 37 + j * 13) % 101) as f64).collect();
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        y.push(((h >> 29) % 4) as usize);
        x.push(f);
    }
    (x, y)
}

fn bench_fit(c: &mut Criterion) {
    let (x, y) = training_data(4096);
    let params = TreeParams::default();
    c.bench_function("tree_fit_seed_4096x24", |b| {
        b.iter(|| reference::fit_tree(black_box(&x), black_box(&y), 4, &params))
    });
    c.bench_function("tree_fit_sort_once_4096x24", |b| {
        b.iter(|| DecisionTree::fit(black_box(&x), black_box(&y), 4, &params))
    });
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = training_data(4096);
    let tree = DecisionTree::fit(&x, &y, 4, &TreeParams::default());
    let flat = FlatTree::from_tree(&tree);
    let m = FeatureMatrix::from_rows(&x);
    c.bench_function("predict_batch_boxed_4096", |b| b.iter(|| tree.predict_batch(black_box(&x))));
    c.bench_function("predict_batch_flat_4096", |b| {
        b.iter(|| flat.predict_batch_matrix(black_box(&m)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fit, bench_predict
}
criterion_main!(benches);
