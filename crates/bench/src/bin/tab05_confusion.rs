//! Regenerates Table 5 (confusion matrix; shared with Figure 4 renderer).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("tab05_confusion", &misam_bench::render::fig04_tab05(&s));
}
