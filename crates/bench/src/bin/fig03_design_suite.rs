//! Regenerates Figure 3 (D1/D2/D3 normalized performance).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig03_design_suite", &misam_bench::render::fig03(&s));
}
