//! Measures the lane/SIMD kernels against their always-compiled scalar
//! references and writes `BENCH_kernels.json`.
//!
//! Five kernel groups, mirroring the hot loops they came from:
//!
//! * **profile fold** — the stamp-packed fragment fold + fused column
//!   occupancy (`simd::frag_fold_lanes`) vs the per-row histogram
//!   reference (`frag_fold_scalar`), at the paper's PE widths and at a
//!   prime width that forces the generic-residue remainder path.
//! * **residue folds** — the per-PE length/count tallies, chunked lane
//!   sweep vs the wrapping scalar counter.
//! * **frontier walk** — flat-tree batch inference with the
//!   branchless/AVX2 segment partition vs the original branchy
//!   partition (`predict_batch_matrix` vs its `_scalar` twin), on a
//!   deep grid-label tree whose splits the branch predictor cannot
//!   learn.
//! * **feature gather** — the columnar bootstrap gather: the AVX2
//!   `vgatherqpd` experiment vs the serial extend. This one is the
//!   negative result on record — it is load-latency-bound and the
//!   quad forms lose, so the production dispatcher keeps scalar.
//! * **spgemm / spmm / schedule** — the workspace SPA vs the bool-array
//!   SPA, the register-blocked SpMM vs the one-element axpy (including
//!   a lane-remainder B width), and the closed-form uniform schedule
//!   vs the O(nnz) element walk.
//!
//! Every pair is checked bit-identical before it is timed; the JSON
//! records a per-kernel `identical` flag and a top-level conjunction.

use misam_mlkit::flat::FlatTree;
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::simd as mlsimd;
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_sim::schedule::{schedule_uniform_lanes, schedule_uniform_walk};
use misam_sim::{DesignConfig, DesignId};
use misam_sparse::kernels::{
    spmm_lanes, spmm_scalar, try_spgemm_rowwise_scalar, try_spgemm_rowwise_tiled,
    try_spgemm_rowwise_with, SpaWorkspace, SPA_TILE_COLS, SPA_WIDE_COLS,
};
use misam_sparse::{gen, simd, CsrMatrix};
use serde::Serialize;
use std::time::Instant;

const REPS: usize = 7;

#[derive(Serialize)]
struct Kernel {
    shape: String,
    scalar_ns: f64,
    vectorized_ns: f64,
    speedup: f64,
    /// Outputs of the two forms compared bit-for-bit before timing.
    identical: bool,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    reps: usize,
    host_cpus: usize,
    avx2: bool,
    /// Conjunction of every per-kernel `identical` flag.
    all_identical: bool,
    profile_fold: Kernel,
    profile_fold_prime_pes: Kernel,
    residue_len_fold: Kernel,
    frontier_walk: Kernel,
    feature_gather: Kernel,
    spgemm_rowwise: Kernel,
    /// Column-tiled SPA at a B wide enough that the untiled scratch
    /// row blows past L1: one-tile (untiled) walk vs `SPA_TILE_COLS`.
    spgemm_rowwise_wide_tiled: Kernel,
    spmm: Kernel,
    spmm_remainder: Kernel,
    schedule_uniform_col: Kernel,
    schedule_uniform_row: Kernel,
    /// Row-traversal fold on many short rows — the shape where the
    /// residue-major multi-row batch amortizes the lane sweeps.
    schedule_uniform_row_short_rows: Kernel,
}

/// Minimum over `reps` timed runs (after one warmup) — the estimator
/// least sensitive to scheduler noise on a shared host.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn report(name: &str, k: &Kernel) {
    println!(
        "{name:<24} {:<28} scalar {:>9.0} us   lanes {:>9.0} us   {:>5.2}x   identical={}",
        k.shape,
        k.scalar_ns / 1e3,
        k.vectorized_ns / 1e3,
        k.speedup,
        k.identical
    );
}

fn frag_fold_kernel(a: &CsrMatrix, pes: usize) -> Kernel {
    let cols = a.cols();
    let run_scalar = || {
        let mut out = vec![0u32; pes];
        let mut counts = vec![0u32; cols];
        simd::frag_fold_scalar(
            a.rows(),
            a.row_ptr(),
            a.col_idx(),
            pes,
            &mut out,
            Some(&mut counts),
        );
        (out, counts)
    };
    let run_lanes = || {
        let mut out = vec![0u32; pes];
        let mut counts = vec![0u32; cols];
        simd::frag_fold_lanes(
            a.rows(),
            cols,
            a.row_ptr(),
            a.col_idx(),
            pes,
            &mut out,
            Some(&mut counts),
        );
        (out, counts)
    };
    let identical = run_scalar() == run_lanes();
    // Triple reps here: this pair gates the >= 2x assert, and the min
    // estimator needs more draws on a noisy shared host to converge.
    let scalar_ns = time_ns(REPS * 3, || {
        std::hint::black_box(run_scalar());
    });
    let vectorized_ns = time_ns(REPS * 3, || {
        std::hint::black_box(run_lanes());
    });
    Kernel {
        shape: format!("{}x{} nnz={} pes={pes}", a.rows(), a.cols(), a.nnz()),
        scalar_ns,
        vectorized_ns,
        speedup: scalar_ns / vectorized_ns,
        identical,
    }
}

fn spmm_kernel(a: &CsrMatrix, b_cols: usize) -> Kernel {
    let k = a.cols();
    let b: Vec<f32> = (0..k * b_cols).map(|i| ((i * 13 + 5) % 17) as f32 - 8.0).collect();
    let s = spmm_scalar(a, &b, k, b_cols).unwrap();
    let l = spmm_lanes(a, &b, k, b_cols).unwrap();
    let identical = s.len() == l.len() && s.iter().zip(&l).all(|(x, y)| x.to_bits() == y.to_bits());
    let scalar_ns = time_ns(REPS, || {
        std::hint::black_box(spmm_scalar(a, &b, k, b_cols).unwrap());
    });
    let vectorized_ns = time_ns(REPS, || {
        std::hint::black_box(spmm_lanes(a, &b, k, b_cols).unwrap());
    });
    Kernel {
        shape: format!("{}x{} nnz={} B={k}x{b_cols}", a.rows(), a.cols(), a.nnz()),
        scalar_ns,
        vectorized_ns,
        speedup: scalar_ns / vectorized_ns,
        identical,
    }
}

fn schedule_kernel(a: &CsrMatrix, id: DesignId, w: u64) -> Kernel {
    let cfg = DesignConfig::of(id);
    let identical =
        schedule_uniform_walk(a.as_ref(), &cfg, w) == schedule_uniform_lanes(a.as_ref(), &cfg, w);
    let scalar_ns = time_ns(REPS, || {
        std::hint::black_box(schedule_uniform_walk(a.as_ref(), &cfg, w));
    });
    let vectorized_ns = time_ns(REPS, || {
        std::hint::black_box(schedule_uniform_lanes(a.as_ref(), &cfg, w));
    });
    Kernel {
        shape: format!("{}x{} nnz={} {id} w={w}", a.rows(), a.cols(), a.nnz()),
        scalar_ns,
        vectorized_ns,
        speedup: scalar_ns / vectorized_ns,
        identical,
    }
}

fn main() {
    // --- profile fold -----------------------------------------------
    // Dense-enough rows that the fragment scratch, not the row loop,
    // dominates: the shape the streaming profiler sees per chunk.
    let pf = gen::uniform_random(8192, 8192, 0.01, 11);
    let profile_fold = frag_fold_kernel(&pf, 64);
    report("profile_fold", &profile_fold);
    // Prime PE count: the generic residue-table path plus maximal lane
    // remainders everywhere.
    let profile_fold_prime_pes = frag_fold_kernel(&pf, 97);
    report("profile_fold_prime", &profile_fold_prime_pes);

    // --- residue folds ----------------------------------------------
    // Remainder-heavy: 100_003 row lengths over 96 PEs leaves a 67-
    // element tail every sweep.
    let lens: Vec<u32> = (0..100_003u32).map(|i| i.wrapping_mul(2654435761) % 513).collect();
    let pes = 96usize;
    let residue_len_fold = {
        let run = |lanes: bool| {
            let mut sum = vec![0u64; pes];
            let mut max = vec![0u32; pes];
            if lanes {
                simd::residue_len_fold_lanes(pes, &lens, &mut sum, &mut max);
            } else {
                simd::residue_len_fold_scalar(pes, &lens, &mut sum, &mut max);
            }
            (sum, max)
        };
        let identical = run(false) == run(true);
        let scalar_ns = time_ns(REPS * 4, || {
            std::hint::black_box(run(false));
        });
        let vectorized_ns = time_ns(REPS * 4, || {
            std::hint::black_box(run(true));
        });
        Kernel {
            shape: format!("len={} pes={pes}", lens.len()),
            scalar_ns,
            vectorized_ns,
            speedup: scalar_ns / vectorized_ns,
            identical,
        }
    };
    report("residue_len_fold", &residue_len_fold);

    // --- frontier walk ----------------------------------------------
    // A grid-structured label over four well-mixed random features
    // forces a deep tree of balanced splits (peeling noise labels would
    // only grow a chain), and random prediction rows give every split a
    // ~50/50 outcome no branch predictor can learn — the shape where
    // the branchy partition pays a misprediction per row per level.
    let n_rows = 65_536usize;
    let features = 24usize;
    let mix = |z: u64| {
        let z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^ (z >> 33)
    };
    let rand_f = move |i: usize, j: usize| {
        let h = mix(((i as u64) << 32) | j as u64);
        (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
    };
    let (tx, ty): (Vec<Vec<f64>>, Vec<usize>) = (0..8192)
        .map(|i| {
            let f: Vec<f64> = (0..features).map(|j| rand_f(i, j)).collect();
            let label = (0..4).map(|j| (f[j] / 12.5) as usize).sum::<usize>() % 4;
            (f, label)
        })
        .unzip();
    let params = TreeParams { max_depth: 16, min_gain: 0.0, ..TreeParams::default() };
    let tree = FlatTree::from_tree(&DecisionTree::fit(&tx, &ty, 4, &params));
    let rows: Vec<Vec<f64>> =
        (0..n_rows).map(|i| (0..features).map(|j| rand_f(i + 1_000_000, j)).collect()).collect();
    let m = FeatureMatrix::from_rows(&rows);
    let frontier_walk = {
        let identical = tree.predict_batch_matrix(&m) == tree.predict_batch_matrix_scalar(&m);
        let scalar_ns = time_ns(REPS, || {
            std::hint::black_box(tree.predict_batch_matrix_scalar(&m));
        });
        let vectorized_ns = time_ns(REPS, || {
            std::hint::black_box(tree.predict_batch_matrix(&m));
        });
        Kernel {
            shape: format!("{n_rows} rows x {features} feats, {} nodes", tree.node_count()),
            scalar_ns,
            vectorized_ns,
            speedup: scalar_ns / vectorized_ns,
            identical,
        }
    };
    report("frontier_walk", &frontier_walk);

    // --- feature gather ---------------------------------------------
    // A bootstrap-shaped gather: random row order, duplicates allowed,
    // length not a multiple of the quad width. No speedup gate — the
    // measurement documents why `gather_into` dispatches to scalar.
    let col: Vec<f64> = (0..n_rows).map(|i| i as f64 * 0.5).collect();
    let gidx: Vec<usize> = (0..n_rows + 3).map(|i| i.wrapping_mul(48271) % n_rows).collect();
    let feature_gather = {
        let run = |lanes: bool| {
            let mut out = Vec::with_capacity(gidx.len());
            if lanes {
                mlsimd::gather_into_lanes(&col, &gidx, &mut out);
            } else {
                mlsimd::gather_into_scalar(&col, &gidx, &mut out);
            }
            out
        };
        let identical = run(false) == run(true);
        let scalar_ns = time_ns(REPS * 4, || {
            std::hint::black_box(run(false));
        });
        let vectorized_ns = time_ns(REPS * 4, || {
            std::hint::black_box(run(true));
        });
        Kernel {
            shape: format!("{} rows gathered", gidx.len()),
            scalar_ns,
            vectorized_ns,
            speedup: scalar_ns / vectorized_ns,
            identical,
        }
    };
    report("feature_gather", &feature_gather);

    // --- spgemm -----------------------------------------------------
    let sa = gen::uniform_random(2048, 2048, 0.01, 21);
    let sb = gen::uniform_random(2048, 2048, 0.01, 22);
    let spgemm_rowwise = {
        let reference = try_spgemm_rowwise_scalar(&sa, &sb).unwrap();
        let mut ws = SpaWorkspace::new();
        let with_ws = try_spgemm_rowwise_with(&sa, &sb, &mut ws).unwrap();
        let identical = reference.row_ptr() == with_ws.row_ptr()
            && reference.col_idx() == with_ws.col_idx()
            && reference
                .values()
                .iter()
                .zip(with_ws.values())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        let scalar_ns = time_ns(REPS, || {
            std::hint::black_box(try_spgemm_rowwise_scalar(&sa, &sb).unwrap());
        });
        let vectorized_ns = time_ns(REPS, || {
            std::hint::black_box(try_spgemm_rowwise_with(&sa, &sb, &mut ws).unwrap());
        });
        Kernel {
            shape: format!("{}x{} * {}x{}", sa.rows(), sa.cols(), sb.rows(), sb.cols()),
            scalar_ns,
            vectorized_ns,
            speedup: scalar_ns / vectorized_ns,
            identical,
        }
    };
    report("spgemm_rowwise", &spgemm_rowwise);

    // --- spgemm, wide B ---------------------------------------------
    // B past the SPA_WIDE_COLS threshold: the untiled scratch row is
    // 128 KiB of f32 accumulator alone, so every SPA touch misses L1.
    // Baseline is the same cursor walk run as a single full-width tile
    // (untiled behaviour); contender is the production tile width.
    let wa = gen::uniform_random(2048, 2048, 0.01, 23);
    let wb = gen::uniform_random(2048, 2 * SPA_WIDE_COLS, 0.004, 24);
    let spgemm_rowwise_wide_tiled = {
        let mut ws = SpaWorkspace::new();
        let n = wb.cols();
        let reference = try_spgemm_rowwise_scalar(&wa, &wb).unwrap();
        let untiled = try_spgemm_rowwise_tiled(&wa, &wb, &mut ws, n).unwrap();
        let tiled = try_spgemm_rowwise_tiled(&wa, &wb, &mut ws, SPA_TILE_COLS).unwrap();
        let bits_eq = |x: &misam_sparse::CsrMatrix| {
            reference.row_ptr() == x.row_ptr()
                && reference.col_idx() == x.col_idx()
                && reference
                    .values()
                    .iter()
                    .zip(x.values())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        };
        let identical = bits_eq(&untiled) && bits_eq(&tiled);
        let scalar_ns = time_ns(REPS, || {
            std::hint::black_box(try_spgemm_rowwise_tiled(&wa, &wb, &mut ws, n).unwrap());
        });
        let vectorized_ns = time_ns(REPS, || {
            std::hint::black_box(
                try_spgemm_rowwise_tiled(&wa, &wb, &mut ws, SPA_TILE_COLS).unwrap(),
            );
        });
        Kernel {
            shape: format!(
                "{}x{} * {}x{} tile={SPA_TILE_COLS}",
                wa.rows(),
                wa.cols(),
                wb.rows(),
                wb.cols()
            ),
            scalar_ns,
            vectorized_ns,
            speedup: scalar_ns / vectorized_ns,
            identical,
        }
    };
    report("spgemm_wide_tiled", &spgemm_rowwise_wide_tiled);

    // --- spmm -------------------------------------------------------
    let spmm = spmm_kernel(&sa, 32);
    report("spmm", &spmm);
    // Lane remainder on every vector width, odd element count per row.
    let spmm_remainder = spmm_kernel(&sa, 33);
    report("spmm_remainder", &spmm_remainder);

    // --- schedule ---------------------------------------------------
    let sched = gen::uniform_random(4099, 4096, 0.01, 31);
    let schedule_uniform_col = schedule_kernel(&sched, DesignId::D1, 4);
    report("schedule_uniform_col", &schedule_uniform_col);
    let schedule_uniform_row = schedule_kernel(&sched, DesignId::D3, 4);
    report("schedule_uniform_row", &schedule_uniform_row);
    // Many short rows: per-row lane sweeps are all remainder, so the
    // residue-major batch (concatenated rows through one lane map)
    // carries the fold. Same bit-identity gate as the uniform shape.
    let short = gen::uniform_random(262_144, 4096, 0.0015, 33);
    let schedule_uniform_row_short_rows = schedule_kernel(&short, DesignId::D3, 4);
    report("schedule_row_short", &schedule_uniform_row_short_rows);

    let all_identical = [
        &profile_fold,
        &profile_fold_prime_pes,
        &residue_len_fold,
        &frontier_walk,
        &feature_gather,
        &spgemm_rowwise,
        &spgemm_rowwise_wide_tiled,
        &spmm,
        &spmm_remainder,
        &schedule_uniform_col,
        &schedule_uniform_row,
        &schedule_uniform_row_short_rows,
    ]
    .iter()
    .all(|k| k.identical);
    assert!(all_identical, "every vectorized kernel must be bit-identical to its scalar form");
    assert!(
        profile_fold.speedup >= 2.0,
        "profile fold must be >= 2x its scalar reference (got {:.2}x)",
        profile_fold.speedup
    );
    assert!(
        frontier_walk.speedup >= 2.0,
        "frontier walk must be >= 2x the branchy partition (got {:.2}x)",
        frontier_walk.speedup
    );

    let doc = Doc {
        bench: "bench_kernels".into(),
        reps: REPS,
        host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
        avx2: cfg!(target_arch = "x86_64") && std::arch::is_x86_feature_detected!("avx2"),
        all_identical,
        profile_fold,
        profile_fold_prime_pes,
        residue_len_fold,
        frontier_walk,
        feature_gather,
        spgemm_rowwise,
        spgemm_rowwise_wide_tiled,
        spmm,
        spmm_remainder,
        schedule_uniform_col,
        schedule_uniform_row,
        schedule_uniform_row_short_rows,
    };
    let out = serde_json::to_string_pretty(&doc).unwrap();
    std::fs::write("BENCH_kernels.json", &out).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
