//! Headline benchmark of the tiered surrogate oracle: labeling
//! throughput and end-to-end selection agreement against the cycle sim
//! on the standard corpus mix. Writes `BENCH_surrogate.json`.
//!
//! Protocol: train a surrogate bundle on one corpus, then label a
//! disjoint evaluation stream three ways — a fresh `SimOracle` (the
//! baseline every corpus used before the tier existed), the gated
//! `TieredOracle`, and the ungated surrogate (band dropped to −∞, so
//! every pair is forest-served: the pure surrogate labeling rate).
//! Pair features are pre-extracted for every pair, exactly as the
//! corpus pipeline does before labeling, and handed to the tiered runs
//! via `label_all_lazy_with_features`; the sim run gets the same warm
//! profile store and runs last, so cache warming favours the baseline.
//!
//! Gates (asserted):
//! * surrogate labeling throughput ≥ 10× the cycle sim — the per-pair
//!   rate the gate unlocks on confident pairs;
//! * tiered end-to-end selection agreement ≥ 99% (latency *and* energy
//!   argmins both match the sim on the same pairs).
//!
//! The gated stream's wall-clock speedup is fallback-bound and reported
//! (`tiered_speedup`, `fallback_rate`) rather than gated: the corpus
//! mix keeps half its pairs inside a 1.2× top-2 margin (see
//! `true_margin_log10` quantiles), where no surrogate can rank reliably
//! and the band correctly routes to the sim.

use misam::dataset::{random_pair_lazy, Dataset};
use misam::training;
use misam_features::TileConfig;
use misam_oracle::{LazyLabeler, SimOracle, SurrogateTrainParams, TieredOracle};
use misam_sim::{DesignId, SimReport};
use misam_sparse::LazyMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const TRAIN_SAMPLES: usize = 4000;
const TRAIN_SEED: u64 = 2025;
const EVAL_PAIRS: usize = 400;
const EVAL_SEED: u64 = 0xe7a1;

#[derive(Serialize)]
struct PerDesign {
    design: String,
    /// Eval pairs whose sim-best (latency) design is this one.
    support: usize,
    /// Of those, pairs where the tiered argmin matched on both objectives.
    agree: usize,
    /// Tiered pairs the gate answered from the surrogate, bucketed by
    /// the predicted-best design.
    surrogate_pairs: u64,
    /// Tiered pairs the gate sent to the cycle sim.
    fallback_pairs: u64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    host_cpus: usize,
    train_samples: usize,
    eval_pairs: usize,
    /// Calibrated confidence band (log₁₀ top-2 margin).
    tau_log10: f64,
    /// Holdout stats the band was calibrated on (from the bundle).
    calibration_holdout: usize,
    calibration_gated_agreement: f64,
    calibration_fallback_rate: f64,
    /// Labeling rates measured on the eval stream.
    sim_pairs_per_s: f64,
    tiered_pairs_per_s: f64,
    surrogate_pairs_per_s: f64,
    /// Pure surrogate labeling rate over the sim's — the headline.
    surrogate_speedup: f64,
    /// Gated mixed-stream wall-clock over the sim's (fallback-bound).
    tiered_speedup: f64,
    fallback_rate: f64,
    /// Gated tiered stream vs sim, exact argmin match.
    latency_agreement: f64,
    energy_agreement: f64,
    /// Both argmins match — the gated headline.
    end_to_end_agreement: f64,
    /// Same measure for the ungated surrogate (context, not a gate).
    ungated_agreement: f64,
    /// Quantiles of the true min(latency, energy) top-2 margin — the
    /// corpus property that bounds how many pairs any band can serve.
    true_margin_log10: Vec<(String, f64)>,
    per_design: Vec<PerDesign>,
}

fn argmin(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if *v < xs[best] {
            best = i;
        }
    }
    best
}

type EvalPair = (LazyMatrix, misam::dataset::LazyOperandSpec, Vec<f64>);

fn label_with_features<L: LazyLabeler>(
    labeler: &L,
    pairs: &[EvalPair],
    tile: &TileConfig,
) -> (Vec<Vec<SimReport>>, f64) {
    let t = Instant::now();
    let reports: Vec<Vec<SimReport>> = pairs
        .iter()
        .map(|(a, spec, f)| labeler.label_all_lazy_with_features(a, spec.lazy_operand(), f, tile))
        .collect();
    (reports, t.elapsed().as_secs_f64())
}

fn agreement(reference: &[Vec<SimReport>], got: &[Vec<SimReport>]) -> (usize, usize, usize) {
    let (mut lat, mut energy, mut both) = (0, 0, 0);
    for (s, t) in reference.iter().zip(got) {
        let st: Vec<f64> = s.iter().map(|r| r.time_s).collect();
        let se: Vec<f64> = s.iter().map(|r| r.energy_j).collect();
        let tt: Vec<f64> = t.iter().map(|r| r.time_s).collect();
        let te: Vec<f64> = t.iter().map(|r| r.energy_j).collect();
        let lat_ok = argmin(&st) == argmin(&tt);
        let energy_ok = argmin(&se) == argmin(&te);
        lat += usize::from(lat_ok);
        energy += usize::from(energy_ok);
        both += usize::from(lat_ok && energy_ok);
    }
    (lat, energy, both)
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("training corpus: {TRAIN_SAMPLES} samples ({cpus} host CPUs)…");
    let base = Dataset::generate(TRAIN_SAMPLES, TRAIN_SEED);
    let params = SurrogateTrainParams {
        forest: misam_oracle::RegForestParams {
            n_trees: 16,
            tree: misam_mlkit::regression::RegParams { max_depth: 10, ..Default::default() },
            ..Default::default()
        },
        ..Default::default()
    };
    let bundle = training::train_surrogate(&base, &params);
    let cal = bundle.calibration.clone();
    eprintln!(
        "calibrated band tau={:.4} (holdout {}, gated agreement {:.3}, fallback {:.3})",
        cal.tau_log10, cal.holdout, cal.gated_agreement, cal.fallback_rate
    );
    let model = Arc::new(bundle.into_model());

    // Disjoint eval stream with features pre-extracted, exactly as the
    // corpus pipeline does for every sample before labeling.
    let tile = TileConfig::default();
    let pairs: Vec<EvalPair> = (0..EVAL_PAIRS as u64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(EVAL_SEED ^ (i.wrapping_mul(0x9e37_79b9)));
            let (a, spec, _kind) = random_pair_lazy(&mut rng);
            let features = spec.features(&a, &tile).to_vector();
            (a, spec, features)
        })
        .collect();

    eprintln!("labeling {EVAL_PAIRS} pairs via the gated tiered oracle…");
    let tiered = TieredOracle::new();
    tiered.install(model.clone());
    let (tiered_reports, tiered_s) = label_with_features(&tiered, &pairs, &tile);
    let stats = tiered.stats();

    eprintln!("labeling {EVAL_PAIRS} pairs via the ungated surrogate…");
    let ungated = TieredOracle::new();
    ungated.install(Arc::new(model.with_tau(f64::NEG_INFINITY)));
    let (surrogate_reports, surrogate_s) = label_with_features(&ungated, &pairs, &tile);
    assert_eq!(ungated.stats().fallback_pairs, 0, "ungated run must never fall back");

    eprintln!("labeling {EVAL_PAIRS} pairs via a fresh cycle-sim oracle…");
    let sim = SimOracle::new(misam_oracle::FpgaSim);
    let (sim_reports, sim_s) = label_with_features(&sim, &pairs, &tile);

    let n = pairs.len() as f64;
    let (lat_agree, energy_agree, both_agree) = agreement(&sim_reports, &tiered_reports);
    let (_, _, ungated_both) = agreement(&sim_reports, &surrogate_reports);
    let end_to_end = both_agree as f64 / n;
    let surrogate_speedup = sim_s / surrogate_s;
    let tiered_speedup = sim_s / tiered_s;

    let mut support = [0usize; 4];
    let mut agree_by_design = [0usize; 4];
    for (s, t) in sim_reports.iter().zip(&tiered_reports) {
        let st: Vec<f64> = s.iter().map(|r| r.time_s).collect();
        let best = argmin(&st);
        support[best] += 1;
        let tt: Vec<f64> = t.iter().map(|r| r.time_s).collect();
        let se: Vec<f64> = s.iter().map(|r| r.energy_j).collect();
        let te: Vec<f64> = t.iter().map(|r| r.energy_j).collect();
        agree_by_design[best] +=
            usize::from(argmin(&st) == argmin(&tt) && argmin(&se) == argmin(&te));
    }
    let per_design: Vec<PerDesign> = DesignId::ALL
        .iter()
        .map(|d| PerDesign {
            design: d.to_string(),
            support: support[d.index()],
            agree: agree_by_design[d.index()],
            surrogate_pairs: stats.per_design_surrogate[d.index()],
            fallback_pairs: stats.per_design_fallback[d.index()],
        })
        .collect();

    let mut margins: Vec<f64> = sim_reports
        .iter()
        .map(|s| {
            let mut ts: Vec<f64> = s.iter().map(|r| r.time_s.log10()).collect();
            let mut es: Vec<f64> = s.iter().map(|r| r.energy_j.log10()).collect();
            ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            es.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (ts[1] - ts[0]).min(es[1] - es[0])
        })
        .collect();
    margins.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let true_margin_log10: Vec<(String, f64)> = [0.1, 0.25, 0.5, 0.75, 0.9]
        .iter()
        .map(|q| (format!("p{}", (q * 100.0) as u32), margins[(q * (n - 1.0)) as usize]))
        .collect();

    eprintln!(
        "sim {:.0} pairs/s | tiered {:.0} pairs/s ({tiered_speedup:.2}x, fallback {:.3}) | \
         surrogate {:.0} pairs/s ({surrogate_speedup:.1}x)",
        n / sim_s,
        n / tiered_s,
        stats.fallback_rate(),
        n / surrogate_s,
    );
    eprintln!(
        "agreement: lat {:.4} energy {:.4} e2e {end_to_end:.4} (ungated {:.4})",
        lat_agree as f64 / n,
        energy_agree as f64 / n,
        ungated_both as f64 / n,
    );
    for p in &per_design {
        eprintln!(
            "  {}: support {:>4}  agree {:>4}  surrogate {:>4}  fallback {:>4}",
            p.design, p.support, p.agree, p.surrogate_pairs, p.fallback_pairs
        );
    }

    assert_eq!(
        stats.surrogate_pairs + stats.fallback_pairs,
        EVAL_PAIRS as u64,
        "every eval pair must be gate-decided (no unmodeled pairs)"
    );
    assert!(
        surrogate_speedup >= 10.0,
        "surrogate labeling must be >= 10x the cycle sim (got {surrogate_speedup:.2}x)"
    );
    assert!(
        end_to_end >= 0.99,
        "end-to-end selection agreement must be >= 0.99 (got {end_to_end:.4})"
    );

    let doc = Doc {
        bench: "surrogate".into(),
        host_cpus: cpus,
        train_samples: TRAIN_SAMPLES,
        eval_pairs: EVAL_PAIRS,
        tau_log10: cal.tau_log10,
        calibration_holdout: cal.holdout,
        calibration_gated_agreement: cal.gated_agreement,
        calibration_fallback_rate: cal.fallback_rate,
        sim_pairs_per_s: n / sim_s,
        tiered_pairs_per_s: n / tiered_s,
        surrogate_pairs_per_s: n / surrogate_s,
        surrogate_speedup,
        tiered_speedup,
        fallback_rate: stats.fallback_rate(),
        latency_agreement: lat_agree as f64 / n,
        energy_agreement: energy_agree as f64 / n,
        end_to_end_agreement: end_to_end,
        ungated_agreement: ungated_both as f64 / n,
        true_margin_log10,
        per_design,
    };
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_surrogate.json", &json).expect("write BENCH_surrogate.json");
    eprintln!("wrote BENCH_surrogate.json");
}
