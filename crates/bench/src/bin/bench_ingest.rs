//! Out-of-core ingest benchmark: proves a `.mtx` larger than the
//! resident-entry budget streams into an MSAB slab, profiles through
//! the chunked `build_streaming` fold, and labels through the global
//! oracle — all with peak RSS bounded by the budget, not the matrix.
//! Writes `BENCH_ingest.json`.
//!
//! Nothing in this binary ever owns the matrix: the source `.mtx` is
//! generated row by row straight to disk, ingest holds at most one
//! row-range chunk, the profile folds the mmap view a bounded window
//! at a time, and the equality gates run against the same mmap view
//! (never a decoded `CsrMatrix`). That discipline is what the RSS
//! assertions check: `VmHWM` (the process's lifetime peak) is sampled
//! after each stage and compared against a cap derived from the budget
//! — far below what a conventional triplet parse of the same file
//! would have to hold resident.

use misam_sim::{design_pe_counts, design_row_pe_counts, Operand};
use misam_sparse::slab::{self, SlabMatrix};
use misam_sparse::MatrixProfile;
use serde::Serialize;
use std::io::{BufWriter, Write};
use std::time::Instant;

/// Square matrix side. With ~20 nonzeros per row the full entry set is
/// ~1.6M coordinates — a triplet parse would hold ~38 MB resident
/// before building the CSR arrays, several times the RSS cap below.
const N: usize = 80_000;
/// Column stride of the synthetic pattern; coprime to `N`, so the
/// columns of one row never collide.
const STEP: usize = 7_919;
/// Resident-entry budget handed to ingest: forces the entry stream
/// into several row-range chunks (~8 at this shape).
const BUDGET: usize = 200_000;
/// Rows per `build_streaming` fold window, sized so one window's
/// nonzeros roughly match the ingest budget.
const PROFILE_CHUNK_ROWS: usize = 10_000;

#[derive(Serialize)]
struct Stage {
    ns: f64,
    entries_per_s: f64,
}

#[derive(Serialize)]
struct Ingest {
    ns: f64,
    mtx_mb_per_s: f64,
    entries_per_s: f64,
    chunks: usize,
}

#[derive(Serialize)]
struct Label {
    ns: f64,
    best_design: String,
    cycles: Vec<u64>,
}

#[derive(Serialize)]
struct PeakRss {
    baseline_kb: u64,
    after_ingest_kb: u64,
    after_profile_kb: u64,
    after_label_kb: u64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    rows: usize,
    cols: usize,
    nnz: usize,
    budget_entries: usize,
    profile_chunk_rows: usize,
    mtx_bytes: u64,
    slab_bytes: u64,
    /// What a conventional triplet parse would hold resident
    /// (`nnz * 24` bytes of `(usize, usize, f64)` coordinates) before
    /// it could even start building CSR arrays.
    naive_resident_bytes: u64,
    /// The enforced ceiling on ingest's RSS growth: O(rows) counters
    /// plus one budget-sized chunk plus fixed slack.
    rss_cap_bytes: u64,
    ingest: Ingest,
    profile_streaming: Stage,
    label: Label,
    peak_rss: PeakRss,
    /// True iff every RSS assertion held — the bench aborts otherwise,
    /// so a committed file always says true; the field documents that
    /// the numbers were gated, not just observed.
    out_of_core: bool,
}

/// Lifetime peak resident set of this process, from `/proc/self/status`
/// (`VmHWM`, kilobytes). Monotonic, which is exactly what makes it the
/// right gauge: a stage that transiently ballooned cannot hide it.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .expect("VmHWM present on Linux")
}

/// Nonzeros of row `r`: 12–28, deterministic, mean ≈ 20.
fn row_nnz(r: usize) -> usize {
    12 + (r % 17)
}

/// Streams the synthetic matrix to `path` as coordinate Matrix Market,
/// one row at a time — the generator never holds more than one line.
fn write_mtx(path: &std::path::Path) -> usize {
    let nnz: usize = (0..N).map(row_nnz).sum();
    let mut w = BufWriter::new(std::fs::File::create(path).expect("create mtx"));
    writeln!(w, "%%MatrixMarket matrix coordinate real general").unwrap();
    writeln!(w, "% synthetic out-of-core ingest workload").unwrap();
    writeln!(w, "{N} {N} {nnz}").unwrap();
    for r in 0..N {
        for j in 0..row_nnz(r) {
            let c = (r + (j + 1) * STEP) % N;
            let v = ((r * 31 + j * 7) % 997) as f64 * 0.25 + 0.5;
            writeln!(w, "{} {} {v}", r + 1, c + 1).unwrap();
        }
    }
    w.flush().unwrap();
    nnz
}

fn main() {
    let dir = std::env::temp_dir().join(format!("misam_bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let mtx = dir.join("workload.mtx");
    let msab = dir.join("workload.msab");

    let nnz = write_mtx(&mtx);
    let mtx_bytes = std::fs::metadata(&mtx).expect("stat mtx").len();
    assert!(nnz > BUDGET, "the workload must not fit the resident budget");
    let naive_resident_bytes = nnz as u64 * 24;
    let rss_cap_bytes = 16 * N as u64 + 32 * BUDGET as u64 + (8 << 20);
    assert!(
        rss_cap_bytes < naive_resident_bytes / 2,
        "the cap must sit well below a triplet parse's residency for the gate to mean anything"
    );

    // Baseline after generation: everything past this point is the
    // out-of-core pipeline under test.
    let baseline_kb = peak_rss_kb();

    // --- ingest: .mtx -> slab, budgeted ------------------------------
    let t = Instant::now();
    let report = slab::ingest_matrix_market_with_budget(&mtx, &msab, BUDGET).expect("ingest");
    let ingest_ns = t.elapsed().as_nanos() as f64;
    let after_ingest_kb = peak_rss_kb();
    assert_eq!(report.nnz, nnz);
    assert!(report.chunks > 1, "one chunk would mean the budget never engaged");
    let ingest_growth = (after_ingest_kb - baseline_kb) * 1024;
    assert!(
        ingest_growth < rss_cap_bytes,
        "ingest RSS grew {ingest_growth} bytes, cap {rss_cap_bytes}"
    );
    println!(
        "ingest   {N}x{N} nnz {nnz}: {:.0} ms   {:.1} MB/s   {} chunks   rss +{} kB (cap {} kB)",
        ingest_ns / 1e6,
        mtx_bytes as f64 / 1e6 / (ingest_ns / 1e9),
        report.chunks,
        ingest_growth / 1024,
        rss_cap_bytes / 1024,
    );

    // --- profile: chunked fold over the mmap view --------------------
    let slab_matrix = SlabMatrix::open(&msab).expect("open slab");
    let (col_pes, row_pes) = (design_pe_counts(), design_row_pe_counts());
    let t = Instant::now();
    let profile = MatrixProfile::build_streaming(
        slab_matrix.as_ref(),
        PROFILE_CHUNK_ROWS,
        &col_pes,
        &row_pes,
    );
    let profile_ns = t.elapsed().as_nanos() as f64;
    let after_profile_kb = peak_rss_kb();
    // The mmap'd column/value sections fault in as they are folded, so
    // the file's pages join the resident set; the budget bounds what
    // the fold *allocates* on top of them.
    let profile_cap = rss_cap_bytes + report.slab_bytes;
    let profile_growth = (after_profile_kb - baseline_kb) * 1024;
    assert!(
        profile_growth < profile_cap,
        "profile RSS grew {profile_growth} bytes, cap {profile_cap}"
    );
    println!(
        "profile  chunk {PROFILE_CHUNK_ROWS} rows: {:.0} ms   {:.1} M entries/s   rss +{} kB",
        profile_ns / 1e6,
        nnz as f64 / 1e6 / (profile_ns / 1e9),
        profile_growth / 1024,
    );

    // --- label: all four designs through the oracle ------------------
    let b = Operand::Dense { rows: slab_matrix.cols(), cols: 64 };
    let t = Instant::now();
    let reports = misam_oracle::global().execute_all_slab(&slab_matrix, b);
    let label_ns = t.elapsed().as_nanos() as f64;
    let after_label_kb = peak_rss_kb();
    let best = reports.iter().min_by_key(|r| r.cycles).expect("four designs");
    let label_growth = (after_label_kb - baseline_kb) * 1024;
    assert!(
        label_growth < profile_cap,
        "labeling RSS grew {label_growth} bytes, cap {profile_cap}"
    );
    println!(
        "label    4 designs: {:.0} ms   best {:?}   rss +{} kB",
        label_ns / 1e6,
        best.design,
        label_growth / 1024,
    );

    // Equality gates — after the RSS story is sealed (VmHWM is
    // monotonic, so nothing below can retroactively pass the asserts
    // above). Both gates stay on the mmap view: `verify` re-derives
    // the content digest from the sections, and the one-shot profile
    // must be bit-identical to the chunked fold.
    slab_matrix.verify().expect("slab digest must verify");
    let oneshot =
        MatrixProfile::build_with_scheduler_pes_ref(slab_matrix.as_ref(), &col_pes, &row_pes);
    assert_eq!(profile, oneshot, "chunked fold must be bit-identical to the one-shot profile");

    let doc = Doc {
        bench: "bench_ingest".into(),
        rows: N,
        cols: N,
        nnz,
        budget_entries: BUDGET,
        profile_chunk_rows: PROFILE_CHUNK_ROWS,
        mtx_bytes,
        slab_bytes: report.slab_bytes,
        naive_resident_bytes,
        rss_cap_bytes,
        ingest: Ingest {
            ns: ingest_ns,
            mtx_mb_per_s: mtx_bytes as f64 / 1e6 / (ingest_ns / 1e9),
            entries_per_s: nnz as f64 / (ingest_ns / 1e9),
            chunks: report.chunks,
        },
        profile_streaming: Stage { ns: profile_ns, entries_per_s: nnz as f64 / (profile_ns / 1e9) },
        label: Label {
            ns: label_ns,
            best_design: format!("{:?}", best.design),
            cycles: reports.iter().map(|r| r.cycles).collect(),
        },
        peak_rss: PeakRss { baseline_kb, after_ingest_kb, after_profile_kb, after_label_kb },
        out_of_core: true,
    };
    let out = serde_json::to_string_pretty(&doc).unwrap();
    std::fs::write("BENCH_ingest.json", &out).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json");
    std::fs::remove_dir_all(&dir).ok();
}
