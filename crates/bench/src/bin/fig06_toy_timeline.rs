//! Regenerates Figure 6 (toy timelines).
fn main() {
    misam_bench::emit("fig06_toy_timeline", &misam_bench::render::fig06());
}
