//! Measures the two-stage generators per family — the structure stage
//! (O(rows + cols), what the streaming corpus pipeline runs) against
//! full materialization (structure + O(nnz) fill) — and writes
//! `BENCH_gen.json`.

use misam_sparse::{gen, LazyMatrix};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct FamilyRow {
    family: String,
    rows: usize,
    cols: usize,
    nnz: usize,
    structure_ns: f64,
    materialize_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    reps: usize,
    families: Vec<FamilyRow>,
}

fn main() {
    let reps = 20usize;
    type GenFn = Box<dyn Fn(u64) -> LazyMatrix>;
    let families: Vec<(&str, GenFn)> = vec![
        ("uniform", Box::new(|s| gen::uniform_random_lazy(4096, 4096, 0.004, s))),
        ("power_law", Box::new(|s| gen::power_law_lazy(4096, 4096, 14.0, 1.5, s))),
        ("rmat", Box::new(|s| gen::rmat_lazy(4096, 4096, 60_000, (0.57, 0.19, 0.19, 0.05), s))),
        ("banded", Box::new(|s| gen::banded_lazy(4096, 4096, 48, 0.7, s))),
        ("circuit", Box::new(|s| gen::circuit_lazy(4096, 4096, 4.0, 16, s))),
        ("regular", Box::new(|s| gen::regular_degree_lazy(4096, 4096, 16, s))),
        ("pruned_dnn", Box::new(|s| gen::pruned_dnn_lazy(1024, 1024, 0.2, s))),
        ("imbalanced", Box::new(|s| gen::imbalanced_rows_lazy(4096, 4096, 0.04, 512, 4, s))),
        ("mesh2d", Box::new(|_| gen::mesh2d_lazy(64, 64))),
        ("mesh3d", Box::new(|_| gen::mesh3d_lazy(16, 16, 16))),
    ];

    let mut rows = Vec::new();
    for (name, f) in &families {
        let sample = f(1);
        let (r, c, n) = (sample.rows(), sample.cols(), sample.nnz());

        let t = Instant::now();
        for i in 0..reps {
            std::hint::black_box(f(i as u64));
        }
        let structure_ns = t.elapsed().as_nanos() as f64 / reps as f64;

        let t = Instant::now();
        for i in 0..reps {
            std::hint::black_box(f(i as u64).into_csr());
        }
        let materialize_ns = t.elapsed().as_nanos() as f64 / reps as f64;

        println!(
            "{name:<12} {r}x{c} nnz {n:>8}: structure {structure_ns:>10.0} ns   \
             full {materialize_ns:>12.0} ns   {:>6.1}x",
            materialize_ns / structure_ns
        );
        rows.push(FamilyRow {
            family: (*name).into(),
            rows: r,
            cols: c,
            nnz: n,
            structure_ns,
            materialize_ns,
            speedup: materialize_ns / structure_ns,
        });
    }

    let doc = Doc { bench: "bench_gen".into(), reps, families: rows };
    std::fs::write("BENCH_gen.json", serde_json::to_string_pretty(&doc).unwrap())
        .expect("write BENCH_gen.json");
    println!("wrote BENCH_gen.json");
}
