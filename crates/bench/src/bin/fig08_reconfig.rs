//! Regenerates Figure 8 (reconfiguration overhead analysis).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig08_reconfig", &misam_bench::render::fig08(&s));
}
