//! Regenerates the §6.2 multi-tenant packing estimate.
fn main() {
    misam_bench::emit("d62_multitenant", &misam_bench::render::d62());
}
