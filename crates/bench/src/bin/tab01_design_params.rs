//! Regenerates Table 1 (design parameter configurations).
fn main() {
    misam_bench::emit("tab01_design_params", &misam_bench::render::tab01());
}
