//! Regenerates the `d63_hetero` extension/ablation artifact.
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("d63_hetero", &misam_bench::render::d63_hetero(&s));
}
