//! Regenerates Figures 10 and 11 (performance & energy vs baselines).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig10_fig11_gains", &misam_bench::render::fig10_fig11(&s));
}
