//! Regenerates every table and figure into `results/`.
//!
//! ```sh
//! MISAM_SCALE=mid cargo run -p misam-bench --release --bin reproduce_all
//! ```
use std::time::Instant;

fn main() {
    std::fs::create_dir_all("results").expect("create results dir");
    let s = misam_bench::scale_from_env();
    println!("scale: {s:?}");
    println!("suite: {}", misam_bench::render::suite_summary(&s));

    type Step = (&'static str, Box<dyn Fn() -> String>);
    let steps: Vec<Step> = vec![
        ("tab01_design_params", Box::new(misam_bench::render::tab01)),
        ("tab02_resources", Box::new(misam_bench::render::tab02)),
        ("tab03_hs_matrices", Box::new(misam_bench::render::tab03)),
        ("fig06_toy_timeline", Box::new(misam_bench::render::fig06)),
        ("d62_multitenant", Box::new(misam_bench::render::d62)),
        ("fig01_sparsity_space", Box::new(move || misam_bench::render::fig01(&s))),
        ("fig03_design_suite", Box::new(move || misam_bench::render::fig03(&s))),
        ("fig04_tab05_selector", Box::new(move || misam_bench::render::fig04_tab05(&s))),
        ("tab04_design_speedup", Box::new(move || misam_bench::render::tab04(&s))),
        ("fig09_latency_predictor", Box::new(move || misam_bench::render::fig09(&s))),
        ("fig08_reconfig", Box::new(move || misam_bench::render::fig08(&s))),
        ("fig10_fig11_gains", Box::new(move || misam_bench::render::fig10_fig11(&s))),
        ("fig12_breakdown", Box::new(move || misam_bench::render::fig12(&s))),
        ("fig13_trapezoid", Box::new(move || misam_bench::render::fig13(&s))),
        ("d63_hetero", Box::new(move || misam_bench::render::d63_hetero(&s))),
        ("ablation_features", Box::new(move || misam_bench::render::ablation_features(&s))),
        ("ablation_models", Box::new(move || misam_bench::render::ablation_models(&s))),
        ("ablation_policy", Box::new(move || misam_bench::render::ablation_policy(&s))),
        ("ablation_mechanisms", Box::new(move || misam_bench::render::ablation_mechanisms(&s))),
        ("ablation_objectives", Box::new(move || misam_bench::render::ablation_objectives(&s))),
    ];

    for (id, f) in steps {
        let t0 = Instant::now();
        let body = f();
        misam_bench::emit(id, &body);
        eprintln!("[{id}] done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    println!("\nall artifacts written to results/");
}
