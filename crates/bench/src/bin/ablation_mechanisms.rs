//! Regenerates the `ablation_mechanisms` extension/ablation artifact.
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("ablation_mechanisms", &misam_bench::render::ablation_mechanisms(&s));
}
