//! Regenerates the `ablation_models` extension/ablation artifact.
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("ablation_models", &misam_bench::render::ablation_models(&s));
}
