//! Regenerates the `ablation_policy` extension/ablation artifact.
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("ablation_policy", &misam_bench::render::ablation_policy(&s));
}
