//! Measures the rebuilt mlkit training and inference kernels against
//! the seed algorithms and writes `BENCH_train.json`.
//!
//! Three views, all on a selector-shaped workload (full `PairFeatures`
//! width, four classes):
//!
//! * **tree / regression fit** — the seed per-node-sorting induction
//!   (kept verbatim in `misam_mlkit::reference`) vs the sort-once
//!   columnar builder behind today's `fit`.
//! * **batched prediction** — the boxed pointer-chasing walk vs the
//!   flat SoA walk: once over a prebuilt columnar matrix (the serving
//!   steady state: one transpose shared by the selector and all four
//!   latency trees) and once through the adaptive
//!   `FlatTree::predict_batch_rows` entry, which pays for its own
//!   layout decision and skips the transpose below
//!   `TRANSPOSE_MIN_ROWS` rows.
//! * **forest fit** — one thread vs the worker pool, which must return
//!   a byte-identical model.
//!
//! Every timed pair is checked equal (trees structurally, predictions
//! bit-for-bit) before any number is written.

use misam_mlkit::flat::FlatTree;
use misam_mlkit::forest::{ForestParams, RandomForest};
use misam_mlkit::matrix::FeatureMatrix;
use misam_mlkit::reference;
use misam_mlkit::regression::{RegParams, RegressionTree};
use misam_mlkit::tree::{DecisionTree, TreeParams};
use misam_oracle::pool;
use serde::Serialize;
use std::time::Instant;

const ROWS: usize = 8192;
const FEATURES: usize = 24; // full PairFeatures width
const CLASSES: usize = 4;
const REPS: usize = 5;

#[derive(Serialize)]
struct Kernel {
    seed_ns: f64,
    new_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ForestBench {
    n_trees: usize,
    threads: usize,
    serial_ns: f64,
    parallel_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    rows: usize,
    features: usize,
    classes: usize,
    reps: usize,
    /// CPUs visible to the process — bounds what the parallel-forest
    /// view can show (1 means serial and parallel are the same work).
    host_cpus: usize,
    models_identical: bool,
    /// Seed per-node-sort induction vs sort-once columnar induction.
    tree_fit: Kernel,
    /// Same comparison for the latency model's regression trees.
    regression_fit: Kernel,
    /// Boxed row walk vs flat SoA walk, columnar matrix prebuilt (the
    /// serving steady state: one transpose shared by five trees).
    predict_batch: Kernel,
    /// The adaptive `predict_batch_rows` entry, charged for its own
    /// layout decision every call (a single-call site that holds only
    /// row-major vectors). Below `TRANSPOSE_MIN_ROWS` it walks per row
    /// instead of paying `FeatureMatrix::from_rows` for one tree —
    /// the fix for the 0.92× regression the eager transpose recorded
    /// here previously.
    predict_batch_with_transpose: Kernel,
    forest_fit: ForestBench,
}

/// Selector-shaped synthetic workload: 24 features over a modest value
/// alphabet (ties included, like binned structural features). Labels
/// are a hash of the row index — no feature explains them, so the tree
/// grows to its depth/leaf bounds chasing noise, the worst case for
/// induction and the deepest realistic walk for inference.
fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let f: Vec<f64> = (0..FEATURES).map(|j| ((i * 37 + j * 13) % 101) as f64).collect();
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        y.push(((h >> 29) % CLASSES as u64) as usize);
        x.push(f);
    }
    (x, y)
}

/// Minimum over `reps` timed runs (after one warmup) — the estimator
/// least sensitive to scheduler noise on a shared host.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let (x, y) = training_data(ROWS);
    let params = TreeParams::default();

    // Equality gates first: the kernels being compared must produce
    // the same model / the same bits before their times mean anything.
    let seed_tree = reference::fit_tree(&x, &y, CLASSES, &params);
    let new_tree = DecisionTree::fit(&x, &y, CLASSES, &params);
    assert_eq!(seed_tree, new_tree, "sort-once induction must reproduce the seed tree");

    // Tie-free targets for the regression gate (the seed builder's
    // per-node accumulation order differs inside tie blocks).
    let xr: Vec<Vec<f64>> = x
        .iter()
        .enumerate()
        .map(|(i, r)| r.iter().map(|v| v + i as f64 * 1e-7).collect())
        .collect();
    let yr: Vec<f64> = y.iter().zip(&x).map(|(&c, r)| c as f64 + r[1] * 0.01).collect();
    let reg_params = RegParams::default();
    let seed_reg = reference::fit_regression(&xr, &yr, &reg_params);
    let new_reg = RegressionTree::fit(&xr, &yr, &reg_params);
    assert_eq!(seed_reg, new_reg, "sort-once regression must reproduce the seed tree");

    let flat = FlatTree::from_tree(&new_tree);
    let m = FeatureMatrix::from_rows(&x);
    assert_eq!(flat.predict_batch_matrix(&m), new_tree.predict_batch(&x));
    assert_eq!(flat.predict_batch_rows(&x), new_tree.predict_batch(&x));

    // --- training ---------------------------------------------------
    let seed_fit_ns = time_ns(REPS, || {
        std::hint::black_box(reference::fit_tree(&x, &y, CLASSES, &params));
    });
    let new_fit_ns = time_ns(REPS, || {
        std::hint::black_box(DecisionTree::fit(&x, &y, CLASSES, &params));
    });
    let fit_speedup = seed_fit_ns / new_fit_ns;
    println!(
        "tree fit     {ROWS}x{FEATURES}: seed {:>10.0} us   new {:>8.0} us   {:>5.1}x",
        seed_fit_ns / 1e3,
        new_fit_ns / 1e3,
        fit_speedup
    );

    let seed_reg_ns = time_ns(REPS, || {
        std::hint::black_box(reference::fit_regression(&xr, &yr, &reg_params));
    });
    let new_reg_ns = time_ns(REPS, || {
        std::hint::black_box(RegressionTree::fit(&xr, &yr, &reg_params));
    });
    println!(
        "reg fit      {ROWS}x{FEATURES}: seed {:>10.0} us   new {:>8.0} us   {:>5.1}x",
        seed_reg_ns / 1e3,
        new_reg_ns / 1e3,
        seed_reg_ns / new_reg_ns
    );

    // --- batched prediction -----------------------------------------
    let pred_reps = REPS * 20;
    let boxed_ns = time_ns(pred_reps, || {
        std::hint::black_box(new_tree.predict_batch(&x));
    });
    let flat_ns = time_ns(pred_reps, || {
        std::hint::black_box(flat.predict_batch_matrix(&m));
    });
    let flat_adaptive_ns = time_ns(pred_reps, || {
        std::hint::black_box(flat.predict_batch_rows(&x));
    });
    let predict_speedup = boxed_ns / flat_ns;
    println!(
        "predict      {ROWS}x{FEATURES}: boxed {:>8.0} us   flat {:>7.0} us   {:>5.1}x   (adaptive {:>5.1}x)",
        boxed_ns / 1e3,
        flat_ns / 1e3,
        predict_speedup,
        boxed_ns / flat_adaptive_ns
    );

    // --- forest -----------------------------------------------------
    let forest_params = ForestParams { n_trees: 16, ..ForestParams::default() };
    let threads = pool::default_threads().max(2);
    let serial = RandomForest::fit_with_threads(&x, &y, CLASSES, &forest_params, 1);
    let parallel = RandomForest::fit_with_threads(&x, &y, CLASSES, &forest_params, threads);
    assert_eq!(serial, parallel, "parallel forest must be identical to serial");
    let serial_ns = time_ns(2, || {
        std::hint::black_box(RandomForest::fit_with_threads(&x, &y, CLASSES, &forest_params, 1));
    });
    let parallel_ns = time_ns(2, || {
        std::hint::black_box(RandomForest::fit_with_threads(
            &x,
            &y,
            CLASSES,
            &forest_params,
            threads,
        ));
    });
    println!(
        "forest fit   {} trees: 1 thread {:>8.0} us   {} threads {:>8.0} us   {:>5.1}x",
        forest_params.n_trees,
        serial_ns / 1e3,
        threads,
        parallel_ns / 1e3,
        serial_ns / parallel_ns
    );

    assert!(
        fit_speedup >= 5.0,
        "sort-once fit must be >= 5x the seed induction (got {fit_speedup:.2}x)"
    );
    assert!(
        predict_speedup >= 2.0,
        "flat batched prediction must be >= 2x the boxed walk (got {predict_speedup:.2}x)"
    );
    // At this row count the adaptive entry point takes the per-row walk
    // (no transpose), i.e. the exact same code path as the boxed-side
    // comparison — so "never loses" means "equal up to timer noise".
    let adaptive_speedup = boxed_ns / flat_adaptive_ns;
    assert!(
        adaptive_speedup >= 0.95,
        "adaptive predict_batch_rows must never lose to the boxed walk (got {adaptive_speedup:.2}x)"
    );

    let doc = Doc {
        bench: "bench_train".into(),
        rows: ROWS,
        features: FEATURES,
        classes: CLASSES,
        reps: REPS,
        host_cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
        models_identical: true,
        tree_fit: Kernel { seed_ns: seed_fit_ns, new_ns: new_fit_ns, speedup: fit_speedup },
        regression_fit: Kernel {
            seed_ns: seed_reg_ns,
            new_ns: new_reg_ns,
            speedup: seed_reg_ns / new_reg_ns,
        },
        predict_batch: Kernel { seed_ns: boxed_ns, new_ns: flat_ns, speedup: predict_speedup },
        predict_batch_with_transpose: Kernel {
            seed_ns: boxed_ns,
            new_ns: flat_adaptive_ns,
            speedup: adaptive_speedup,
        },
        forest_fit: ForestBench {
            n_trees: forest_params.n_trees,
            threads,
            serial_ns,
            parallel_ns,
            speedup: serial_ns / parallel_ns,
        },
    };
    let out = serde_json::to_string_pretty(&doc).unwrap();
    std::fs::write("BENCH_train.json", &out).expect("write BENCH_train.json");
    println!("wrote BENCH_train.json");
}
