//! Regenerates Figure 9 (latency-predictor residuals).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig09_latency_predictor", &misam_bench::render::fig09(&s));
}
