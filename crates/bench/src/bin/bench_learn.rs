//! Closed-loop benchmark of the online learning loop: a server whose
//! bundle was fit to one traffic family, gen-driven load that shifts to
//! a different family mid-run, and the background learner labeling the
//! tapped traffic, detecting the drift, and hot-publishing retrained
//! bundles. Records a timeline of the rolling selector-vs-oracle
//! agreement around the shift — the headline is agreement recovering
//! after a background retrain without a restart — plus a tap-on vs
//! tap-off hot-path comparison. Writes `BENCH_learn.json`.

use misam::dataset::Objective;
use misam::persist::ModelBundle;
use misam::training;
use misam_features::{PairFeatures, TileConfig};
use misam_learn::{label_sample, refit_bundle, LearnConfig, Learner};
use misam_recon::cost::ReconfigCost;
use misam_serve::{Client, GenSpec, GenTraffic, LoadGen, Response, ServeConfig, Server, TapSample};
use misam_sim::DesignId;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Shared traffic shape, chosen so the two families genuinely disagree:
/// at 192x192, density 0.02, dense B of 64 columns, the cycle oracle
/// picks design 1 for uniform matrices and design 3 for power-law ones
/// (skewed rows reward the sorting scheduler). A bundle fit to uniform
/// traffic alone has never seen a non-design-1 label, so the shift
/// drives its oracle agreement to zero until the learner retrains.
const ROWS: usize = 192;
const DENSE_COLS: usize = 64;
const DENSITY: f64 = 0.02;
/// Family served while the initial bundle was fit, and the family the
/// load shifts to mid-run.
const FAMILY_BEFORE: &str = "uniform";
const FAMILY_AFTER: &str = "power-law";

#[derive(Serialize)]
struct TimelinePoint {
    /// Seconds since the post-shift load completed.
    t_s: f64,
    /// Rolling selector-vs-oracle agreement over the learner's window.
    agreement: f64,
    labeled: u64,
    retrains_full: u64,
    retrains_touchup: u64,
    publishes: u64,
    model_generation: u64,
}

#[derive(Serialize)]
struct OverheadPoint {
    tap: bool,
    ok: u64,
    errors: u64,
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    host_cpus: usize,
    family_before: String,
    family_after: String,
    /// Agreement measured after the pre-shift load (bundle fit to this
    /// family, so this should be high).
    agreement_before_shift: f64,
    /// Lowest agreement observed after the shift, before the retrain
    /// caught up — the drift the loop exists to detect.
    agreement_post_shift_min: f64,
    /// Agreement at the end of the run, after >=1 background retrain.
    agreement_after_retrain: f64,
    retrains_published: u64,
    samples_labeled: u64,
    samples_shed: u64,
    timeline: Vec<TimelinePoint>,
    /// Identical bare-Predict loads with the tap off and on: the tap
    /// must not move the hot path outside noise.
    overhead: Vec<OverheadPoint>,
}

fn spec(kind: &str, seed: u64) -> GenSpec {
    GenSpec {
        kind: kind.into(),
        rows: ROWS,
        cols: ROWS,
        density: DENSITY,
        seed,
        dense_cols: DENSE_COLS,
    }
}

/// A bundle deliberately fit to FAMILY_BEFORE traffic only: the same
/// tap → label → refit path the learner runs, applied offline to a
/// single-family window, so the selector has never seen the post-shift
/// family.
fn biased_bundle() -> ModelBundle {
    let ds = misam::dataset::Dataset::generate(60, 55);
    let sel = training::train_selector(&ds, Objective::Latency, 1);
    let lat = training::train_latency_predictor(&ds, 1);
    let base = ModelBundle::new(
        sel.selector,
        lat.predictor,
        0.2,
        ReconfigCost::default(),
        TileConfig::default(),
    );
    let tile = base.tile_config();
    let window: Vec<_> = (0..48u64)
        .map(|i| {
            let s = spec(FAMILY_BEFORE, 10_000 + i);
            let a = s.build().expect("spec builds");
            let features =
                PairFeatures::extract_dense_b(&a, a.cols(), DENSE_COLS, &tile).to_vector();
            label_sample(
                &TapSample { features, predicted: DesignId::from_index(0), spec: Some(s) },
                Objective::Latency,
            )
            .expect("offline label")
        })
        .collect();
    refit_bundle(&window, Objective::Latency, 1, &base)
}

fn learn_stats(client: &mut Client) -> misam_serve::LearnStatsReply {
    match client.stats().expect("stats") {
        Response::Stats(s) => s.learn,
        other => panic!("unexpected stats reply: {other:?}"),
    }
}

fn gen_load(kind: &str, seed: u64, requests_per_conn: usize) -> LoadGen {
    LoadGen {
        connections: 2,
        requests_per_conn,
        batch_size: 1,
        seed,
        gen: Some(GenTraffic {
            kind: kind.into(),
            rows: ROWS,
            density: DENSITY,
            dense_cols: DENSE_COLS,
            shift_at: None,
            kind_after: kind.into(),
            density_after: DENSITY,
        }),
        ..LoadGen::default()
    }
}

/// Bare-Predict load (no provenance, nothing labelable): pure hot-path
/// traffic for the tap-overhead comparison.
fn overhead_load(seed: u64) -> LoadGen {
    LoadGen { connections: 2, requests_per_conn: 400, batch_size: 1, seed, ..LoadGen::default() }
}

fn measure_overhead(bundle: ModelBundle, tap: bool) -> OverheadPoint {
    let cfg = ServeConfig { learn_sample_every: u64::from(tap), ..ServeConfig::default() };
    let server = Server::start(bundle, cfg).expect("bind");
    // With the tap on, run the full loop: a learner draining the queue,
    // exactly as production would.
    let learner = tap.then(|| {
        Learner::spawn(
            server.shared_model(),
            server.learn_tap().expect("tap"),
            LearnConfig::default(),
        )
    });
    let report = overhead_load(31).run(server.addr()).expect("overhead load");
    if let Some(l) = learner {
        l.stop();
    }
    server.shutdown();
    OverheadPoint {
        tap,
        ok: report.ok,
        errors: report.errors,
        req_per_s: report.req_per_s,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("fitting the biased serving bundle… ({cpus} host CPUs)");
    let bundle = biased_bundle();

    let server = Server::start(
        bundle.clone(),
        ServeConfig { learn_sample_every: 1, learn_queue_cap: 4096, ..ServeConfig::default() },
    )
    .expect("bind ephemeral port");
    let learner = Learner::spawn(
        server.shared_model(),
        server.learn_tap().expect("tap installed"),
        LearnConfig {
            window: 128,
            min_window: 32,
            cadence: Duration::from_millis(200),
            // Small threshold: any systematic disagreement on the new
            // family should trip a full refit rather than a touch-up.
            drift_threshold: 0.02,
            min_new_labels: 16,
            agreement_window: 64,
            seed: 9,
            ..LearnConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).expect("stats client");

    // Phase 1: the family the bundle was fit to. Wait for the learner to
    // label the traffic, then read the baseline agreement.
    eprintln!("phase 1: {FAMILY_BEFORE} traffic (in-distribution)…");
    let r1 = gen_load(FAMILY_BEFORE, 20_000, 24).run(server.addr()).expect("phase 1 load");
    assert_eq!(r1.errors, 0, "phase 1 errors");
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut stats = learn_stats(&mut client);
    while stats.labeled < 40 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        stats = learn_stats(&mut client);
    }
    let agreement_before_shift = stats.agreement;
    eprintln!("  labeled {} samples, agreement {:.3}", stats.labeled, agreement_before_shift);

    // Phase 2: shift the distribution. The selector now scores against
    // oracle labels from a family it never trained on.
    eprintln!("phase 2: shift to {FAMILY_AFTER} traffic…");
    let r2 = gen_load(FAMILY_AFTER, 30_000, 40).run(server.addr()).expect("phase 2 load");
    assert_eq!(r2.errors, 0, "phase 2 errors");

    // Timeline: poll the drift stats while the learner catches up.
    let started = Instant::now();
    let mut timeline = Vec::new();
    let mut post_min = f64::INFINITY;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let s = learn_stats(&mut client);
        post_min = post_min.min(s.agreement);
        timeline.push(TimelinePoint {
            t_s: started.elapsed().as_secs_f64(),
            agreement: s.agreement,
            labeled: s.labeled,
            retrains_full: s.retrains_full,
            retrains_touchup: s.retrains_touchup,
            publishes: s.publishes,
            model_generation: s.model_generation,
        });
        // Done once a retrain landed and the agreement ring (now scored
        // against the *published* model's predictions) has refilled.
        let caught_up = s.publishes >= 1 && s.agreement >= agreement_before_shift.min(0.95);
        if caught_up || Instant::now() >= deadline || timeline.len() >= 600 {
            break;
        }
        // Keep a trickle of post-shift traffic flowing so the refreshed
        // selector is scored on the new family, paced so the timeline
        // stays readable and the learner's cadence actually elapses.
        let r = gen_load(FAMILY_AFTER, 40_000 + timeline.len() as u64 * 1000, 8)
            .run(server.addr())
            .expect("trickle load");
        assert_eq!(r.errors, 0, "trickle errors");
        std::thread::sleep(Duration::from_millis(100));
    }
    let last = learn_stats(&mut client);
    learner.stop();
    let final_stats = server.shutdown();

    assert!(last.publishes >= 1, "no retrain was published: {last:?}");
    assert_eq!(final_stats.errors, 0, "server reported errors");
    assert!(
        last.agreement >= post_min,
        "agreement never recovered: final {} < min {post_min}",
        last.agreement
    );
    eprintln!(
        "  drift detected and retrained: {} full refit(s), agreement {:.3} -> {:.3} -> {:.3}",
        last.retrains_full, agreement_before_shift, post_min, last.agreement
    );

    // Tap overhead: identical bare-Predict loads, tap off vs on.
    eprintln!("overhead: bare Predict p99, tap off vs on…");
    let overhead = vec![measure_overhead(bundle.clone(), false), measure_overhead(bundle, true)];
    for o in &overhead {
        eprintln!(
            "  tap {:<5} {:>8.0} req/s  p50 {:>7.1}us  p99 {:>8.1}us",
            o.tap, o.req_per_s, o.p50_us, o.p99_us
        );
    }

    let doc = Doc {
        bench: "learn".into(),
        host_cpus: cpus,
        family_before: FAMILY_BEFORE.into(),
        family_after: FAMILY_AFTER.into(),
        agreement_before_shift,
        agreement_post_shift_min: post_min,
        agreement_after_retrain: last.agreement,
        retrains_published: last.publishes,
        samples_labeled: last.labeled,
        samples_shed: last.shed,
        timeline,
        overhead,
    };
    let json = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_learn.json", &json).expect("write BENCH_learn.json");
    eprintln!("wrote BENCH_learn.json");
}
