//! Regenerates the objective-blend ablation (§3.1's tunable knob).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("ablation_objectives", &misam_bench::render::ablation_objectives(&s));
}
