//! Regenerates Table 4 (geomean speedup of the optimal design).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("tab04_design_speedup", &misam_bench::render::tab04(&s));
}
