//! Regenerates Figure 13 (Misam selector on Trapezoid's dataflows).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig13_trapezoid", &misam_bench::render::fig13(&s));
}
