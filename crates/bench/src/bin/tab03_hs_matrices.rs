//! Regenerates Table 3 (HS matrix catalog).
fn main() {
    misam_bench::emit("tab03_hs_matrices", &misam_bench::render::tab03());
}
