//! Regenerates Figure 12 (end-to-end breakdown).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig12_breakdown", &misam_bench::render::fig12(&s));
}
