//! Regenerates Table 2 (resource estimation).
fn main() {
    misam_bench::emit("tab02_resources", &misam_bench::render::tab02());
}
