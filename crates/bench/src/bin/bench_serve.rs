//! End-to-end load benchmark of misam-serve over real TCP, comparing
//! the blocking thread-per-connection engine against the epoll reactor:
//! batched and single-predict throughput/latency under N concurrent
//! connections, an idle-connection flood, open-loop pacing, and an
//! overload scenario that proves admission control bounds the queue
//! (sheds instead of growing). Writes `BENCH_serve.json` with the host
//! CPU count and the engine/shard/worker configuration of every
//! scenario, so numbers from different hosts are comparable.

use misam::dataset::{Dataset, Objective};
use misam::persist::ModelBundle;
use misam::training;
use misam_features::TileConfig;
use misam_recon::cost::ReconfigCost;
use misam_serve::{LoadGen, LoadReport, ServeConfig, ServeMode, Server};
use serde::Serialize;

/// Single-predict req/s of the blocking engine committed with the
/// pre-reactor baseline (`single_conns8` in the previous
/// BENCH_serve.json, measured on a 1-CPU host). The event engine is
/// compared against it at the end of the run.
const COMMITTED_BASELINE_REQ_PER_S: f64 = 18_876.3;

#[derive(Serialize)]
struct Scenario {
    name: String,
    /// Which engine actually served: "event" or "blocking".
    engine: String,
    /// Reactor shards (event engine) or handler threads in flight
    /// (blocking engine reports 0 — it spawns per connection).
    reactor_shards: usize,
    /// Worker threads in the shared simulation/synthesis pool.
    pool_workers: usize,
    connections: usize,
    requests_per_conn: usize,
    batch_size: usize,
    /// Dormant connections held open for the whole run.
    idle_conns: usize,
    /// Open-loop arrival rate, when the scenario paces arrivals.
    target_rps: Option<f64>,
    ok: u64,
    shed: u64,
    errors: u64,
    items_per_s: f64,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    shed_rate: f64,
    /// Peak batch-queue depth the server reported after the run; must
    /// stay within the configured cap.
    server_queue_cap: usize,
    server_batch_queue_depth: u64,
    server_max_batch: u64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    /// Logical CPUs on the machine that produced these numbers —
    /// throughput scales with cores, so cross-host comparisons must
    /// normalize by this.
    host_cpus: usize,
    /// Shared worker-pool size used by every scenario.
    pool_workers: usize,
    /// The committed pre-reactor single-predict baseline (req/s).
    baseline_single_req_per_s: f64,
    scenarios: Vec<Scenario>,
}

fn bundle() -> ModelBundle {
    let ds = Dataset::generate(200, 55);
    let sel = training::train_selector(&ds, Objective::Latency, 1);
    let lat = training::train_latency_predictor(&ds, 1);
    ModelBundle::new(
        sel.selector,
        lat.predictor,
        0.2,
        ReconfigCost::default(),
        TileConfig::default(),
    )
}

fn run_scenario(name: &str, cfg: ServeConfig, load: LoadGen, bundle: ModelBundle) -> Scenario {
    let queue_cap = cfg.queue_cap;
    let server = Server::start(bundle, cfg).expect("bind ephemeral port");
    let engine = if server.event_driven() { "event" } else { "blocking" };
    let shards = if server.event_driven() { server.shards() } else { 0 };
    let report: LoadReport = load.run(server.addr()).expect("load run");
    let stats = server.shutdown();
    let attempted = report.ok + report.shed + report.errors;
    println!(
        "{name:<24} [{engine}{}] {:>9.0} items/s  {:>8.0} req/s  p50 {:>7.1}us  \
         p99 {:>8.1}us  shed {:>5.1}%  errors {}",
        if shards > 0 { format!(" x{shards}") } else { String::new() },
        report.items_per_s,
        report.req_per_s,
        report.p50_us,
        report.p99_us,
        100.0 * report.shed as f64 / attempted.max(1) as f64,
        report.errors,
    );
    Scenario {
        name: name.into(),
        engine: engine.into(),
        reactor_shards: shards,
        pool_workers: misam_oracle::pool::default_threads(),
        connections: load.connections,
        requests_per_conn: load.requests_per_conn,
        batch_size: load.batch_size,
        idle_conns: report.idle_conns,
        target_rps: report.target_rps,
        ok: report.ok,
        shed: report.shed,
        errors: report.errors,
        items_per_s: report.items_per_s,
        req_per_s: report.req_per_s,
        p50_us: report.p50_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
        shed_rate: report.shed as f64 / attempted.max(1) as f64,
        server_queue_cap: queue_cap,
        server_batch_queue_depth: stats.batch_queue_depth,
        server_max_batch: stats.max_batch,
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let cpus = host_cpus();
    let pool_workers = misam_oracle::pool::default_threads();
    eprintln!("training the serving bundle… ({cpus} host CPUs, {pool_workers} pool workers)");
    let b = bundle();
    // Shard count for the explicit multi-shard scenarios: at least two
    // so SO_REUSEPORT sharding is actually exercised even on 1-CPU
    // hosts, one per core beyond that.
    let shards = cpus.max(2);
    let event = |reactors| ServeConfig { mode: ServeMode::Event, reactors, ..Default::default() };
    let blocking = ServeConfig { mode: ServeMode::Blocking, ..ServeConfig::default() };
    let gen = |connections, requests_per_conn, batch_size, seed| LoadGen {
        connections,
        requests_per_conn,
        batch_size,
        seed,
        ..Default::default()
    };

    let scenarios = vec![
        // The pre-reactor engine on the same host, for an in-run
        // baseline next to the committed one.
        run_scenario("blocking_single_conns8", blocking.clone(), gen(8, 500, 1, 3), b.clone()),
        run_scenario("blocking_batch16_conns8", blocking, gen(8, 500, 16, 1), b.clone()),
        // The headline event-engine paths, same offered load.
        run_scenario("event_single_conns8", event(shards), gen(8, 500, 1, 3), b.clone()),
        run_scenario("event_batch16_conns8", event(shards), gen(8, 500, 16, 1), b.clone()),
        run_scenario("event_batch64_conns4", event(shards), gen(4, 300, 64, 2), b.clone()),
        // Many-connection fan-in: 256 closed-loop connections would be
        // 256 parked threads on the blocking engine; the reactor keeps
        // them as slab entries across its shards.
        run_scenario("event_single_conns256", event(shards), gen(256, 30, 1, 6), b.clone()),
        // 2000 dormant connections plus a hot pair — the idle flood
        // must not tax the hot path.
        run_scenario(
            "event_idle2000_hot2",
            event(shards),
            LoadGen { idle_conns: 2000, ..gen(2, 400, 1, 11) },
            b.clone(),
        ),
        // Open-loop arrivals at a fixed rate: latency is measured from
        // the scheduled send time, so queueing delay is not hidden by
        // coordinated omission.
        run_scenario(
            "event_openloop_2k_rps",
            event(shards),
            LoadGen { open_loop_rps: Some(2_000.0), ..gen(8, 250, 1, 9) },
            b.clone(),
        ),
        // Overload: a queue capped far below the offered load. The
        // point is the bound — the server must shed (Overloaded
        // replies) while the reported queue depth never exceeds the
        // cap, i.e. memory stays bounded no matter how hard clients
        // push.
        run_scenario(
            "event_overload_cap32",
            ServeConfig {
                queue_cap: 32,
                batch_max: 8,
                batch_wait_us: 2_000,
                mode: ServeMode::Event,
                reactors: shards,
                ..ServeConfig::default()
            },
            gen(12, 200, 16, 4),
            b.clone(),
        ),
    ];

    let overload = scenarios.last().unwrap();
    assert!(
        overload.server_batch_queue_depth <= overload.server_queue_cap as u64,
        "queue depth must respect the cap"
    );
    for s in &scenarios {
        assert_eq!(s.errors, 0, "{}: protocol errors under load", s.name);
    }

    // Honest comparison against the committed baseline: the reactor's
    // throughput headroom comes from running shards on multiple cores,
    // so on small hosts the ratio reflects the host, not the design.
    let single = scenarios.iter().find(|s| s.name == "event_single_conns8").unwrap();
    let in_run = scenarios.iter().find(|s| s.name == "blocking_single_conns8").unwrap();
    println!(
        "event single-predict: {:.0} req/s = {:.2}x committed baseline ({:.0} req/s), \
         {:.2}x same-host blocking ({:.0} req/s) on {cpus} CPU(s)",
        single.req_per_s,
        single.req_per_s / COMMITTED_BASELINE_REQ_PER_S,
        COMMITTED_BASELINE_REQ_PER_S,
        single.req_per_s / in_run.req_per_s,
        in_run.req_per_s,
    );

    let doc = Doc {
        bench: "bench_serve".into(),
        host_cpus: cpus,
        pool_workers,
        baseline_single_req_per_s: COMMITTED_BASELINE_REQ_PER_S,
        scenarios,
    };
    std::fs::write("BENCH_serve.json", serde_json::to_string_pretty(&doc).unwrap())
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
