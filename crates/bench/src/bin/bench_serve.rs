//! End-to-end load benchmark of misam-serve over real TCP: batched and
//! single-predict throughput/latency under N concurrent connections,
//! plus an overload scenario that proves admission control bounds the
//! queue (sheds instead of growing). Writes `BENCH_serve.json`.

use misam::dataset::{Dataset, Objective};
use misam::persist::ModelBundle;
use misam::training;
use misam_features::TileConfig;
use misam_recon::cost::ReconfigCost;
use misam_serve::{LoadGen, LoadReport, ServeConfig, Server};
use serde::Serialize;

#[derive(Serialize)]
struct Scenario {
    name: String,
    connections: usize,
    requests_per_conn: usize,
    batch_size: usize,
    ok: u64,
    shed: u64,
    errors: u64,
    items_per_s: f64,
    req_per_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    shed_rate: f64,
    /// Peak batch-queue depth the server reported after the run; must
    /// stay within the configured cap.
    server_queue_cap: usize,
    server_batch_queue_depth: u64,
    server_max_batch: u64,
}

#[derive(Serialize)]
struct Doc {
    bench: String,
    threads: usize,
    scenarios: Vec<Scenario>,
}

fn bundle() -> ModelBundle {
    let ds = Dataset::generate(200, 55);
    let sel = training::train_selector(&ds, Objective::Latency, 1);
    let lat = training::train_latency_predictor(&ds, 1);
    ModelBundle::new(
        sel.selector,
        lat.predictor,
        0.2,
        ReconfigCost::default(),
        TileConfig::default(),
    )
}

fn run_scenario(name: &str, cfg: ServeConfig, load: LoadGen, bundle: ModelBundle) -> Scenario {
    let queue_cap = cfg.queue_cap;
    let server = Server::start(bundle, cfg).expect("bind ephemeral port");
    let report: LoadReport = load.run(server.addr()).expect("load run");
    let stats = server.shutdown();
    let attempted = report.ok + report.shed + report.errors;
    println!(
        "{name:<22} {:>9.0} items/s  {:>8.0} req/s  p50 {:>7.1}us  p99 {:>8.1}us  \
         shed {:>5.1}%  errors {}",
        report.items_per_s,
        report.req_per_s,
        report.p50_us,
        report.p99_us,
        100.0 * report.shed as f64 / attempted.max(1) as f64,
        report.errors,
    );
    Scenario {
        name: name.into(),
        connections: load.connections,
        requests_per_conn: load.requests_per_conn,
        batch_size: load.batch_size,
        ok: report.ok,
        shed: report.shed,
        errors: report.errors,
        items_per_s: report.items_per_s,
        req_per_s: report.req_per_s,
        p50_us: report.p50_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
        shed_rate: report.shed as f64 / attempted.max(1) as f64,
        server_queue_cap: queue_cap,
        server_batch_queue_depth: stats.batch_queue_depth,
        server_max_batch: stats.max_batch,
    }
}

fn main() {
    let threads = misam_oracle::pool::default_threads();
    eprintln!("training the serving bundle…");
    let b = bundle();

    let scenarios = vec![
        // The headline path: batched feature-vector predictions from
        // many connections, default admission settings.
        run_scenario(
            "batch16_conns8",
            ServeConfig::default(),
            LoadGen { connections: 8, requests_per_conn: 500, batch_size: 16, seed: 1 },
            b.clone(),
        ),
        run_scenario(
            "batch64_conns4",
            ServeConfig::default(),
            LoadGen { connections: 4, requests_per_conn: 300, batch_size: 64, seed: 2 },
            b.clone(),
        ),
        // Single predicts: per-request overhead dominated (framing + one
        // vector per line), the micro-batcher coalesces across
        // connections.
        run_scenario(
            "single_conns8",
            ServeConfig::default(),
            LoadGen { connections: 8, requests_per_conn: 500, batch_size: 1, seed: 3 },
            b.clone(),
        ),
        // Overload: a queue capped far below the offered load. The
        // point is the bound — the server must shed (Overloaded
        // replies) while the reported queue depth never exceeds the
        // cap, i.e. memory stays bounded no matter how hard clients
        // push.
        run_scenario(
            "overload_cap32",
            ServeConfig {
                queue_cap: 32,
                batch_max: 8,
                batch_wait_us: 2_000,
                ..ServeConfig::default()
            },
            LoadGen { connections: 12, requests_per_conn: 200, batch_size: 16, seed: 4 },
            b.clone(),
        ),
    ];

    let overload = scenarios.last().unwrap();
    assert!(
        overload.server_batch_queue_depth <= overload.server_queue_cap as u64,
        "queue depth must respect the cap"
    );

    let doc = Doc { bench: "bench_serve".into(), threads, scenarios };
    std::fs::write("BENCH_serve.json", serde_json::to_string_pretty(&doc).unwrap())
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
