//! Regenerates the `ablation_features` extension/ablation artifact.
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("ablation_features", &misam_bench::render::ablation_features(&s));
}
