//! Regenerates Figure 1 (sparsity-space map of the workloads).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig01_sparsity_space", &misam_bench::render::fig01(&s));
}
