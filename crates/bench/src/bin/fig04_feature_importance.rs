//! Regenerates Figure 4 (feature importance) and Table 5 (confusion).
fn main() {
    let s = misam_bench::scale_from_env();
    misam_bench::emit("fig04_tab05_selector", &misam_bench::render::fig04_tab05(&s));
}
